"""Exporters for metric snapshots.

Two wire formats:

* **Prometheus text exposition** (:func:`render_prometheus`) — scrape-
  or textfile-collector-ready; histograms become the standard
  ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le`` labels.
* **JSON snapshot** (:func:`render_snapshot_json` /
  :func:`write_snapshot` / :func:`load_snapshot`) — the registry's
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict verbatim, the
  interchange format of the ``repro-obs`` CLI and the benchmark
  artifacts.

:func:`diff_snapshots` compares two JSON snapshots sample-by-sample
(counter/gauge value deltas, histogram count/sum deltas, added and
removed series) — the machine-checkable §5.8 artifact story: run a
benchmark twice, diff the snapshots, see exactly which stages moved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import estimate_percentile

#: Quantiles rendered by ``repro-obs dump --format table`` and attached
#: to histogram entries in :func:`diff_snapshots`.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

_ESCAPES = {"\\": "\\\\", "\n": "\\n", '"': '\\"'}


def _escape_label_value(value: str) -> str:
    out = []
    for char in value:
        out.append(_ESCAPES.get(char, char))
    return "".join(out)


def _format_labels(labels: Dict[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = [(k, str(v)) for k, v in sorted(labels.items())] + list(extra)
    if not items:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in items
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict) -> str:
    """The snapshot in Prometheus text exposition format (0.0.4)."""
    lines: List[str] = []
    for family in snapshot.get("metrics", []):
        name = family["name"]
        if family.get("help"):
            help_text = str(family["help"]).replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["kind"] == "histogram":
                for bound, cumulative in sample["buckets"]:
                    label_text = _format_labels(labels, (("le", str(bound)),))
                    lines.append(
                        f"{name}_bucket{label_text} {_format_value(cumulative)}"
                    )
                label_text = _format_labels(labels)
                lines.append(f"{name}_sum{label_text} {repr(float(sample['sum']))}")
                lines.append(
                    f"{name}_count{label_text} {_format_value(sample['count'])}"
                )
            else:
                label_text = _format_labels(labels)
                lines.append(
                    f"{name}{label_text} {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
def render_snapshot_json(snapshot: dict, indent: int = 2) -> str:
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def write_snapshot(snapshot: dict, path) -> Path:
    """Write a snapshot as JSON; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_snapshot_json(snapshot) + "\n")
    return target


def load_snapshot(path) -> dict:
    """Read a snapshot JSON file, validating the envelope."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "metrics" not in data:
        raise ValueError(f"{path}: not a metrics snapshot (no 'metrics' key)")
    return data


# ----------------------------------------------------------------------
def histogram_sample_percentiles(
    sample: dict, quantiles: Sequence[float] = DEFAULT_QUANTILES
) -> Optional[Dict[str, float]]:
    """``{"p50": ..., "p90": ...}`` estimated from a snapshot histogram
    sample's cumulative buckets (shared bucket interpolation with the
    SLO engine — see :func:`repro.obs.metrics.estimate_percentile`).
    Returns None when the sample has no observations."""
    bounds, cumulative = _sample_buckets(sample)
    out: Dict[str, float] = {}
    for q in quantiles:
        value = estimate_percentile(bounds, cumulative, q)
        if value is None:
            return None
        out[f"p{q * 100:g}".replace(".", "_")] = value
    return out


def _sample_buckets(sample: dict) -> Tuple[List[float], List[float]]:
    """Finite bounds + cumulative counts (``+Inf`` last) of a snapshot
    histogram sample."""
    bounds: List[float] = []
    cumulative: List[float] = []
    for label, count in sample["buckets"]:
        bound = float(label)
        cumulative.append(float(count))
        if bound != float("inf"):
            bounds.append(bound)
    return bounds, cumulative


def _accumulate_sample(kind: str, into: dict, sample: dict) -> None:
    """Fold ``sample`` into the already-collected ``into`` (same metric
    name + label set), honouring the metric kind's semantics: counters
    and histograms are additive, gauges are point-in-time readings so
    the last write wins (summing two queue-depth gauges would invent a
    queue nobody has)."""
    if kind == "histogram":
        if [b for b, _ in into["buckets"]] != [b for b, _ in sample["buckets"]]:
            raise ValueError(
                "cannot merge histogram samples with different bucket "
                "layouts"
            )
        into["buckets"] = [
            [bound, count + other]
            for (bound, count), (_, other) in zip(
                into["buckets"], sample["buckets"]
            )
        ]
        into["sum"] += sample["sum"]
        into["count"] += sample["count"]
    elif kind == "counter":
        into["value"] += sample["value"]
    else:  # gauge: last write wins
        into["value"] = sample["value"]


def _merge_family(
    families: Dict[str, dict],
    seen: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], dict],
    family: dict,
    source: str,
    tag: Optional[Tuple[str, str]],
) -> None:
    name = family["name"]
    merged = families.get(name)
    if merged is None:
        merged = {
            "name": name,
            "kind": family["kind"],
            "help": family.get("help", ""),
            "samples": [],
        }
        families[name] = merged
    elif merged["kind"] != family["kind"]:
        raise ValueError(
            f"cannot merge metric {name!r}: kind "
            f"{family['kind']!r} from {source!r} conflicts with "
            f"{merged['kind']!r}"
        )
    if family.get("help") and not merged["help"]:
        merged["help"] = family["help"]
    for sample in family["samples"]:
        labels = dict(sample.get("labels", {}))
        if tag is not None:
            labels[tag[0]] = tag[1]
        key = (name, tuple(sorted(labels.items())))
        existing = seen.get(key)
        if existing is None:
            copied = dict(sample)
            copied["labels"] = labels
            if family["kind"] == "histogram":
                copied["buckets"] = [list(pair) for pair in sample["buckets"]]
            merged["samples"].append(copied)
            seen[key] = copied
        else:
            _accumulate_sample(family["kind"], existing, sample)


def merge_snapshots(snapshots: Dict[str, dict], label: str = "kpi") -> dict:
    """Merge named registry snapshots into one, tagging every sample.

    ``snapshots`` maps a source name (e.g. a KPI id) to that source's
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; each sample of
    the merged snapshot gains ``label=<source name>``, so a fleet of
    per-service registries rolls up into a single exportable snapshot
    whose series stay attributable (`repro.fleet` uses this for its
    one-pane-of-glass dump). A metric registered with different kinds
    across sources is rejected rather than silently merged.

    Two sources producing the *same* series (identical name and labels
    after tagging) are combined per metric kind: counter values and
    histogram buckets add up, but a gauge takes the last-written value
    (sources are folded in sorted-name order) — a gauge is a
    point-in-time reading, and summing two snapshots of the same gauge
    would silently double it.
    """
    families: Dict[str, dict] = {}
    seen: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], dict] = {}
    for source in sorted(snapshots):
        for family in snapshots[source].get("metrics", []):
            _merge_family(families, seen, family, source, (label, source))
    metrics = sorted(families.values(), key=lambda m: m["name"])
    return {"version": 1, "metrics": metrics}


def combine_snapshots(snapshots: Iterable[dict]) -> dict:
    """Union several snapshots into one *without* tagging the samples.

    The soak harness uses this to fold the process-global provider's
    registry (fleet histograms, span latencies — already kpi-labelled
    where it matters) together with the fleet's per-service rollup into
    the one snapshot a checkpoint records. Colliding series follow the
    same per-kind semantics as :func:`merge_snapshots`: counters and
    histograms add, gauges take the value from the *last* snapshot in
    iteration order.
    """
    families: Dict[str, dict] = {}
    seen: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], dict] = {}
    for position, snapshot in enumerate(snapshots):
        for family in snapshot.get("metrics", []):
            _merge_family(
                families, seen, family, f"snapshot #{position}", None
            )
    metrics = sorted(families.values(), key=lambda m: m["name"])
    return {"version": 1, "metrics": metrics}


def _window_sample(before: dict, after: dict) -> Optional[dict]:
    """The histogram observations added between two snapshots, as a
    synthetic sample (bucket-wise cumulative difference). None when the
    bucket layouts differ (the histogram was re-registered)."""
    if [b for b, _ in before["buckets"]] != [b for b, _ in after["buckets"]]:
        return None
    return {
        "buckets": [
            [bound, later - earlier]
            for (bound, later), (_, earlier) in zip(
                after["buckets"], before["buckets"]
            )
        ],
        "sum": after["sum"] - before["sum"],
        "count": after["count"] - before["count"],
    }


def _series_index(snapshot: dict) -> Dict[Tuple[str, str, Tuple[Tuple[str, str], ...]], dict]:
    index = {}
    for family in snapshot.get("metrics", []):
        for sample in family["samples"]:
            labels = tuple(sorted(sample.get("labels", {}).items()))
            index[(family["name"], family["kind"], labels)] = sample
    return index


def diff_snapshots(old: dict, new: dict) -> dict:
    """Per-series deltas between two snapshots.

    Returns ``{"changed": [...], "added": [...], "removed": [...]}``;
    two snapshots of identical state diff to three empty lists, which is
    the round-trip property the exporter tests pin down.
    """
    old_index = _series_index(old)
    new_index = _series_index(new)
    changed: List[dict] = []
    added: List[dict] = []
    removed: List[dict] = []

    for key in sorted(set(old_index) | set(new_index)):
        name, kind, labels = key
        entry = {"name": name, "kind": kind, "labels": dict(labels)}
        if key not in old_index:
            added.append(entry)
            continue
        if key not in new_index:
            removed.append(entry)
            continue
        before, after = old_index[key], new_index[key]
        if kind == "histogram":
            delta_count = after["count"] - before["count"]
            delta_sum = after["sum"] - before["sum"]
            if delta_count or delta_sum:
                entry["delta_count"] = delta_count
                entry["delta_sum"] = delta_sum
                window = _window_sample(before, after)
                if window is not None:
                    percentiles = histogram_sample_percentiles(window)
                    if percentiles is not None:
                        # The distribution of the observations that
                        # arrived *between* the snapshots — the same
                        # delta-histogram math the SLO engine's burn-
                        # rate windows use.
                        entry["window_percentiles"] = percentiles
                changed.append(entry)
        else:
            delta = after["value"] - before["value"]
            if delta:
                entry["delta"] = delta
                changed.append(entry)
    return {"changed": changed, "added": added, "removed": removed}


def render_diff_text(diff: dict) -> str:
    """A human-readable rendering of :func:`diff_snapshots`."""
    lines: List[str] = []
    for entry in diff["changed"]:
        labels = _format_labels(entry["labels"])
        if entry["kind"] == "histogram":
            percentiles = entry.get("window_percentiles")
            tail = ""
            if percentiles:
                tail = " window " + " ".join(
                    f"{key.replace('_', '.')}={value:g}"
                    for key, value in percentiles.items()
                )
            lines.append(
                f"~ {entry['name']}{labels} "
                f"count {entry['delta_count']:+d} sum {entry['delta_sum']:+g}"
                f"{tail}"
            )
        else:
            lines.append(f"~ {entry['name']}{labels} {entry['delta']:+g}")
    for entry in diff["added"]:
        lines.append(f"+ {entry['name']}{_format_labels(entry['labels'])}")
    for entry in diff["removed"]:
        lines.append(f"- {entry['name']}{_format_labels(entry['labels'])}")
    if not lines:
        return "no changes\n"
    return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_QUANTILES",
    "render_prometheus",
    "render_snapshot_json",
    "write_snapshot",
    "load_snapshot",
    "merge_snapshots",
    "combine_snapshots",
    "diff_snapshots",
    "render_diff_text",
    "histogram_sample_percentiles",
]
