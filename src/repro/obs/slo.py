"""SLO engine: declarative service-level objectives over snapshots.

§5.8 backs Opprentice's practicality claim with absolute runtime
numbers (per-point feature extraction ~0.15 s, classification
< 0.0001 s, retraining < 5 min). Everything else in `repro.obs` only
*records* latencies; this module *judges* them: a TOML/JSON spec file
declares objectives (a latency quantile, an error/drop ratio, an
availability floor) against metric names in a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, and
:func:`evaluate_slos` turns a snapshot — or a checkpointed soak series
from ``repro-loadgen`` — into an :class:`SLOReport` whose violations
fail the build (``repro-obs slo`` exits non-zero).

Spec schema (one ``[[slo]]`` table per objective)::

    [[slo]]
    name = "fleet-ingest-p99"          # unique, shown in the report
    objective = "p99_latency"          # p<Q>_latency | latency_quantile
                                       # | error_ratio | drop_ratio
                                       # | availability
    metric = "repro_fleet_ingest_seconds"   # histogram (latency) or
                                            # numerator counter (ratios)
    target = 0.25                      # seconds / max ratio / min avail
    windows = ["5m", "1h"]             # fast/slow burn-rate windows,
                                       # in *simulated* soak time
    burn_rate_limit = 1.0              # breach when every window's
                                       # burn rate exceeds this
    [slo.labels]                       # optional series selector
    kpi = "PV-000"

Ratio objectives additionally take ``denominator`` (+ optional
``denominator_labels``); ``latency_quantile`` takes an explicit
``quantile``.

Burn-rate semantics follow the multi-window SRE recipe: each window is
the *delta* between the newest checkpoint and the checkpoint one window
earlier (cumulative counters and histogram buckets subtract cleanly),
its error ratio is divided by the objective's error budget, and the SLO
is violated only when **every** evaluated window burns above
``burn_rate_limit`` — a fast-window spike that the slow window has
already absorbed is reported but does not page. A plain snapshot (no
checkpoints) evaluates one ``total`` window over the whole run. A spec
whose metric has no data at all is a violation, not a pass: a gate that
silently measures nothing is the worst kind of green.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .exporters import load_snapshot
from .metrics import estimate_cdf, estimate_percentile

#: Objective types after normalisation (``p99_latency`` and friends are
#: sugar for ``latency_quantile`` with the quantile baked in).
OBJECTIVE_TYPES = (
    "latency_quantile",
    "error_ratio",
    "drop_ratio",
    "availability",
)

#: Default fast/slow burn-rate windows, in simulated soak time.
DEFAULT_WINDOWS: Tuple[str, ...] = ("5m", "1h")

_P_LATENCY = re.compile(r"^p(\d{1,3}(?:\.\d+)?)_latency$")
_WINDOW = re.compile(r"^(\d+(?:\.\d+)?)\s*(s|m|h|d|w)$")
_WINDOW_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0,
                 "w": 604800.0}

_SPEC_KEYS = {
    "name", "objective", "metric", "target", "labels", "quantile",
    "denominator", "denominator_labels", "windows", "burn_rate_limit",
    "description",
}


class SLOSpecError(ValueError):
    """A malformed SLO spec (unknown objective, bad target, ...)."""


def parse_window(text: str) -> float:
    """``"5m"`` -> 300.0 seconds (units: s, m, h, d, w)."""
    match = _WINDOW.match(str(text).strip())
    if not match:
        raise SLOSpecError(
            f"invalid window {text!r}: expected <number><s|m|h|d|w>, "
            f"e.g. '5m' or '1h'"
        )
    return float(match.group(1)) * _WINDOW_UNITS[match.group(2)]


@dataclass(frozen=True)
class SLOSpec:
    """One declared objective, normalised and validated."""

    name: str
    objective: str  # one of OBJECTIVE_TYPES
    metric: str
    target: float
    labels: Tuple[Tuple[str, str], ...] = ()
    quantile: Optional[float] = None  # latency_quantile only
    denominator: Optional[str] = None  # ratio objectives only
    denominator_labels: Tuple[Tuple[str, str], ...] = ()
    windows: Tuple[str, ...] = DEFAULT_WINDOWS
    burn_rate_limit: float = 1.0
    description: str = ""

    @property
    def budget(self) -> float:
        """The error budget the burn rate is measured against."""
        if self.objective == "latency_quantile":
            assert self.quantile is not None
            return 1.0 - self.quantile
        if self.objective == "availability":
            return 1.0 - self.target
        return self.target  # error_ratio / drop_ratio


def _labels_tuple(value: object, where: str) -> Tuple[Tuple[str, str], ...]:
    if value is None:
        return ()
    if not isinstance(value, Mapping):
        raise SLOSpecError(f"{where}: labels must be a table of key = value")
    return tuple(sorted((str(k), str(v)) for k, v in value.items()))


def parse_slo_spec(raw: Mapping[str, object]) -> SLOSpec:
    """Validate one spec table; raises :class:`SLOSpecError` on any
    unknown key, objective, or out-of-range value."""
    name = raw.get("name")
    if not name or not isinstance(name, str):
        raise SLOSpecError("every SLO needs a non-empty string 'name'")
    where = f"SLO {name!r}"
    unknown = set(raw) - _SPEC_KEYS
    if unknown:
        raise SLOSpecError(
            f"{where}: unknown key(s) {sorted(unknown)}; "
            f"expected {sorted(_SPEC_KEYS)}"
        )
    metric = raw.get("metric")
    if not metric or not isinstance(metric, str):
        raise SLOSpecError(f"{where}: 'metric' is required")
    target = raw.get("target")
    if not isinstance(target, (int, float)) or isinstance(target, bool):
        raise SLOSpecError(f"{where}: 'target' must be a number")
    target = float(target)

    objective = str(raw.get("objective", ""))
    quantile = raw.get("quantile")
    match = _P_LATENCY.match(objective)
    if match:
        if quantile is not None:
            raise SLOSpecError(
                f"{where}: {objective!r} implies the quantile; drop the "
                f"explicit 'quantile' key or use objective = "
                f"'latency_quantile'"
            )
        quantile = float(match.group(1)) / 100.0
        objective = "latency_quantile"
    if objective not in OBJECTIVE_TYPES:
        raise SLOSpecError(
            f"{where}: unknown objective {raw.get('objective')!r}; "
            f"expected p<Q>_latency or one of {list(OBJECTIVE_TYPES)}"
        )

    if objective == "latency_quantile":
        if quantile is None:
            raise SLOSpecError(
                f"{where}: latency_quantile needs a 'quantile' in (0, 1)"
            )
        quantile = float(quantile)
        if not 0.0 < quantile < 1.0:
            raise SLOSpecError(
                f"{where}: quantile must be in (0, 1), got {quantile}"
            )
        if target <= 0.0:
            raise SLOSpecError(
                f"{where}: latency target must be > 0, got {target}"
            )
    elif quantile is not None:
        raise SLOSpecError(f"{where}: 'quantile' only applies to latency")

    denominator = raw.get("denominator")
    if objective in ("error_ratio", "drop_ratio", "availability"):
        if not denominator or not isinstance(denominator, str):
            raise SLOSpecError(
                f"{where}: {objective} needs a 'denominator' counter name"
            )
        if objective == "availability":
            if not 0.0 < target < 1.0:
                raise SLOSpecError(
                    f"{where}: availability target must be in (0, 1), "
                    f"got {target}"
                )
        elif not 0.0 < target <= 1.0:
            raise SLOSpecError(
                f"{where}: ratio target must be in (0, 1], got {target}"
            )
    elif denominator is not None:
        raise SLOSpecError(
            f"{where}: 'denominator' only applies to ratio objectives"
        )

    windows = raw.get("windows", list(DEFAULT_WINDOWS))
    if (
        not isinstance(windows, (list, tuple))
        or not windows
        or not all(isinstance(w, str) for w in windows)
    ):
        raise SLOSpecError(
            f"{where}: 'windows' must be a non-empty list of durations"
        )
    for window in windows:
        parse_window(window)  # raises on malformed durations

    burn_rate_limit = raw.get("burn_rate_limit", 1.0)
    if (
        not isinstance(burn_rate_limit, (int, float))
        or isinstance(burn_rate_limit, bool)
        or float(burn_rate_limit) <= 0.0
    ):
        raise SLOSpecError(
            f"{where}: burn_rate_limit must be > 0, "
            f"got {burn_rate_limit!r}"
        )

    return SLOSpec(
        name=name,
        objective=objective,
        metric=metric,
        target=target,
        labels=_labels_tuple(raw.get("labels"), where),
        quantile=quantile,
        denominator=denominator if isinstance(denominator, str) else None,
        denominator_labels=_labels_tuple(
            raw.get("denominator_labels"), where
        ),
        windows=tuple(windows),
        burn_rate_limit=float(burn_rate_limit),
        description=str(raw.get("description", "")),
    )


def parse_slo_specs(document: Mapping[str, object]) -> List[SLOSpec]:
    """All ``[[slo]]`` tables of a targets document, validated."""
    tables = document.get("slo")
    if not isinstance(tables, list) or not tables:
        raise SLOSpecError(
            "targets document must contain at least one [[slo]] table"
        )
    specs = [parse_slo_spec(raw) for raw in tables]
    names = [spec.name for spec in specs]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise SLOSpecError(f"duplicate SLO name(s): {sorted(duplicates)}")
    return specs


def load_slo_specs(path: Union[str, Path]) -> List[SLOSpec]:
    """Read a ``.toml`` or ``.json`` targets file."""
    target = Path(path)
    text = target.read_text(encoding="utf-8")
    if target.suffix == ".toml":
        try:
            import tomllib
        except ImportError as error:  # Python < 3.11
            raise SLOSpecError(
                f"{target}: TOML targets need Python >= 3.11 (tomllib); "
                f"use a .json targets file on older interpreters"
            ) from error
        try:
            document = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise SLOSpecError(f"{target}: invalid TOML: {error}") from error
    else:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise SLOSpecError(f"{target}: invalid JSON: {error}") from error
    return parse_slo_specs(document)


# ----------------------------------------------------------------------
# Snapshot series: (simulated seconds, snapshot) checkpoints.
# ----------------------------------------------------------------------
SnapshotSeries = List[Tuple[Optional[float], dict]]


def load_snapshot_series(path: Union[str, Path]) -> SnapshotSeries:
    """A plain snapshot *or* a ``repro-loadgen`` soak document.

    A soak document (``{"checkpoints": [{"sim_seconds": ...,
    "snapshot": {...}}, ...]}``) yields the full simulated-time series
    the burn-rate windows slice; a plain snapshot yields a single
    un-timestamped entry evaluated as one ``total`` window.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict) and "checkpoints" in data:
        series: SnapshotSeries = []
        for checkpoint in data["checkpoints"]:
            series.append(
                (float(checkpoint["sim_seconds"]), checkpoint["snapshot"])
            )
        if not series:
            raise ValueError(f"{path}: soak document has no checkpoints")
        if any(
            later <= earlier
            for (earlier, _), (later, _) in zip(series, series[1:])
        ):
            raise ValueError(
                f"{path}: checkpoint sim_seconds must be strictly "
                f"increasing"
            )
        return series
    if isinstance(data, dict) and "metrics" in data:
        return [(None, data)]
    # Re-raise load_snapshot's uniform error for anything else.
    load_snapshot(path)
    raise ValueError(f"{path}: not a snapshot or soak document")


# ----------------------------------------------------------------------
# Aggregation: select + sum matching series out of one snapshot.
# ----------------------------------------------------------------------
def _matches(labels: Mapping[str, str],
             selector: Tuple[Tuple[str, str], ...]) -> bool:
    return all(labels.get(key) == value for key, value in selector)


def _aggregate(
    snapshot: dict, metric: str, selector: Tuple[Tuple[str, str], ...]
) -> Optional[dict]:
    """Sum every sample of ``metric`` matching ``selector``.

    Returns ``{"kind", "value"}`` for counters/gauges or ``{"kind",
    "bounds", "cumulative", "count", "sum"}`` for histograms; None when
    no series matches (distinct from a matching-but-empty histogram).
    """
    for family in snapshot.get("metrics", []):
        if family["name"] != metric:
            continue
        matching = [
            sample for sample in family["samples"]
            if _matches(sample.get("labels", {}), selector)
        ]
        if not matching:
            return None
        if family["kind"] != "histogram":
            return {
                "kind": family["kind"],
                "value": float(sum(s["value"] for s in matching)),
            }
        bounds: List[float] = []
        for label, _ in matching[0]["buckets"]:
            bound = float(label)
            if bound != float("inf"):
                bounds.append(bound)
        cumulative = [0.0] * (len(bounds) + 1)
        for sample in matching:
            if len(sample["buckets"]) != len(cumulative):
                raise ValueError(
                    f"metric {metric!r}: matching series use different "
                    f"bucket layouts; narrow the label selector"
                )
            for index, (_, count) in enumerate(sample["buckets"]):
                cumulative[index] += float(count)
        return {
            "kind": "histogram",
            "bounds": bounds,
            "cumulative": cumulative,
            "count": float(sum(s["count"] for s in matching)),
            "sum": float(sum(s["sum"] for s in matching)),
        }
    return None


def _delta(newer: Optional[dict], older: Optional[dict]) -> Optional[dict]:
    """``newer - older`` for cumulative aggregates (older=None keeps
    newer unchanged: the window starts before the metric existed)."""
    if newer is None:
        return None
    if older is None:
        return newer
    if newer["kind"] != "histogram":
        return {"kind": newer["kind"],
                "value": newer["value"] - older["value"]}
    if newer["bounds"] != older["bounds"]:
        return newer  # re-registered mid-run; fall back to totals
    return {
        "kind": "histogram",
        "bounds": newer["bounds"],
        "cumulative": [
            late - early
            for late, early in zip(newer["cumulative"], older["cumulative"])
        ],
        "count": newer["count"] - older["count"],
        "sum": newer["sum"] - older["sum"],
    }


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowEval:
    """One burn-rate window's verdict for one SLO."""

    window: str  # "5m" | "1h" | ... | "total"
    span_seconds: Optional[float]  # simulated span actually covered
    value: Optional[float]  # quantile estimate / observed ratio
    error_ratio: Optional[float]
    burn_rate: Optional[float]
    breached: Optional[bool]  # None = no data in this window

    def as_dict(self) -> dict:
        return {
            "window": self.window,
            "span_seconds": self.span_seconds,
            "value": self.value,
            "error_ratio": self.error_ratio,
            "burn_rate": self.burn_rate,
            "breached": self.breached,
        }


@dataclass(frozen=True)
class SLOResult:
    """One SLO's verdict across its windows."""

    spec: SLOSpec
    windows: Tuple[WindowEval, ...]
    violated: bool
    reason: str

    def as_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "objective": self.spec.objective,
            "metric": self.spec.metric,
            "labels": dict(self.spec.labels),
            "target": self.spec.target,
            "quantile": self.spec.quantile,
            "burn_rate_limit": self.spec.burn_rate_limit,
            "violated": self.violated,
            "reason": self.reason,
            "windows": [window.as_dict() for window in self.windows],
        }


@dataclass(frozen=True)
class SLOReport:
    """Every SLO's verdict; ``ok`` gates the CLI exit code."""

    results: Tuple[SLOResult, ...] = field(default_factory=tuple)

    @property
    def violations(self) -> List[SLOResult]:
        return [result for result in self.results if result.violated]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "ok": self.ok,
            "violations": [result.spec.name for result in self.violations],
            "results": [result.as_dict() for result in self.results],
        }

    def render(self) -> str:
        """A fixed-width operator table, one row per (SLO, window)."""
        header = (
            f"{'SLO':<26} {'OBJECTIVE':<17} {'WINDOW':<7} "
            f"{'VALUE':>12} {'TARGET':>12} {'BURN':>8}  STATUS"
        )
        lines = [header, "-" * len(header)]
        for result in self.results:
            label = result.spec.name
            for window in result.windows:
                value = "-" if window.value is None else f"{window.value:.6g}"
                burn = (
                    "-" if window.burn_rate is None
                    else f"{window.burn_rate:.3g}"
                )
                status = (
                    "no data" if window.breached is None
                    else ("BREACH" if window.breached else "ok")
                )
                lines.append(
                    f"{label:<26} {result.spec.objective:<17} "
                    f"{window.window:<7} {value:>12} "
                    f"{result.spec.target:>12.6g} {burn:>8}  {status}"
                )
                label = ""  # name only on the first row of the group
            verdict = "VIOLATED" if result.violated else "met"
            lines.append(f"{'':<26} -> {verdict}: {result.reason}")
        lines.append("-" * len(header))
        lines.append(
            f"{len(self.results)} SLOs, "
            f"{len(self.violations)} violated"
        )
        return "\n".join(lines)


def _window_eval(
    spec: SLOSpec, window_name: str, span: Optional[float],
    numerator: Optional[dict], denominator: Optional[dict],
) -> WindowEval:
    """Judge one window's delta aggregates against the objective."""
    no_data = WindowEval(
        window=window_name, span_seconds=span, value=None,
        error_ratio=None, burn_rate=None, breached=None,
    )
    if spec.objective == "latency_quantile":
        if numerator is None or numerator.get("kind") != "histogram":
            return no_data
        assert spec.quantile is not None
        value = estimate_percentile(
            numerator["bounds"], numerator["cumulative"], spec.quantile
        )
        below = estimate_cdf(
            numerator["bounds"], numerator["cumulative"], spec.target
        )
        if value is None or below is None:
            return no_data
        error_ratio = 1.0 - below
    else:
        if numerator is None or denominator is None:
            return no_data
        total = denominator["value"]
        if total <= 0:
            return no_data
        ratio = numerator["value"] / total
        if spec.objective == "availability":
            value = 1.0 - ratio
            error_ratio = ratio
        else:
            value = ratio
            error_ratio = ratio
    budget = spec.budget
    burn_rate = error_ratio / budget if budget > 0 else float("inf")
    return WindowEval(
        window=window_name,
        span_seconds=span,
        value=value,
        error_ratio=error_ratio,
        burn_rate=burn_rate,
        breached=burn_rate > spec.burn_rate_limit,
    )


def _baseline_index(series: SnapshotSeries, window_seconds: float) -> int:
    """The newest checkpoint at least ``window_seconds`` of simulated
    time before the final one (falling back to the oldest)."""
    end = series[-1][0]
    assert end is not None
    cutoff = end - window_seconds
    best = 0
    for index, (sim, _) in enumerate(series[:-1]):
        if sim is not None and sim <= cutoff:
            best = index
    return best


def evaluate_slo(spec: SLOSpec, series: SnapshotSeries) -> SLOResult:
    """One spec against a snapshot series (see :func:`evaluate_slos`)."""
    final_sim, final = series[-1]
    final_num = _aggregate(final, spec.metric, spec.labels)
    final_den = (
        _aggregate(final, spec.denominator, spec.denominator_labels)
        if spec.denominator is not None
        else None
    )

    windows: List[WindowEval] = []
    if len(series) < 2 or final_sim is None:
        windows.append(
            _window_eval(spec, "total", final_sim, final_num, final_den)
        )
    else:
        for window_name in spec.windows:
            window_seconds = parse_window(window_name)
            baseline_sim, baseline = series[
                _baseline_index(series, window_seconds)
            ]
            assert baseline_sim is not None
            numerator = _delta(
                final_num, _aggregate(baseline, spec.metric, spec.labels)
            )
            denominator = (
                _delta(
                    final_den,
                    _aggregate(
                        baseline, spec.denominator, spec.denominator_labels
                    ),
                )
                if spec.denominator is not None
                else None
            )
            windows.append(
                _window_eval(
                    spec, window_name, final_sim - baseline_sim,
                    numerator, denominator,
                )
            )

    evaluated = [w for w in windows if w.breached is not None]
    if not evaluated:
        return SLOResult(
            spec=spec,
            windows=tuple(windows),
            violated=True,
            reason=(
                f"no data for metric {spec.metric!r}"
                + (f" with labels {dict(spec.labels)}" if spec.labels else "")
                + " — a gate that measures nothing must not pass"
            ),
        )
    violated = all(w.breached for w in evaluated)
    burns = ", ".join(
        f"{w.window}={w.burn_rate:.3g}x" for w in evaluated
    )
    if violated:
        reason = (
            f"burn rate over {spec.burn_rate_limit:g}x in every "
            f"evaluated window ({burns})"
        )
    elif any(w.breached for w in evaluated):
        reason = (
            f"transient burn ({burns}); not every window agrees, "
            f"budget is recovering"
        )
    else:
        reason = f"within budget ({burns})"
    return SLOResult(
        spec=spec, windows=tuple(windows), violated=violated, reason=reason
    )


def evaluate_slos(
    specs: Sequence[SLOSpec], series: SnapshotSeries
) -> SLOReport:
    """Judge every spec against the same snapshot series."""
    if not series:
        raise ValueError("cannot evaluate SLOs against an empty series")
    return SLOReport(
        results=tuple(evaluate_slo(spec, series) for spec in specs)
    )


__all__ = [
    "OBJECTIVE_TYPES",
    "DEFAULT_WINDOWS",
    "SLOSpecError",
    "SLOSpec",
    "WindowEval",
    "SLOResult",
    "SLOReport",
    "parse_window",
    "parse_slo_spec",
    "parse_slo_specs",
    "load_slo_specs",
    "load_snapshot_series",
    "evaluate_slo",
    "evaluate_slos",
]
