"""Span-based tracing for the Opprentice pipeline.

A *span* is one timed stage with metadata::

    with tracer.span("feature_matrix.extract", kpi="PV") as span:
        matrix = extractor.extract(series)
        span.set("n_points", matrix.n_points)

Spans nest (parent tracking is per-thread, so spans opened inside the
feature-extraction thread pool attach to their own thread's stack) and
finished spans are kept in a bounded buffer for in-process inspection —
the §5.8 latency-ordering test reads per-span wall times directly.

Span names form a dotted taxonomy (``feature_matrix.extract``,
``train.fit``, ``classify.score_features``, ``service.retrain``, ...);
see ``docs/observability.md`` for the catalogue.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Default cap on retained finished spans; older records are dropped
#: (``Tracer.dropped`` counts them) so long streaming runs stay bounded.
DEFAULT_MAX_SPANS = 10_000


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: wall time plus metadata."""

    name: str
    duration: float  # seconds
    span_id: int
    parent_id: Optional[int]
    depth: int
    meta: Dict[str, object] = field(default_factory=dict)


class Span:
    """An in-flight span; use as a context manager (re-entry is not
    supported — ask the tracer for a fresh span per stage)."""

    __slots__ = ("_tracer", "name", "meta", "_begin", "span_id", "parent_id",
                 "depth")

    def __init__(self, tracer: "Tracer", name: str, meta: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.meta = meta
        self._begin = 0.0
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0

    def set(self, key: str, value: object) -> None:
        """Attach metadata discovered mid-span."""
        self.meta[key] = value

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self._begin = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._begin
        self._tracer._close(self, duration)
        return False


class Tracer:
    """Creates spans and retains their finished records.

    Parameters
    ----------
    max_spans:
        Bound on the finished-record buffer (oldest dropped first).
    on_finish:
        Optional callback invoked with every :class:`SpanRecord`; the
        observability provider uses it to feed the per-span latency
        histogram so traces and metrics stay consistent.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS,
                 on_finish: Optional[Callable[[SpanRecord], None]] = None):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self.on_finish = on_finish
        self._records: List[SpanRecord] = []
        self._dropped = 0
        self._next_id = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def span(self, name: str, **meta) -> Span:
        return Span(self, name, dict(meta))

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        span.parent_id = stack[-1].span_id if stack else None
        span.depth = len(stack)
        stack.append(span)

    def _close(self, span: Span, duration: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record = SpanRecord(
            name=span.name,
            duration=duration,
            span_id=span.span_id,
            parent_id=span.parent_id,
            depth=span.depth,
            meta=dict(span.meta),
        )
        with self._lock:
            self._records.append(record)
            if len(self._records) > self.max_spans:
                overflow = len(self._records) - self.max_spans
                del self._records[:overflow]
                self._dropped += overflow
        if self.on_finish is not None:
            self.on_finish(record)

    # ------------------------------------------------------------------
    @property
    def finished(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def find(self, name: str) -> List[SpanRecord]:
        return [r for r in self.finished if r.name == name]

    def durations(self, name: str) -> List[float]:
        return [r.duration for r in self.find(name)]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._dropped = 0


__all__ = [
    "DEFAULT_MAX_SPANS",
    "Span",
    "SpanRecord",
    "Tracer",
]
