"""Structured JSON event log.

Where metrics aggregate and spans time, events *narrate*: one JSON
object per pipeline occurrence (alert opened, retraining round, cThld
observation), machine-parseable for audit trails and incident review::

    log.emit("alert_opened", kpi="PV", begin=1042, peak=0.92)

Events live in a bounded in-memory buffer and can additionally be
streamed to a *sink* callable (e.g. ``file.write`` composed with a
newline) for durable JSONL logs.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, List, Optional

#: Default cap on buffered events (oldest dropped first).
DEFAULT_MAX_EVENTS = 10_000


class EventLog:
    """A bounded, thread-safe structured event buffer.

    Parameters
    ----------
    max_events:
        Buffer bound; :attr:`dropped` counts evictions.
    sink:
        Optional callable receiving each event's JSON line (with
        trailing newline) as it is emitted.
    clock:
        Timestamp source (seconds); injectable for deterministic tests.
    """

    def __init__(
        self,
        max_events: int = DEFAULT_MAX_EVENTS,
        sink: Optional[Callable[[str], object]] = None,
        clock: Callable[[], float] = time.time,
    ):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.sink = sink
        self.clock = clock
        self._events: List[Dict[str, object]] = []
        self._seq = 0
        self._dropped = 0
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields) -> Dict[str, object]:
        """Record one event; returns the stored dict."""
        if not kind:
            raise ValueError("event kind must be non-empty")
        with self._lock:
            event: Dict[str, object] = {
                "event": kind,
                "seq": self._seq,
                "ts": self.clock(),
            }
            self._seq += 1
            for key, value in fields.items():
                event[key] = value
            self._events.append(event)
            if len(self._events) > self.max_events:
                overflow = len(self._events) - self.max_events
                del self._events[:overflow]
                self._dropped += overflow
        if self.sink is not None:
            self.sink(json.dumps(event, default=str) + "\n")
        return event

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def find(self, kind: str) -> List[Dict[str, object]]:
        return [e for e in self.events if e["event"] == kind]

    def to_jsonl(self) -> str:
        """The buffered events as one JSON object per line."""
        return "\n".join(
            json.dumps(event, default=str) for event in self.events
        )

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0


__all__ = [
    "DEFAULT_MAX_EVENTS",
    "EventLog",
]
