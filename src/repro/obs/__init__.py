"""Observability for the Opprentice pipeline: metrics, spans, events.

§5.8 grounds the paper's practicality claim in runtime numbers — per-
point feature extraction ~0.15 s, classification < 0.0001 s, retraining
< 5 min. This package makes those quantities observable in any run, not
just one ad-hoc benchmark:

* :class:`MetricsRegistry` — counters, gauges, and histograms with the
  fixed :data:`DEFAULT_LATENCY_BUCKETS` (1 µs .. 10 min);
* :class:`Tracer` — nested wall-time spans with metadata
  (``with obs.span("feature_matrix.extract", kpi="PV"): ...``);
* :class:`EventLog` — a structured JSON event stream (alert lifecycle,
  retraining rounds, cThld observations);
* exporters — Prometheus text exposition and JSON snapshots, diffable
  with the ``repro-obs`` CLI (``python -m repro.obs``).

All of it sits behind a process-global but swappable provider whose
default is a true no-op, so the instrumented hot paths are free when
observability is off::

    from repro import obs

    obs.enable()                       # or REPRO_OBS=1 + enable_from_env()
    ...run the pipeline...
    print(obs.render_prometheus(obs.get_provider().snapshot()))

The package is dependency-free (stdlib only) and sits at the bottom of
the import graph — every layer may instrument itself without cycles.
See ``docs/observability.md`` for the metric and span taxonomy.
"""

from .events import DEFAULT_MAX_EVENTS, EventLog
from .exporters import (
    DEFAULT_QUANTILES,
    combine_snapshots,
    diff_snapshots,
    histogram_sample_percentiles,
    load_snapshot,
    merge_snapshots,
    render_diff_text,
    render_prometheus,
    render_snapshot_json,
    write_snapshot,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    estimate_cdf,
    estimate_percentile,
    format_bound,
)
from .slo import (
    DEFAULT_WINDOWS,
    SLOReport,
    SLOResult,
    SLOSpec,
    SLOSpecError,
    WindowEval,
    evaluate_slo,
    evaluate_slos,
    load_slo_specs,
    load_snapshot_series,
    parse_slo_spec,
    parse_slo_specs,
    parse_window,
)
from .provider import (
    NULL_PROVIDER,
    OBS_ENV_VAR,
    SPAN_SECONDS_METRIC,
    NullProvider,
    ObservabilityProvider,
    disable,
    enable,
    enable_from_env,
    get_provider,
    is_enabled,
    set_provider,
)
from .tracing import DEFAULT_MAX_SPANS, Span, SpanRecord, Tracer

__all__ = [
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "DEFAULT_LATENCY_BUCKETS",
    "format_bound",
    "estimate_percentile",
    "estimate_cdf",
    # tracing
    "Tracer",
    "Span",
    "SpanRecord",
    "DEFAULT_MAX_SPANS",
    # events
    "EventLog",
    "DEFAULT_MAX_EVENTS",
    # provider
    "NullProvider",
    "ObservabilityProvider",
    "NULL_PROVIDER",
    "OBS_ENV_VAR",
    "SPAN_SECONDS_METRIC",
    "get_provider",
    "set_provider",
    "enable",
    "disable",
    "is_enabled",
    "enable_from_env",
    # exporters
    "render_prometheus",
    "render_snapshot_json",
    "write_snapshot",
    "load_snapshot",
    "merge_snapshots",
    "combine_snapshots",
    "diff_snapshots",
    "render_diff_text",
    "histogram_sample_percentiles",
    "DEFAULT_QUANTILES",
    # slo
    "SLOSpec",
    "SLOSpecError",
    "SLOReport",
    "SLOResult",
    "WindowEval",
    "DEFAULT_WINDOWS",
    "parse_window",
    "parse_slo_spec",
    "parse_slo_specs",
    "load_slo_specs",
    "load_snapshot_series",
    "evaluate_slo",
    "evaluate_slos",
]
