"""Metric primitives: counters, gauges and fixed-bucket histograms.

The §5.8 practicality argument is quantitative — per-point feature
extraction ~0.15 s, classification < 0.0001 s, retraining < 5 min — so
the repro needs first-class runtime accounting. This module is the
storage layer: a :class:`MetricsRegistry` holds metric *families*
(name + kind + help) whose children are distinguished by label sets,
Prometheus-style. Everything is stdlib-only and thread-safe (feature
extraction may run on a thread pool).

Naming follows the Prometheus conventions: ``repro_*_total`` counters,
``repro_*_seconds`` histograms with the fixed
:data:`DEFAULT_LATENCY_BUCKETS` (1 µs .. 10 min), and plain gauges.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Fixed latency buckets in seconds, spanning classification (~µs),
#: per-point feature extraction (~ms-0.1 s) and retraining (~s-min) so
#: one bucket layout serves every stage of the pipeline.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0,
    120.0, 600.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Invalid metric name, label, kind clash, or observation."""


class Counter:
    """A monotonically increasing count (events, points, alerts)."""

    kind = "counter"

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    def _set_total(self, value: float) -> None:
        # Backing store for ServiceStats' attribute-compatible setters;
        # not part of the public counter contract (counters only go up).
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (cThld, bank size, queue depth)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution (latencies in seconds).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    rest. ``counts`` are per-bucket (non-cumulative); exporters derive
    the cumulative Prometheus form.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram buckets must be distinct and ascending: {bounds}"
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(upper_bound_label, cumulative_count)`` pairs, ``+Inf`` last."""
        counts = self.counts
        pairs: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            pairs.append((format_bound(bound), running))
        pairs.append(("+Inf", running + counts[-1]))
        return pairs


def format_bound(bound: float) -> str:
    """A stable short rendering for bucket upper bounds (``0.001``)."""
    text = f"{bound:g}"
    return text


def estimate_percentile(
    bounds: Sequence[float], cumulative: Sequence[float], q: float
) -> Optional[float]:
    """Prometheus-style percentile estimate from cumulative buckets.

    ``bounds`` are the finite ascending upper bounds; ``cumulative`` has
    one extra trailing entry for the implicit ``+Inf`` bucket, so
    ``cumulative[-1]`` is the total observation count. The estimate
    interpolates linearly inside the bucket the rank falls in (lower
    edge 0 for the first bucket, matching ``histogram_quantile``); a
    rank landing in the overflow bucket returns the highest finite
    bound, the standard conservative convention. Returns None for an
    empty histogram.

    This is the single quantile implementation shared by the SLO engine
    (`repro.obs.slo`), the ``repro-obs dump``/``diff`` percentile
    columns and the fleet status rollup.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError(f"quantile must be in [0, 1], got {q}")
    if len(cumulative) != len(bounds) + 1:
        raise MetricError(
            f"cumulative counts must cover every bound plus +Inf: "
            f"{len(bounds)} bounds, {len(cumulative)} counts"
        )
    total = cumulative[-1]
    if total <= 0:
        return None
    rank = q * total
    index = bisect.bisect_left(cumulative, rank)
    if index >= len(bounds):
        return float(bounds[-1])
    previous = cumulative[index - 1] if index else 0
    in_bucket = cumulative[index] - previous
    upper = bounds[index]
    if in_bucket <= 0:
        return float(upper)
    lower = bounds[index - 1] if index else min(0.0, upper)
    fraction = (rank - previous) / in_bucket
    return float(lower + (upper - lower) * fraction)


def estimate_cdf(
    bounds: Sequence[float], cumulative: Sequence[float], value: float
) -> Optional[float]:
    """Estimated fraction of observations <= ``value`` (interpolated).

    The inverse view of :func:`estimate_percentile`, used by the SLO
    engine to turn a latency histogram into an error ratio ("what
    fraction of requests exceeded the target?"). A ``value`` at or
    beyond the highest finite bound returns the known fraction below
    that bound — overflow observations are counted as violations, the
    conservative choice for a compliance gate. Returns None for an
    empty histogram.
    """
    if len(cumulative) != len(bounds) + 1:
        raise MetricError(
            f"cumulative counts must cover every bound plus +Inf: "
            f"{len(bounds)} bounds, {len(cumulative)} counts"
        )
    total = cumulative[-1]
    if total <= 0:
        return None
    index = bisect.bisect_left(bounds, value)
    if index >= len(bounds):
        return float(cumulative[-2] / total)
    previous = cumulative[index - 1] if index else 0
    in_bucket = cumulative[index] - previous
    upper = bounds[index]
    lower = bounds[index - 1] if index else min(0.0, upper)
    if in_bucket <= 0 or upper == lower:
        return float(previous / total)
    fraction = max(0.0, min(1.0, (value - lower) / (upper - lower)))
    return float((previous + in_bucket * fraction) / total)


class _Family:
    """One metric name: shared kind/help, children per label set."""

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[Tuple[Tuple[str, str], ...], object] = {}


def _label_key(labels: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise MetricError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Thread-safe home for every metric family of one process/service.

    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_points_ingested_total", "Points seen").inc()
    >>> registry.histogram("repro_ingest_seconds").observe(0.002)
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _child(self, name: str, kind: str, help_text: str,
               labels: Mapping[str, object],
               buckets: Optional[Sequence[float]] = None) -> object:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    name, kind, help_text,
                    tuple(buckets) if buckets is not None else None,
                )
                self._families[name] = family
            elif family.kind != kind:
                raise MetricError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            if help_text and not family.help:
                family.help = help_text
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter()
                elif kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(family.buckets or DEFAULT_LATENCY_BUCKETS)
                family.children[key] = child
            return child

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        child = self._child(name, "counter", help_text, labels)
        assert isinstance(child, Counter)
        return child

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        child = self._child(name, "gauge", help_text, labels)
        assert isinstance(child, Gauge)
        return child

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        child = self._child(name, "histogram", help_text, labels, buckets)
        assert isinstance(child, Histogram)
        return child

    # ------------------------------------------------------------------
    def families(self) -> Iterable[_Family]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> dict:
        """A JSON-able dump of every family and child (see exporters)."""
        metrics = []
        for family in self.families():
            samples = []
            for key, child in sorted(family.children.items()):
                labels = dict(key)
                if isinstance(child, Histogram):
                    samples.append({
                        "labels": labels,
                        "buckets": [
                            [label, count] for label, count in child.cumulative()
                        ],
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    assert isinstance(child, (Counter, Gauge))
                    samples.append({"labels": labels, "value": child.value})
            metrics.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            })
        metrics.sort(key=lambda m: m["name"])
        return {"version": 1, "metrics": metrics}

    def clear(self) -> None:
        with self._lock:
            self._families.clear()


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_bound",
    "estimate_percentile",
    "estimate_cdf",
]
