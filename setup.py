"""Legacy setup shim.

This environment has setuptools but not the ``wheel`` package, so PEP
660 editable installs (``pip install -e .``) cannot build an editable
wheel. ``python setup.py develop`` installs the same editable hook
without needing wheel; metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
