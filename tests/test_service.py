"""MonitoringService tests: the full ingest/alert/label/retrain loop."""

import numpy as np
import pytest

from repro.core import AlertEvent, MonitoringService
from repro.timeseries import AnomalyWindow

from test_opprentice import fast_forest, small_bank


@pytest.fixture(scope="module")
def deployment():
    """5 weeks of hourly KPI: 4 bootstrap + 1 live."""
    from repro.data import SeasonalProfile, generate_kpi, inject_anomalies

    generated = generate_kpi(
        weeks=5,
        interval=3600,
        profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                noise_scale=0.02, trend=0.0),
        seed=99,
        name="service-kpi",
    )
    result = inject_anomalies(
        generated.series, target_fraction=0.06, seed=100, mean_window=4.0
    )
    series = result.series
    split = 4 * series.points_per_week
    return series, result.windows, split


def make_service(series, **kwargs):
    return MonitoringService(
        configs=small_bank(series.points_per_week),
        classifier_factory=fast_forest,
        **kwargs,
    )


class TestBootstrap:
    def test_requires_labels(self, deployment):
        series, _, split = deployment
        service = make_service(series)
        unlabeled = series.slice(0, split)
        from repro.timeseries import TimeSeries

        raw = TimeSeries(values=unlabeled.values, interval=unlabeled.interval)
        with pytest.raises(ValueError, match="labelled"):
            service.bootstrap(raw)

    def test_ingest_before_bootstrap_rejected(self, deployment):
        series, _, _ = deployment
        with pytest.raises(RuntimeError, match="bootstrap"):
            make_service(series).ingest(1.0)

    def test_bootstrap_sets_threshold(self, deployment):
        series, _, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        assert 0.0 <= service.cthld <= 1.0
        assert service.history_length == split


class TestIngestAndAlerts:
    @pytest.fixture(scope="class")
    def live_run(self, deployment):
        series, truth_windows, split = deployment
        events_seen = []
        service = make_service(
            series,
            min_duration_points=2,
            alert_callback=events_seen.append,
        )
        service.bootstrap(series.slice(0, split))
        all_events = []
        for value in series.values[split:]:
            all_events.extend(service.ingest(value))
        return service, all_events, events_seen, truth_windows, split, series

    def test_alerts_fire_on_injected_anomalies(self, live_run):
        service, events, _, truth_windows, split, series = live_run
        opened = [e for e in events if e.kind == "opened"]
        assert opened, "no alerts over a week with injected anomalies"
        live_truth = [w for w in truth_windows if w.begin >= split and len(w) >= 2]
        hits = sum(
            1 for w in live_truth
            if any(
                e.begin_index < w.end and w.begin < e.begin_index + 50
                for e in opened
            )
        )
        assert hits >= len(live_truth) * 0.5

    def test_open_close_pairing(self, live_run):
        _, events, _, _, _, _ = live_run
        kinds = [e.kind for e in events]
        # Every closed event follows an opened one.
        assert kinds.count("closed") <= kinds.count("opened")
        for first, second in zip(events, events[1:]):
            if first.kind == "opened" and second.kind == "closed":
                assert second.begin_index == first.begin_index

    def test_callback_receives_all_events(self, live_run):
        _, events, events_seen, _, _, _ = live_run
        assert events_seen == events

    def test_stats_counters(self, live_run):
        service, events, _, _, split, series = live_run
        assert service.stats.points_ingested == len(series) - split
        assert service.stats.alerts_opened == sum(
            1 for e in events if e.kind == "opened"
        )

    def test_short_blips_filtered(self, deployment):
        series, _, split = deployment
        service = make_service(series, min_duration_points=3)
        service.bootstrap(series.slice(0, split))
        # A 2-point run must not open an alert at min duration 3.
        events = []
        base = float(np.nanmedian(series.values))
        for value in [base, base * 4, base * 4, base, base, base]:
            events.extend(service.ingest(value))
        assert all(e.kind != "opened" or e.end_index - e.begin_index >= 3
                   for e in events)


class TestAlertCallbackContainment:
    def test_raising_callback_does_not_break_ingest(self, deployment):
        series, _, split = deployment

        def broken_callback(event):
            raise RuntimeError("pager is down")

        service = make_service(
            series, min_duration_points=1, alert_callback=broken_callback
        )
        service.bootstrap(series.slice(0, split))
        all_events = []
        for value in series.values[split:split + 72]:
            all_events.extend(service.ingest(float(value)))
        # Ingest survived every callback explosion; each delivered
        # event corresponds to one contained error.
        assert service.stats.points_ingested == 72
        assert service.stats.callback_errors == len(all_events)
        assert all_events, "no alert events to exercise the callback"

    def test_callback_errors_in_stats_dict(self, deployment):
        series, _, _ = deployment
        stats = make_service(series).stats
        stats.inc_callback_errors(2)
        assert stats.as_dict()["callback_errors"] == 2


class TestAlertAttribution:
    def test_events_carry_the_kpi_name(self, deployment):
        series, _, split = deployment
        service = make_service(series, min_duration_points=1)
        service.bootstrap(series.slice(0, split))
        events = []
        for value in series.values[split:split + 72]:
            events.extend(service.ingest(float(value)))
        assert events, "no alert events in the probe window"
        assert all(e.kpi == "service-kpi" for e in events)
        assert service.kpi == "service-kpi"

    def test_kpi_field_defaults_to_none(self):
        event = AlertEvent(
            kind="opened", begin_index=0, end_index=1, peak_score=0.5
        )
        assert event.kpi is None


class _RawWindow:
    """A window-shaped object that skips AnomalyWindow's own validation,
    so the service-level checks in submit_labels() are exercised."""

    def __init__(self, begin, end):
        self.begin = begin
        self.end = end


class TestSubmitLabels:
    @pytest.mark.parametrize("begin,end", [(-1, 5), (5, 5), (7, 3)])
    def test_invalid_windows_rejected(self, deployment, begin, end):
        series, _, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        with pytest.raises(ValueError, match="invalid label window"):
            service.submit_labels([_RawWindow(begin, end)])


class TestServiceStats:
    def test_inc_methods_are_the_live_path(self, deployment):
        series, _, _ = deployment
        stats = make_service(series).stats
        stats.inc_points_ingested()
        stats.inc_points_ingested(3)
        stats.inc_anomalous_points()
        stats.inc_alerts_opened(2)
        stats.inc_retrain_rounds()
        assert stats.points_ingested == 4
        assert stats.anomalous_points == 1
        assert stats.alerts_opened == 2
        assert stats.retrain_rounds == 1

    def test_setters_still_backfill(self, deployment):
        series, _, _ = deployment
        stats = make_service(series).stats
        stats.points_ingested = 10
        stats.inc_points_ingested()
        assert stats.points_ingested == 11


class TestRetrain:
    def test_full_cycle(self, deployment):
        series, truth_windows, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        before = service.cthld
        for value in series.values[split:]:
            service.ingest(value)
        # Operator labels the live week using the ground truth windows.
        live_windows = [w for w in truth_windows if w.begin >= split]
        service.submit_labels(live_windows)
        after = service.retrain()
        assert service.stats.retrain_rounds == 1
        assert service.history_length == len(series)
        assert 0.0 <= after <= 1.0
        # The service keeps working after retraining.
        events = service.ingest(float(series.values[-1]))
        assert isinstance(events, list)

    def test_retrain_without_new_data_rejected(self, deployment):
        series, _, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        with pytest.raises(ValueError, match="no new data"):
            service.retrain()

    def test_labels_beyond_history_rejected(self, deployment):
        series, _, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        with pytest.raises(ValueError, match="beyond"):
            service.submit_labels([AnomalyWindow(split + 10, split + 20)])

    def test_min_duration_validated(self, deployment):
        series, _, _ = deployment
        with pytest.raises(ValueError):
            make_service(series, min_duration_points=0)

    def test_retrain_closes_dangling_run(self, deployment):
        series, _, split = deployment
        events_seen = []
        service = make_service(
            series, min_duration_points=2, alert_callback=events_seen.append
        )
        service.bootstrap(series.slice(0, split))
        for value in series.values[split: split + 6]:
            service.ingest(value)
        # Force an open run over the last three ingested points, as if
        # they had been classified anomalous.
        service._run_begin = split + 3
        service._run_scores = [0.9, 0.8, 0.95]
        service.submit_labels([AnomalyWindow(split + 3, split + 6)])
        service.retrain()
        closed = [
            e for e in events_seen
            if e.kind == "closed" and e.begin_index == split + 3
        ]
        assert len(closed) == 1
        assert closed[0].end_index == split + 6
        assert closed[0].peak_score == 0.95
        assert service._run_begin is None

    def test_incremental_features_match_batch_extraction(self, deployment):
        from repro.core import FeatureExtractor

        series, truth_windows, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        for value in series.values[split:]:
            service.ingest(value)
        service.submit_labels([w for w in truth_windows if w.begin >= split])
        service.retrain()
        fresh = FeatureExtractor(
            small_bank(series.points_per_week)
        ).extract(service._history)
        np.testing.assert_allclose(
            service.opprentice._feature_values,
            fresh.values,
            atol=1e-9,
            equal_nan=True,
        )

    def test_retrain_matches_pre_checkpoint_full_refit(self, deployment):
        """The incremental path (cached features + stream checkpoint)
        must produce the same post-retrain decisions as the original
        implementation: a full refit on the combined labelled series
        followed by a full history replay."""
        from repro.core import Opprentice

        series, truth_windows, split = deployment
        live_end = len(series) - 24
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        for value in series.values[split:live_end]:
            service.ingest(value)
        live = [
            w for w in truth_windows
            if w.begin >= split and w.end <= live_end
        ]
        service.submit_labels(live)
        service.retrain()

        reference = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(service._history)
        probe = series.slice(live_end, len(series))
        batch_scores = reference.anomaly_scores(probe)
        decisions = service._streaming.push_many(probe.values)
        online_scores = np.array([d.score for d in decisions])
        np.testing.assert_allclose(online_scores, batch_scores, atol=1e-12)
