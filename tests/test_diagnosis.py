"""repro.diagnosis: anomaly-kind classification of alerted windows."""

import numpy as np
import pytest

from repro.core import MonitoringService, load_model, save_model
from repro.diagnosis import (
    FEATURE_NAMES,
    AnomalyDiagnoser,
    default_diagnoser,
    diagnosis_report,
    fit_diagnoser,
    kind_confusion,
    macro_f1,
    series_period,
    training_corpus,
    window_shape_features,
    window_training_rows,
)
from repro.ml import NotFittedError

from test_opprentice import fast_forest, small_bank


@pytest.fixture(scope="module")
def tiny_diagnoser():
    """A cheap but real diagnoser for integration tests."""
    return fit_diagnoser(seed=0, n_estimators=8, weeks=1.0, repeats=2)


# ----------------------------------------------------------------------
# Shape features
# ----------------------------------------------------------------------
class TestFeatures:
    def test_row_matches_feature_names(self):
        rng = np.random.default_rng(0)
        row = window_shape_features(
            rng.normal(100, 2, 6), rng.normal(100, 2, 64)
        )
        assert row.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(row))

    def test_single_point_window_stays_finite(self):
        """min_duration_points=1 services close length-1 alert runs;
        their features must still be predictable (no empty-slice NaN
        in late_minus_early)."""
        rng = np.random.default_rng(3)
        row = window_shape_features([150.0], rng.normal(100, 2, 64))
        assert np.all(np.isfinite(row))
        assert row[FEATURE_NAMES.index("late_minus_early")] == 0.0

    def test_spike_vs_dip_direction(self):
        context = np.full(64, 100.0)
        up = window_shape_features(np.array([160.0, 150.0]), context)
        down = window_shape_features(np.array([40.0, 50.0]), context)
        direction = FEATURE_NAMES.index("direction")
        assert up[direction] > 0 > down[direction]

    def test_all_missing_window_is_zeros(self):
        row = window_shape_features(
            np.array([np.nan, np.nan]), np.full(64, 10.0)
        )
        assert np.array_equal(row, np.zeros(len(FEATURE_NAMES)))

    def test_empty_context_survives(self):
        row = window_shape_features(np.array([5.0, 6.0]), np.empty(0))
        assert np.all(np.isfinite(row))

    def test_series_period(self):
        assert series_period(3600) == 24
        assert series_period(600) == 144
        assert series_period(7000) is None
        assert series_period(0) is None


# ----------------------------------------------------------------------
# Classifier
# ----------------------------------------------------------------------
class TestDiagnoser:
    def test_fit_requires_two_kinds(self):
        features = np.zeros((4, len(FEATURE_NAMES)))
        with pytest.raises(ValueError, match="two anomaly kinds"):
            AnomalyDiagnoser().fit(features, ["spike"] * 4)

    def test_fit_requires_matching_lengths(self):
        features = np.zeros((4, len(FEATURE_NAMES)))
        with pytest.raises(ValueError, match="kinds"):
            AnomalyDiagnoser().fit(features, ["spike", "dip"])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            AnomalyDiagnoser().predict(np.zeros((1, len(FEATURE_NAMES))))
        with pytest.raises(NotFittedError):
            AnomalyDiagnoser().to_dict()

    def test_predict_proba_rows_normalised(self, tiny_diagnoser):
        features, _ = training_corpus(seed=77, weeks=1.0, repeats=1)
        probs = tiny_diagnoser.predict_proba(features)
        assert probs.shape == (len(features), len(tiny_diagnoser.kinds_))
        sums = probs.sum(axis=1)
        assert np.all((np.abs(sums - 1.0) < 1e-9) | (sums == 0.0))

    def test_json_round_trip_is_exact(self, tiny_diagnoser):
        features, _ = training_corpus(seed=78, weeks=1.0, repeats=1)
        clone = AnomalyDiagnoser.from_dict(tiny_diagnoser.to_dict())
        assert clone.kinds_ == tiny_diagnoser.kinds_
        np.testing.assert_array_equal(
            clone.predict_proba(features),
            tiny_diagnoser.predict_proba(features),
        )
        assert clone.to_dict() == tiny_diagnoser.to_dict()

    def test_from_dict_rejects_unknown_version(self, tiny_diagnoser):
        payload = tiny_diagnoser.to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format"):
            AnomalyDiagnoser.from_dict(payload)

    def test_fitting_is_deterministic(self):
        first = fit_diagnoser(seed=3, n_estimators=4, weeks=1.0, repeats=1)
        second = fit_diagnoser(seed=3, n_estimators=4, weeks=1.0, repeats=1)
        assert first.to_dict() == second.to_dict()


# ----------------------------------------------------------------------
# Accuracy (the ISSUE acceptance bar)
# ----------------------------------------------------------------------
class TestAccuracy:
    def test_macro_f1_on_held_out_corpus(self):
        """The default diagnoser must clear macro-F1 0.85 on a held-out
        slice of the injector corpus (unseen seeds, same regimes)."""
        diagnoser = default_diagnoser()
        features, kinds = training_corpus(seed=4242, weeks=2.0, repeats=2)
        assert len(set(kinds)) == 5, "held-out slice must cover all kinds"
        report = diagnosis_report(kinds, diagnoser.predict(features))
        assert report["n_windows"] >= 100
        assert report["macro_f1"] >= 0.85, report["per_kind"]

    def test_confusion_matrix_shape(self):
        confusion = kind_confusion(
            ["spike", "dip", "spike"], ["spike", "spike", "spike"]
        )
        assert confusion["kinds"] == ["dip", "spike"]
        assert confusion["matrix"] == [[0, 1], [0, 2]]

    def test_macro_f1_degenerate(self):
        assert macro_f1(["spike", "dip"], ["spike", "dip"]) == 1.0
        assert macro_f1([], []) == 0.0


# ----------------------------------------------------------------------
# Service integration: diagnosis rides the alert lifecycle
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def diagnosing_run(tiny_diagnoser):
    """A live service with a diagnoser, plus its event stream."""
    from repro.data import SeasonalProfile, generate_kpi, inject_anomalies

    generated = generate_kpi(
        weeks=5,
        interval=3600,
        profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                noise_scale=0.02, trend=0.0),
        seed=99,
        name="diagnosis-kpi",
    )
    result = inject_anomalies(
        generated.series, target_fraction=0.06, seed=100, mean_window=4.0
    )
    series = result.series
    split = 4 * series.points_per_week
    service = MonitoringService(
        configs=small_bank(series.points_per_week),
        classifier_factory=fast_forest,
        min_duration_points=2,
        diagnoser=tiny_diagnoser,
    )
    service.bootstrap(series.slice(0, split))
    events = []
    for value in series.values[split:]:
        events.extend(service.ingest(value))
    return service, events, series, split


class TestServiceDiagnosis:
    def test_closed_alerts_carry_a_kind(self, diagnosing_run):
        service, events, _, _ = diagnosing_run
        closed = [e for e in events if e.kind == "closed"]
        assert closed, "live span produced no closed alerts"
        kinds = {e.diagnosis for e in closed}
        assert None not in kinds
        assert kinds <= {"spike", "dip", "ramp", "jitter", "level_shift"}

    def test_opened_alerts_are_undiagnosed(self, diagnosing_run):
        _, events, _, _ = diagnosing_run
        opened = [e for e in events if e.kind == "opened"]
        assert opened and all(e.diagnosis is None for e in opened)

    def test_stats_count_by_kind(self, diagnosing_run):
        service, events, _, _ = diagnosing_run
        closed = [e for e in events if e.kind == "closed"]
        expected = {}
        for event in closed:
            expected[event.diagnosis] = expected.get(event.diagnosis, 0) + 1
        assert service.stats.alerts_diagnosed == expected
        assert "alerts_diagnosed" in service.stats.as_dict()

    def test_no_diagnoser_means_none(self):
        from repro.core import AlertEvent

        event = AlertEvent(kind="closed", begin_index=0, end_index=2,
                           peak_score=0.5)
        assert event.diagnosis is None

    def test_diagnosis_survives_checkpoint_bit_identically(
        self, diagnosing_run, tmp_path
    ):
        """Restore into a bare twin (no diagnoser given: it must come
        back from the snapshot) and stream the same remainder through
        both — every diagnosis must match the original run exactly."""
        service, _, series, split = diagnosing_run
        checkpoint_at = split + 60
        original = MonitoringService(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
            min_duration_points=2,
            diagnoser=service.diagnoser,
        )
        original.bootstrap(series.slice(0, split))
        for value in series.values[split:checkpoint_at]:
            original.ingest(float(value))
        at_checkpoint = original.stats.alerts_diagnosed

        model_path = tmp_path / "model.json"
        save_model(original.opprentice, model_path)
        clone = MonitoringService(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        )
        load_model(model_path, opprentice=clone.opprentice)
        clone.restore_snapshot(original.snapshot())
        assert clone.diagnoser is not None
        assert clone.diagnoser.to_dict() == original.diagnoser.to_dict()
        assert clone.stats.alerts_diagnosed == at_checkpoint

        expected, actual = [], []
        for value in series.values[checkpoint_at:]:
            expected.extend(original.ingest(float(value)))
            actual.extend(clone.ingest(float(value)))
        as_tuple = [
            (e.kind, e.begin_index, e.end_index, e.diagnosis)
            for e in expected
        ]
        assert [
            (e.kind, e.begin_index, e.end_index, e.diagnosis)
            for e in actual
        ] == as_tuple
        assert any(
            e.diagnosis is not None for e in expected if e.kind == "closed"
        )
        assert clone.stats.alerts_diagnosed == original.stats.alerts_diagnosed

    def test_training_rows_validate_pairing(self, diagnosing_run):
        from repro.data import InjectionResult

        _, _, series, _ = diagnosing_run
        broken = InjectionResult(series=series, windows=[], kinds=["spike"])
        with pytest.raises(ValueError, match="windows"):
            window_training_rows(broken)
