"""The soak harness: fault churn, checkpoints, delay attribution, CLI."""

import json

import pytest

from repro.loadgen import (
    FaultInjectingService,
    InjectedFault,
    SoakConfig,
    SoakHarness,
)
from repro.loadgen.cli import main as loadgen_main
from repro.loadgen.harness import _kpi_identifier
from repro.obs import ObservabilityProvider, set_provider
from repro.obs.slo import evaluate_slo, load_snapshot_series, parse_slo_spec


@pytest.fixture(autouse=True)
def _fresh_provider():
    previous = set_provider(ObservabilityProvider())
    yield
    set_provider(previous)


#: Small enough for a unit test (a few seconds), big enough to cross
#: several checkpoints, one retrain wave and a handful of faults.
TINY = dict(
    n_kpis=2,
    weeks=0.03,
    bootstrap_weeks=0.5,
    profiles=("PV", "#SR"),
    checkpoint_every=3600.0,
    retrain_every=9000.0,
    fault_kpis=1,
    fault_every=8,
    trees=5,
)


@pytest.fixture(scope="module")
def tiny_soak():
    # One shared run for the read-only assertions (module-scoped: the
    # harness bootstraps real services). Uses its own provider so the
    # function-scoped reset fixture doesn't wipe it.
    previous = set_provider(ObservabilityProvider())
    try:
        harness = SoakHarness(SoakConfig(**TINY))
        result = harness.run()
    finally:
        set_provider(previous)
    return harness, result


class TestKpiIdentifier:
    def test_sanitizes_table1_names(self):
        assert _kpi_identifier("PV", 0) == "PV-000"
        assert _kpi_identifier("#SR", 13) == "SR-013"
        assert _kpi_identifier("###", 2) == "KPI-002"


class TestFaultInjectingService:
    def test_fails_every_nth_never_consecutively(self, tiny_soak):
        harness, _ = tiny_soak
        faulty = harness.fleet.service(harness.fleet.kpi_ids[0])
        assert isinstance(faulty, FaultInjectingService)
        healthy = harness.fleet.service(harness.fleet.kpi_ids[1])
        assert not isinstance(healthy, FaultInjectingService)

    def test_raises_on_schedule(self):
        with pytest.raises(ValueError):
            FaultInjectingService(fault_every=1)

    def test_injected_fault_is_periodic(self, tiny_soak):
        harness, result = tiny_soak
        status = harness.fleet.status()
        faulty_id = harness.fleet.kpi_ids[0]
        by_id = {kpi.kpi_id: kpi for kpi in status.kpis}
        # Every fault quarantined the KPI, every retry recovered it:
        # churn, not degradation.
        assert by_id[faulty_id].quarantines > 0
        assert by_id[faulty_id].state != "degraded"
        assert result.quarantines == by_id[faulty_id].quarantines


class TestSoakRun:
    def test_streams_the_whole_simulated_span(self, tiny_soak):
        _, result = tiny_soak
        assert result.completed
        sim_end = TINY["weeks"] * 7 * 24 * 3600
        assert result.sim_seconds == pytest.approx(sim_end, rel=0.05)
        assert result.points_offered > 0

    def test_checkpoint_document_shape(self, tiny_soak):
        _, result = tiny_soak
        document = result.document
        assert document["version"] == 1
        checkpoints = document["checkpoints"]
        assert len(checkpoints) >= 2
        sims = [c["sim_seconds"] for c in checkpoints]
        assert sims == sorted(sims)
        assert all(
            later > earlier for earlier, later in zip(sims, sims[1:])
        )
        for checkpoint in checkpoints:
            assert "metrics" in checkpoint["snapshot"]

    def test_checkpoints_carry_kpi_tagged_metrics(self, tiny_soak):
        harness, result = tiny_soak
        final = result.document["checkpoints"][-1]["snapshot"]
        names = {family["name"] for family in final["metrics"]}
        assert "repro_fleet_ingest_seconds" in names
        assert "repro_loadgen_points_offered_total" in names
        for family in final["metrics"]:
            if family["name"] == "repro_fleet_ingest_seconds":
                kpis = {s["labels"]["kpi"] for s in family["samples"]}
                assert kpis == set(harness.fleet.kpi_ids)

    def test_alert_delay_histogram_when_alerts_open(self, tiny_soak):
        _, result = tiny_soak
        final = result.document["checkpoints"][-1]["snapshot"]
        families = {f["name"]: f for f in final["metrics"]}
        if result.alerts_opened == 0:
            pytest.skip("no alerts opened in the tiny soak")
        # Delay samples only exist for true detections; with alerts
        # opened the family should at least be registered when any hit
        # a ground-truth window.
        if "repro_alert_delay_points" in families:
            for sample in families["repro_alert_delay_points"]["samples"]:
                assert "kpi" in sample["labels"]
                assert sample["count"] >= 1

    def test_counters_are_cumulative_across_checkpoints(self, tiny_soak):
        _, result = tiny_soak
        offered = []
        for checkpoint in result.document["checkpoints"]:
            total = 0.0
            for family in checkpoint["snapshot"]["metrics"]:
                if family["name"] == "repro_loadgen_points_offered_total":
                    total = sum(s["value"] for s in family["samples"])
            offered.append(total)
        assert offered == sorted(offered)
        assert offered[-1] == result.points_offered

    def test_document_feeds_the_slo_engine(self, tiny_soak, tmp_path):
        _, result = tiny_soak
        path = tmp_path / "soak.json"
        path.write_text(json.dumps(result.document))
        series = load_snapshot_series(path)
        assert len(series) == len(result.document["checkpoints"])
        spec = parse_slo_spec({
            "name": "ingest-p99",
            "objective": "p99_latency",
            "metric": "repro_fleet_ingest_seconds",
            "target": 60.0,  # absurdly lax: asserts wiring, not speed
            "windows": ["1h", "5h"],
        })
        evaluated = evaluate_slo(spec, series)
        assert not evaluated.violated
        assert all(w.burn_rate is not None for w in evaluated.windows)

    def test_wall_budget_stops_early(self):
        config = SoakConfig(**{**TINY, "max_wall_seconds": 1e-6})
        result = SoakHarness(config).run()
        assert not result.completed
        assert result.document["completed"] is False

    def test_fleet_status_has_ingest_p99(self, tiny_soak):
        # The soak ran under a provider that is no longer active, so
        # the live p99 read may be None here; the rendered table must
        # cope either way ("-" cell).
        harness, _ = tiny_soak
        text = harness.fleet.status().render()
        assert "ING-P99" in text


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_kpis": 0},
            {"weeks": 0},
            {"bootstrap_weeks": -1},
            {"profiles": ()},
            {"profiles": ("PV", "NOPE")},
            {"checkpoint_every": 0},
            {"fault_kpis": 99},
        ],
    )
    def test_rejects_bad_configs(self, overrides):
        with pytest.raises(ValueError):
            SoakConfig(**{**TINY, **overrides}).validate()


class TestLoadgenCli:
    def test_smoke_writes_document(self, tmp_path, capsys):
        out = tmp_path / "soak.json"
        code = loadgen_main([
            "--kpis", "2", "--weeks", "0.02", "--bootstrap-weeks", "0.5",
            "--profiles", "PV", "#SR", "--fault-kpis", "1",
            "--fault-every", "8", "--checkpoint-every", "3600",
            "--retrain-every", "0", "--trees", "5",
            "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "soak:" in captured
        assert "ING-P99" in captured
        document = json.loads(out.read_text())
        assert document["checkpoints"]

    def test_bad_profile_is_a_clean_error(self, capsys):
        code = loadgen_main(["--profiles", "NOPE"])
        assert code == 2
        assert "unknown profile" in capsys.readouterr().err
