"""Simulated operator and labeling-time model (Fig 14, §5.7)."""

import numpy as np
import pytest

from repro.data import (
    LabelingTimeModel,
    SimulatedOperator,
    labeling_costs,
    total_labeling_minutes,
)
from repro.timeseries import points_to_windows


class TestSimulatedOperator:
    def test_perfect_operator_reproduces_truth(self, labeled_kpi):
        operator = SimulatedOperator(
            boundary_jitter=0, miss_rate=0.0, false_window_rate=0.0, seed=0
        )
        labelled = operator.label(labeled_kpi.series, labeled_kpi.windows)
        np.testing.assert_array_equal(labelled.labels, labeled_kpi.series.labels)

    def test_jitter_moves_boundaries_but_keeps_cores(self, labeled_kpi):
        operator = SimulatedOperator(
            boundary_jitter=2, miss_rate=0.0, false_window_rate=0.0, seed=1
        )
        labelled = operator.label(labeled_kpi.series, labeled_kpi.windows)
        truth = labeled_kpi.series.labels.astype(bool)
        got = labelled.labels.astype(bool)
        # Labels differ only near boundaries: the overlap is still large.
        overlap = (truth & got).sum() / truth.sum()
        assert overlap > 0.6
        assert not np.array_equal(truth, got)

    def test_miss_rate_drops_windows(self, labeled_kpi):
        operator = SimulatedOperator(
            boundary_jitter=0, miss_rate=0.5, false_window_rate=0.0, seed=2
        )
        labelled = operator.label(labeled_kpi.series, labeled_kpi.windows)
        n_got = len(points_to_windows(labelled.labels))
        assert n_got < len(labeled_kpi.windows)

    def test_false_windows_added(self, hourly_kpi):
        operator = SimulatedOperator(
            boundary_jitter=0, miss_rate=0.0, false_window_rate=20.0, seed=3
        )
        labelled = operator.label(hourly_kpi, [])
        assert labelled.labels.sum() > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedOperator(boundary_jitter=-1)
        with pytest.raises(ValueError):
            SimulatedOperator(miss_rate=1.5)


class TestLabelingTimeModel:
    def test_monotone_in_windows(self):
        model = LabelingTimeModel()
        assert model.month_minutes(1000, 10) > model.month_minutes(1000, 2)

    def test_monotone_in_points(self):
        model = LabelingTimeModel()
        assert model.month_minutes(40000, 5) > model.month_minutes(700, 5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LabelingTimeModel().month_minutes(-1, 0)

    def test_month_under_six_minutes_at_paper_scale(self):
        # §5.7: "the labeling time of one-month data is less than 6
        # minutes" — a month of 1-minute data with tens of windows.
        model = LabelingTimeModel()
        assert model.month_minutes(30 * 1440, 30) < 6.0


class TestLabelingCosts:
    def test_per_month_breakdown(self, labeled_kpi):
        costs = labeling_costs(labeled_kpi.series)
        assert len(costs) == labeled_kpi.series.n_months()
        total_windows = sum(c.n_windows for c in costs)
        # Splitting by month can split a window in two, never lose one.
        assert total_windows >= len(labeled_kpi.windows)

    def test_requires_labels(self, hourly_kpi):
        with pytest.raises(ValueError, match="labelled"):
            labeling_costs(hourly_kpi)

    def test_total_is_sum_of_months(self, labeled_kpi):
        costs = labeling_costs(labeled_kpi.series)
        assert total_labeling_minutes(labeled_kpi.series) == pytest.approx(
            sum(c.minutes for c in costs)
        )


@pytest.mark.slow
class TestPaperLabelingTimes:
    """§5.7's totals: 16 / 17 / 6 minutes for PV / #SR / SRT."""

    @pytest.mark.parametrize(
        "maker, expected_minutes, tolerance",
        [("make_pv", 16.0, 10.0), ("make_sr", 17.0, 12.0), ("make_srt", 6.0, 5.0)],
    )
    def test_total_minutes_same_order(self, maker, expected_minutes, tolerance):
        import repro.data as data

        result = getattr(data, maker)()
        total = total_labeling_minutes(result.series)
        assert total == pytest.approx(expected_minutes, abs=tolerance)
        # Every month stays under the 6-minute bound of §5.7.
        assert max(c.minutes for c in labeling_costs(result.series)) < 6.0
