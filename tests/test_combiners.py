"""Static combination baseline tests (§5.3.1)."""

import numpy as np
import pytest

from repro.combiners import MajorityVote, NormalizationSchema
from repro.evaluation import aucpr


def synthetic_feature_matrix(rng, n=600, good=3, bad=20, anomaly_rate=0.1):
    """A matrix where `good` configurations track the labels and `bad`
    configurations are pure noise."""
    labels = (rng.random(n) < anomaly_rate).astype(int)
    columns = []
    for _ in range(good):
        columns.append(labels * rng.uniform(5, 10) + rng.normal(0, 0.5, n))
    for _ in range(bad):
        columns.append(np.abs(rng.normal(0, 1.0, n)))
    return np.column_stack(columns), labels


class TestNormalizationSchema:
    def test_scores_in_unit_interval(self, rng):
        X, _ = synthetic_feature_matrix(rng)
        combiner = NormalizationSchema().fit(X[:300])
        scores = combiner.score(X[300:])
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_detects_with_mostly_good_features(self, rng):
        X, y = synthetic_feature_matrix(rng, good=10, bad=2)
        combiner = NormalizationSchema().fit(X[:300])
        assert aucpr(combiner.score(X[300:]), y[300:]) > 0.8

    def test_diluted_by_inaccurate_configurations(self, rng):
        """The §5.3.1 failure mode: equal weighting lets bad
        configurations drown the good ones."""
        X_good, y = synthetic_feature_matrix(rng, good=3, bad=0)
        X_bad = np.column_stack(
            [X_good, np.abs(rng.normal(0, 1.0, (len(y), 60)))]
        )
        clean = NormalizationSchema().fit(X_good[:300])
        noisy = NormalizationSchema().fit(X_bad[:300])
        auc_clean = aucpr(clean.score(X_good[300:]), y[300:])
        auc_noisy = aucpr(noisy.score(X_bad[300:]), y[300:])
        assert auc_noisy < auc_clean

    def test_nan_features_are_neutral(self, rng):
        X, _ = synthetic_feature_matrix(rng)
        combiner = NormalizationSchema().fit(X[:300])
        dirty = X[300:].copy()
        dirty[:, 0] = np.nan
        scores = combiner.score(dirty)
        assert np.isfinite(scores).all()

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            NormalizationSchema(lower_quantile=0.9, upper_quantile=0.1)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            NormalizationSchema().score(rng.normal(size=(5, 3)))


class TestMajorityVote:
    def test_score_is_vote_fraction(self, rng):
        X, _ = synthetic_feature_matrix(rng, good=2, bad=2)
        combiner = MajorityVote().fit(X[:300])
        scores = combiner.score(X[300:])
        assert ((scores >= 0) & (scores <= 1)).all()
        # Fractions over 4 configurations are multiples of 0.25.
        np.testing.assert_allclose(scores * 4, np.round(scores * 4))

    def test_detects_with_good_features(self, rng):
        # The vote quantile must sit below the anomaly rate's severity
        # range (10% anomalies here), so use the 85th percentile.
        X, y = synthetic_feature_matrix(rng, good=10, bad=2)
        combiner = MajorityVote(vote_quantile=0.85).fit(X[:300])
        assert aucpr(combiner.score(X[300:]), y[300:]) > 0.7

    def test_all_nan_training_column_never_votes(self, rng):
        X, _ = synthetic_feature_matrix(rng, good=2, bad=1)
        X_train = X[:300].copy()
        X_train[:, 0] = np.nan
        combiner = MajorityVote().fit(X_train)
        scores = combiner.score(X[300:])
        assert scores.max() <= 2 / 3 + 1e-9

    def test_vote_quantile_validation(self):
        with pytest.raises(ValueError):
            MajorityVote(vote_quantile=0.3)

    def test_shape_validation(self, rng):
        combiner = MajorityVote().fit(rng.normal(size=(50, 4)))
        with pytest.raises(ValueError):
            combiner.score(rng.normal(size=(5, 3)))
