"""Cross-KPI transfer tests (§6): severity normalisation and reuse."""

import numpy as np
import pytest

from repro.core import SeverityNormalizer, TransferDetector
from repro.detectors import (
    Diff,
    EWMA,
    HistoricalAverage,
    SimpleMA,
    SimpleThreshold,
    TSDMad,
    build_configs,
)
from repro.ml import RandomForest
from repro.timeseries import TimeSeries


class TestSeverityNormalizer:
    def test_scale_invariance(self, rng):
        """Features from a 10x-scaled KPI normalise to the same values —
        the property that makes classifier reuse possible."""
        features = np.abs(rng.normal(size=(200, 5)))
        normalizer = SeverityNormalizer()
        a = normalizer.normalize(features)
        b = normalizer.normalize(features * 10.0)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_zero_column_maps_to_zero(self):
        features = np.zeros((50, 2))
        out = SeverityNormalizer().normalize(features)
        assert (out == 0).all()

    def test_nan_passthrough(self, rng):
        features = np.abs(rng.normal(size=(50, 2)))
        features[3, 1] = np.nan
        out = SeverityNormalizer().normalize(features)
        assert np.isnan(out[3, 1])
        assert np.isfinite(out[4, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            SeverityNormalizer(quantile=0.2)
        with pytest.raises(ValueError):
            SeverityNormalizer().normalize(np.zeros(5))


def seasonal_kpi_with_labels(rng, scale=1.0, seed=0):
    from repro.data import SeasonalProfile, generate_kpi, inject_anomalies

    generated = generate_kpi(
        weeks=4,
        interval=3600,
        profile=SeasonalProfile(
            base_level=100.0 * scale, daily_amplitude=0.5,
            noise_scale=0.02, trend=0.0,
        ),
        seed=seed,
        name=f"scaled-{scale}",
    )
    return inject_anomalies(
        generated.series, target_fraction=0.06, seed=seed + 1, mean_window=4.0
    ).series


class TestTransferDetector:
    @pytest.fixture(scope="class")
    def bank(self):
        return build_configs(
            [
                SimpleThreshold(),
                Diff("last-slot", 1),
                SimpleMA(10),
                EWMA(0.5),
                TSDMad(1, 168),
                HistoricalAverage(1, 24),
            ]
        )

    def test_detects_on_scaled_sibling(self, rng, bank):
        source = seasonal_kpi_with_labels(rng, scale=1.0, seed=20)
        target = seasonal_kpi_with_labels(rng, scale=25.0, seed=40)
        detector = TransferDetector(
            configs=bank,
            classifier_factory=lambda: RandomForest(n_estimators=15, seed=0),
        ).fit(source)
        result = detector.detect(target)
        recall, precision = result.accuracy()
        # Trained at scale 1, detecting at scale 25: normalisation keeps
        # the classifier useful.
        assert recall > 0.5
        assert precision > 0.5

    def test_unnormalized_features_would_break(self, rng, bank):
        """Sanity check of the premise: the raw severity scales differ
        by the KPI scale factor, so normalisation is actually needed."""
        from repro.core import FeatureExtractor

        source = seasonal_kpi_with_labels(rng, scale=1.0, seed=20)
        target = seasonal_kpi_with_labels(rng, scale=25.0, seed=40)
        extractor = FeatureExtractor(bank)
        src = np.nanmedian(extractor.extract(source).values[:, 0])
        dst = np.nanmedian(extractor.extract(target).values[:, 0])
        assert dst > 10 * src

    def test_fit_requires_labels(self, rng, bank):
        source = seasonal_kpi_with_labels(rng, seed=20)
        unlabeled = TimeSeries(
            values=source.values, interval=source.interval
        )
        with pytest.raises(ValueError, match="labelled"):
            TransferDetector(configs=bank).fit(unlabeled)

    def test_detect_requires_fit(self, rng, bank):
        target = seasonal_kpi_with_labels(rng, seed=20)
        with pytest.raises(RuntimeError):
            TransferDetector(configs=bank).detect(target)
