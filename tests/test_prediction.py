"""EWMA / cross-validation cThld prediction tests (§4.5.2)."""

import numpy as np
import pytest

from repro.core import (
    CrossValidationPredictor,
    EWMA_CTHLD_ALPHA,
    EWMAPredictor,
    best_cthld,
)
from repro.evaluation import AccuracyPreference, PCScoreSelector


class _FixedClassifier:
    def fit(self, X, y):
        return self

    def predict_proba(self, X):
        return X[:, 0]


def training_data(rng, n=200):
    y = (rng.random(n) < 0.25).astype(int)
    x = np.where(y == 1, rng.uniform(0.7, 1.0, n), rng.uniform(0.0, 0.5, n))
    return x[:, None], y


class TestEWMAPredictor:
    def test_first_prediction_uses_cross_validation(self, rng):
        X, y = training_data(rng)
        predictor = EWMAPredictor(AccuracyPreference(0.66, 0.66))
        first = predictor.predict(_FixedClassifier, X, y)
        # The initial CV threshold must separate the two score clusters.
        assert X[y == 0, 0].max() < first <= X[y == 1, 0].min()

    def test_ewma_recursion(self):
        predictor = EWMAPredictor(AccuracyPreference(), alpha=0.8)
        predictor._prediction = 0.5  # simulate an initialised state
        predictor.observe_best(0.9)
        # 0.8 * 0.9 + 0.2 * 0.5
        assert predictor.current == pytest.approx(0.82)
        predictor.observe_best(0.1)
        assert predictor.current == pytest.approx(0.8 * 0.1 + 0.2 * 0.82)

    def test_prediction_stable_between_observations(self, rng):
        X, y = training_data(rng)
        predictor = EWMAPredictor(AccuracyPreference())
        first = predictor.predict(_FixedClassifier, X, y)
        second = predictor.predict(_FixedClassifier, X, y)
        assert first == second

    def test_observe_before_predict_adopts_best(self):
        predictor = EWMAPredictor(AccuracyPreference())
        predictor.observe_best(0.7)
        assert predictor.current == 0.7

    def test_paper_alpha_default(self):
        assert EWMA_CTHLD_ALPHA == 0.8
        assert EWMAPredictor(AccuracyPreference()).alpha == 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMAPredictor(AccuracyPreference(), alpha=1.5)
        predictor = EWMAPredictor(AccuracyPreference())
        with pytest.raises(ValueError):
            predictor.observe_best(2.0)

    def test_tracks_drifting_best_cthlds(self):
        """With alpha = 0.8 the prediction catches up with a shifted
        best cThld within a couple of weeks (the Fig 7 motivation)."""
        predictor = EWMAPredictor(AccuracyPreference(), alpha=0.8)
        predictor._prediction = 0.2
        for _ in range(3):
            predictor.observe_best(0.9)
        assert predictor.current > 0.8


class TestCrossValidationPredictor:
    def test_predicts_separating_threshold(self, rng):
        X, y = training_data(rng)
        predictor = CrossValidationPredictor(AccuracyPreference(0.66, 0.66))
        cthld = predictor.predict(_FixedClassifier, X, y)
        max_normal = X[y == 0, 0].max()
        min_anomaly = X[y == 1, 0].min()
        assert max_normal < cthld <= min_anomaly

    def test_observe_best_is_noop(self, rng):
        X, y = training_data(rng)
        predictor = CrossValidationPredictor(AccuracyPreference())
        before = predictor.predict(_FixedClassifier, X, y)
        predictor.observe_best(0.99)
        after = predictor.predict(_FixedClassifier, X, y)
        assert before == after


class TestBestCThld:
    def test_matches_pc_score_selector(self, rng):
        scores = rng.random(300)
        labels = (rng.random(300) < 0.2).astype(int)
        preference = AccuracyPreference(0.66, 0.66)
        expected = PCScoreSelector(preference).select(scores, labels).threshold
        assert best_cthld(scores, labels, preference) == expected

    def test_no_anomalies_returns_default(self, rng):
        scores = rng.random(50)
        assert best_cthld(scores, np.zeros(50, dtype=int), AccuracyPreference()) == 0.5

    def test_all_nan_scores_returns_default(self):
        scores = np.full(10, np.nan)
        labels = np.ones(10, dtype=int)
        assert best_cthld(scores, labels, AccuracyPreference()) == 0.5

    def test_nan_scores_are_masked(self, rng):
        scores = rng.random(300)
        labels = (rng.random(300) < 0.2).astype(int)
        noisy = scores.copy()
        noisy[rng.choice(300, size=40, replace=False)] = np.nan
        preference = AccuracyPreference(0.66, 0.66)
        finite = np.isfinite(noisy)
        expected = PCScoreSelector(preference).select(
            noisy[finite], labels[finite]
        ).threshold
        assert best_cthld(noisy, labels, preference) == expected

    def test_anomalies_only_at_nan_scores_returns_default(self):
        scores = np.array([np.nan, 0.2, 0.3, np.nan])
        labels = np.array([1, 0, 0, 1])
        assert best_cthld(scores, labels, AccuracyPreference()) == 0.5
