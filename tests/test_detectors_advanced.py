"""Holt-Winters, SVD, wavelet, ARIMA detector tests."""

import numpy as np
import pytest

from repro.detectors import (
    ARIMA,
    DetectorError,
    HoltWinters,
    SVDDetector,
    WaveletDetector,
)
from repro.detectors.holt_winters import batch_severities
from repro.timeseries import TimeSeries


def ts(values, interval=3600):
    return TimeSeries(values=np.asarray(values, dtype=float), interval=interval)


def seasonal_series(rng, periods=20, period=24, noise=0.5):
    pattern = 100.0 + 20.0 * np.sin(np.linspace(0, 2 * np.pi, period, endpoint=False))
    values = np.tile(pattern, periods) + rng.normal(0, noise, periods * period)
    return values


class TestHoltWinters:
    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            HoltWinters(0.0, 0.5, 0.5, 24)
        with pytest.raises(DetectorError):
            HoltWinters(0.5, 1.0, 0.5, 24)
        with pytest.raises(DetectorError):
            HoltWinters(0.5, 0.5, 0.5, 1)

    def test_warmup_is_one_season(self):
        detector = HoltWinters(0.4, 0.4, 0.4, 24)
        out = detector.severities(ts(np.arange(30.0)))
        assert np.isnan(out[:24]).all()
        assert np.isfinite(out[24:]).all()

    def test_tracks_seasonal_series(self, rng):
        values = seasonal_series(rng)
        detector = HoltWinters(0.4, 0.2, 0.4, 24)
        out = detector.severities(ts(values))
        # Residuals settle close to the noise level once warmed up.
        settled = out[5 * 24:]
        assert np.nanmedian(settled) < 3.0

    def test_flags_spike(self, rng):
        values = seasonal_series(rng)
        values[300] += 80.0
        out = HoltWinters(0.4, 0.2, 0.4, 24).severities(ts(values))
        assert out[300] > 50.0

    def test_missing_point_freezes_state(self, rng):
        values = seasonal_series(rng)
        dirty = values.copy()
        dirty[200] = np.nan
        out = HoltWinters(0.4, 0.2, 0.4, 24).severities(ts(dirty))
        assert np.isnan(out[200])
        assert np.isfinite(out[201])

    def test_batch_matches_stream_loop(self, rng):
        values = seasonal_series(rng, periods=6)
        alphas = np.array([0.2, 0.8])
        betas = np.array([0.4, 0.2])
        gammas = np.array([0.6, 0.4])
        batched = batch_severities(values, alphas, betas, gammas, 24)
        for j in range(2):
            single = HoltWinters(alphas[j], betas[j], gammas[j], 24)
            expected = single.severities(ts(values))
            np.testing.assert_allclose(
                batched[:, j], expected, equal_nan=True, atol=1e-9
            )

    def test_batch_validates_shapes(self):
        with pytest.raises(DetectorError, match="shape"):
            batch_severities(np.zeros(10), np.zeros(2), np.zeros(3), np.zeros(2), 4)


class TestSVD:
    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            SVDDetector(1, 3)
        with pytest.raises(DetectorError):
            SVDDetector(10, 1)

    def test_warmup(self):
        detector = SVDDetector(row=10, column=3)
        out = detector.severities(ts(np.arange(40.0)))
        assert np.isnan(out[:29]).all()
        assert np.isfinite(out[29:]).all()

    def test_repetitive_signal_scores_low_spike_high(self, rng):
        values = np.tile([10.0, 12.0, 9.0, 11.0, 10.5], 30)
        values += rng.normal(0, 0.05, len(values))
        spiked = values.copy()
        spiked[120] += 20.0
        detector = SVDDetector(row=10, column=3)
        base = detector.severities(ts(values))
        hit = detector.severities(ts(spiked))
        assert hit[120] > 10 * np.nanmedian(base)

    def test_batched_matches_slow_path(self, rng):
        values = rng.normal(10.0, 2.0, size=80)
        detector = SVDDetector(row=8, column=3)
        fast = detector.severities(ts(values))
        slow = detector._severities_slow(values)
        np.testing.assert_allclose(fast, slow, equal_nan=True, atol=1e-8)

    def test_nan_window_gives_nan(self, rng):
        values = rng.normal(10.0, 2.0, size=60)
        values[40] = np.nan
        out = SVDDetector(row=5, column=3).severities(ts(values))
        # Every window containing index 40 is NaN.
        assert np.isnan(out[40:55]).all()
        assert np.isfinite(out[55:]).all()


class TestWavelet:
    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            WaveletDetector(0, "low", 24)
        with pytest.raises(DetectorError, match="band"):
            WaveletDetector(3, "ultra", 24)

    def test_bands_have_increasing_scale(self):
        high = WaveletDetector(3, "high", 24)
        mid = WaveletDetector(3, "mid", 24)
        low = WaveletDetector(3, "low", 24)
        assert high.scale < mid.scale < low.scale

    def test_step_change_excites_detector(self, rng):
        values = np.concatenate(
            [rng.normal(100, 1.0, 600), rng.normal(140, 1.0, 120)]
        )
        out = WaveletDetector(3, "high", 24).severities(ts(values))
        # Right at the step, the Haar detail jumps far above its norm.
        assert np.nanmax(out[598:604]) > 5.0

    def test_smooth_series_scores_low(self, rng):
        values = 100.0 + rng.normal(0, 1.0, 800)
        out = WaveletDetector(3, "mid", 24).severities(ts(values))
        assert np.nanmedian(out) < 2.0

    def test_feature_names_distinct(self):
        names = {
            WaveletDetector(w, b, 24).feature_name
            for w in (3, 5, 7)
            for b in ("low", "mid", "high")
        }
        assert len(names) == 9


class TestARIMA:
    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            ARIMA(fit_points=10)
        with pytest.raises(DetectorError):
            ARIMA(fit_points=100, max_p=0, max_q=0)

    def test_estimates_differencing_for_random_walk(self, rng):
        walk = np.cumsum(rng.normal(0, 1.0, 600))
        order = ARIMA(fit_points=300).estimate_order(walk[:300])
        assert order.d == 1

    def test_stationary_series_not_differenced(self, rng):
        stationary = rng.normal(0, 1.0, 600)
        order = ARIMA(fit_points=300).estimate_order(stationary[:300])
        assert order.d == 0

    def test_recovers_ar1_structure(self, rng):
        # x_t = 0.8 x_{t-1} + e_t
        n = 2000
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = 0.8 * x[t - 1] + rng.normal()
        detector = ARIMA(fit_points=1000)
        out = detector.severities(ts(x))
        residuals = out[1000:]
        # One-step residuals should be close to the innovation scale (1),
        # far below the series scale (std ~ 1.67).
        assert np.nanmean(residuals) < 1.2

    def test_flags_spike(self, rng):
        x = rng.normal(100, 1.0, 800)
        x[600] += 30.0
        out = ARIMA(fit_points=400).severities(ts(x))
        assert out[600] > 20.0

    def test_warmup_region_is_nan(self, rng):
        x = rng.normal(0, 1.0, 300)
        out = ARIMA(fit_points=200).severities(ts(x))
        assert np.isnan(out[:200]).all()
        assert np.isfinite(out[200:]).all()

    def test_handles_missing_points(self, rng):
        x = rng.normal(100, 1.0, 500)
        x[450] = np.nan
        out = ARIMA(fit_points=300).severities(ts(x))
        assert np.isnan(out[450])
        assert np.isfinite(out[451:]).all()
