"""AUCPR bootstrap CI and paired comparison tests (ref [50])."""

import numpy as np
import pytest

from repro.evaluation import (
    aucpr,
    aucpr_confidence_interval,
    compare_aucpr,
)


def scored_problem(rng, n=1500, quality=3.0, rate=0.1):
    labels = (rng.random(n) < rate).astype(int)
    scores = labels * quality + rng.normal(0, 1.0, n)
    # squash to [0, 1]-ish, order preserved
    scores = 1.0 / (1.0 + np.exp(-scores))
    return scores, labels


class TestConfidenceInterval:
    def test_contains_point_estimate(self, rng):
        scores, labels = scored_problem(rng)
        ci = aucpr_confidence_interval(scores, labels, n_rounds=200)
        assert ci.lower <= ci.estimate <= ci.upper
        assert ci.estimate == pytest.approx(aucpr(scores, labels))

    def test_width_shrinks_with_sample_size(self, rng):
        small_scores, small_labels = scored_problem(rng, n=300)
        big_scores, big_labels = scored_problem(rng, n=8000)
        small = aucpr_confidence_interval(
            small_scores, small_labels, n_rounds=200
        )
        big = aucpr_confidence_interval(big_scores, big_labels, n_rounds=200)
        assert big.width < small.width

    def test_higher_confidence_wider(self, rng):
        scores, labels = scored_problem(rng)
        narrow = aucpr_confidence_interval(
            scores, labels, confidence=0.8, n_rounds=300
        )
        wide = aucpr_confidence_interval(
            scores, labels, confidence=0.99, n_rounds=300
        )
        assert wide.width > narrow.width

    def test_reproducible(self, rng):
        scores, labels = scored_problem(rng)
        a = aucpr_confidence_interval(scores, labels, n_rounds=100, seed=4)
        b = aucpr_confidence_interval(scores, labels, n_rounds=100, seed=4)
        assert a == b

    def test_nan_scores_excluded(self, rng):
        scores, labels = scored_problem(rng)
        dirty = scores.copy()
        dirty[:20] = np.nan
        ci = aucpr_confidence_interval(dirty, labels, n_rounds=100)
        assert np.isfinite(ci.estimate)

    def test_validation(self, rng):
        scores, labels = scored_problem(rng, n=100)
        with pytest.raises(ValueError):
            aucpr_confidence_interval(scores, labels, confidence=1.5)
        with pytest.raises(ValueError):
            aucpr_confidence_interval(scores, labels, n_rounds=2)

    def test_contains_operator(self, rng):
        scores, labels = scored_problem(rng)
        ci = aucpr_confidence_interval(scores, labels, n_rounds=100)
        assert ci.estimate in ci
        assert 2.0 not in ci


class TestPairedComparison:
    def test_clear_gap_is_significant(self, rng):
        labels = (rng.random(2000) < 0.1).astype(int)
        good = labels * 4.0 + rng.normal(0, 1, 2000)
        bad = labels * 0.5 + rng.normal(0, 1, 2000)
        result = compare_aucpr(good, bad, labels, n_rounds=300)
        assert result.difference > 0.2
        assert result.significant
        assert result.win_rate > 0.99

    def test_self_comparison_not_significant(self, rng):
        scores, labels = scored_problem(rng)
        noisy_twin = scores + rng.normal(0, 1e-6, len(scores))
        result = compare_aucpr(scores, noisy_twin, labels, n_rounds=200)
        assert abs(result.difference) < 0.01
        assert not result.significant

    def test_pairing_excludes_either_nan(self, rng):
        scores, labels = scored_problem(rng, n=500)
        other = scores.copy()
        other[:50] = np.nan
        result = compare_aucpr(scores, other, labels, n_rounds=100)
        assert np.isfinite(result.difference)

    def test_shape_validation(self, rng):
        scores, labels = scored_problem(rng, n=100)
        with pytest.raises(ValueError):
            compare_aucpr(scores, scores[:-1], labels)

    def test_fig9_photo_finish_is_within_noise(self):
        """The Fig 9 PV result (forest 0.961 vs tsd MAD 0.960) should be
        a statistical tie — verify the machinery reports exactly that on
        a miniature version."""
        from repro.core import FeatureExtractor, Opprentice
        from repro.data import make_kpi
        from repro.data.datasets import SRT_PROFILE
        from repro.ml import RandomForest
        from test_opprentice import small_bank

        series = make_kpi(SRT_PROFILE, weeks=8).series
        split = 5 * series.points_per_week
        bank = small_bank(series.points_per_week)
        matrix = FeatureExtractor(bank).extract(series)
        opp = Opprentice(
            configs=bank,
            classifier_factory=lambda: RandomForest(n_estimators=20, seed=0),
        )
        opp.fit(series.slice(0, split))
        forest_scores = opp.score_features(matrix.values[split:])
        tsd_scores = matrix.values[split:, [c.name for c in bank].index(
            "tsd MAD(win=1w)"
        )]
        labels = series.labels[split:]
        result = compare_aucpr(
            forest_scores, tsd_scores, labels, n_rounds=200
        )
        # Whatever the sign, the CI must be informative (finite width).
        assert result.interval.width > 0.0
        assert 0.0 <= result.win_rate <= 1.0
