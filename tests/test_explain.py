"""Detection-explanation tests (path attribution)."""

import numpy as np
import pytest

from repro.core import Opprentice, explain_features, explain_point
from repro.ml import DecisionTree, RandomForest

from test_opprentice import fast_forest, small_bank


class TestTreeContributions:
    def test_rows_sum_to_prediction(self, rng):
        X = rng.normal(size=(400, 5))
        y = (X[:, 1] + 0.3 * X[:, 3] > 0.4).astype(int)
        tree = DecisionTree(seed=0).fit(X, y)
        contributions = tree.decision_path_contributions(X)
        np.testing.assert_allclose(
            contributions.sum(axis=1), tree.predict_proba(X), atol=1e-12
        )

    def test_bias_is_root_probability(self, rng):
        X = rng.normal(size=(200, 3))
        y = (rng.random(200) < 0.25).astype(int)
        tree = DecisionTree(seed=0).fit(X, y)
        contributions = tree.decision_path_contributions(X)
        assert np.allclose(contributions[:, -1], y.mean())

    def test_unused_features_get_zero(self, rng):
        X = rng.normal(size=(300, 4))
        y = (X[:, 2] > 0).astype(int)  # only feature 2 matters
        tree = DecisionTree(seed=0).fit(X, y)
        contributions = tree.decision_path_contributions(X)
        # Features never split on contribute exactly 0.
        used = {n.feature for n in tree.nodes_ if not n.is_leaf}
        for j in range(4):
            if j not in used:
                assert (contributions[:, j] == 0).all()

    def test_informative_feature_dominates(self, rng):
        X = rng.normal(size=(500, 4))
        y = (X[:, 0] > 0.2).astype(int)
        tree = DecisionTree(seed=0).fit(X, y)
        contributions = tree.decision_path_contributions(X)
        magnitude = np.abs(contributions[:, :4]).mean(axis=0)
        assert magnitude[0] == magnitude.max()


class TestForestContributions:
    def test_rows_sum_to_vote_probability(self, rng):
        """Fully grown trees have pure leaves, so the mean-leaf
        decomposition equals the vote probability exactly."""
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] - X[:, 2] > 0.3).astype(int)
        forest = RandomForest(n_estimators=12, seed=1).fit(X, y)
        contributions = forest.prediction_contributions(X)
        np.testing.assert_allclose(
            contributions.sum(axis=1), forest.predict_proba(X), atol=1e-12
        )

    def test_shape(self, rng):
        X = rng.normal(size=(50, 6))
        y = (X[:, 0] > 0).astype(int)
        forest = RandomForest(n_estimators=3, seed=0).fit(X, y)
        assert forest.prediction_contributions(X).shape == (50, 7)


class TestExplainAPI:
    @pytest.fixture(scope="class")
    def fitted(self, labeled_kpi):
        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series)
        return opp, series

    def test_explanation_is_complete_decomposition(self, fitted):
        opp, series = fitted
        anomaly_index = int(np.flatnonzero(series.labels == 1)[5])
        explanation = explain_point(opp, series, anomaly_index)
        reconstructed = explanation.bias + sum(
            c.contribution for c in explanation.contributions
        )
        assert reconstructed == pytest.approx(explanation.probability)

    def test_top_k_sorted_descending(self, fitted):
        opp, series = fitted
        explanation = explain_point(opp, series, len(series) - 1)
        top = explanation.top(3)
        assert len(top) == 3
        assert top[0].contribution >= top[1].contribution >= top[2].contribution

    def test_render_mentions_probability_and_names(self, fitted):
        opp, series = fitted
        anomaly_index = int(np.flatnonzero(series.labels == 1)[5])
        text = explain_point(opp, series, anomaly_index).render(k=2)
        assert "anomaly probability" in text
        assert any(name in text for name in opp.extractor.names)

    def test_requires_fitted(self, labeled_kpi):
        with pytest.raises(ValueError, match="fitted"):
            explain_features(Opprentice(), np.zeros(5))

    def test_index_validated(self, fitted):
        opp, series = fitted
        with pytest.raises(IndexError):
            explain_point(opp, series, len(series) + 10)

    def test_anomalous_point_explained_by_firing_detectors(self, fitted):
        """The top contributor at a true anomaly must be a detector with
        an elevated severity at that point."""
        opp, series = fitted
        matrix = opp.extractor.extract(series)
        anomaly_index = int(np.flatnonzero(series.labels == 1)[10])
        explanation = explain_features(
            opp, matrix.values[anomaly_index]
        )[0]
        if explanation.probability < 0.5:
            pytest.skip("forest missed this anomaly; nothing to explain")
        top = explanation.top(1)[0]
        column = matrix.column(top.name)
        finite = column[np.isfinite(column)]
        percentile = (finite < top.severity).mean()
        assert percentile > 0.8
