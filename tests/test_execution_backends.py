"""Execution backends + severity cache (docs/performance.md).

The contract under test: the feature matrix is *bit-identical* whichever
backend computes it and whatever the cache state is, worker counts
resolve the documented way, and a warm cache serves every column without
a single detector evaluation.
"""

import os

import numpy as np
import pytest

from repro.core import (
    BACKEND_NAMES,
    FeatureExtractor,
    ProcessBackend,
    SerialBackend,
    SeverityCache,
    ThreadBackend,
    build_tasks,
    column_key,
    resolve_backend,
    resolve_workers,
    series_digest,
)
from repro.detectors import configs_for
from repro.obs import ObservabilityProvider, set_provider


@pytest.fixture()
def live_obs():
    """A fresh live provider for counter assertions, restored after."""
    provider = ObservabilityProvider()
    previous = set_provider(provider)
    yield provider
    set_provider(previous)


@pytest.fixture(scope="module")
def serial_matrix(hourly_kpi):
    return FeatureExtractor(backend="serial", cache=False).extract(hourly_kpi)


class RecordingBackend(SerialBackend):
    """Serial backend that records how many tasks it was asked to run."""

    def __init__(self):
        super().__init__(workers=1)
        self.tasks_run = 0

    def run_tasks(self, tasks, series):
        self.tasks_run += len(tasks)
        yield from super().run_tasks(tasks, series)


class TestBackendEquivalence:
    """serial == thread == process, bit for bit, over all 133 configs."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_full_bank_bit_identical(self, hourly_kpi, serial_matrix, backend):
        matrix = FeatureExtractor(
            workers=2, backend=backend, cache=False
        ).extract(hourly_kpi)
        assert matrix.n_features == 133
        assert matrix.names == serial_matrix.names
        np.testing.assert_array_equal(matrix.values, serial_matrix.values)

    def test_backend_instance_accepted(self, hourly_kpi, serial_matrix):
        matrix = FeatureExtractor(
            backend=ProcessBackend(workers=2), cache=False
        ).extract(hourly_kpi)
        np.testing.assert_array_equal(matrix.values, serial_matrix.values)

    def test_process_backend_single_worker_falls_back(self, hourly_kpi, serial_matrix):
        # One worker or one task short-circuits to the serial path.
        matrix = FeatureExtractor(
            backend=ProcessBackend(workers=1), cache=False
        ).extract(hourly_kpi)
        np.testing.assert_array_equal(matrix.values, serial_matrix.values)

    def test_tasks_cover_every_config_exactly_once(self, hourly_kpi):
        configs = configs_for(hourly_kpi)
        tasks = build_tasks(configs)
        indices = [i for task in tasks for i in task.indices]
        assert sorted(indices) == list(range(len(configs)))
        names = {n for task in tasks for n in task.names}
        assert names == {c.name for c in configs}


class TestWorkerResolution:
    def test_zero_means_one_per_cpu(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert FeatureExtractor(workers=0).workers == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-2)
        with pytest.raises(ValueError, match="workers"):
            FeatureExtractor(workers=-1)

    def test_default_backend_mapping(self):
        assert resolve_backend(None, 1).name == "serial"
        assert resolve_backend(None, 4).name == "thread"
        assert isinstance(resolve_backend(None, 4), ThreadBackend)
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("gpu", 2)
        assert set(BACKEND_NAMES) == {"serial", "thread", "process"}


class TestSeverityCache:
    def test_warm_cache_runs_zero_tasks(self, hourly_kpi, live_obs):
        cache = SeverityCache()
        backend = RecordingBackend()
        extractor = FeatureExtractor(backend=backend, cache=cache)
        cold = extractor.extract(hourly_kpi)
        cold_tasks = backend.tasks_run
        assert cold_tasks == len(build_tasks(extractor.configs(hourly_kpi)))
        warm = extractor.extract(hourly_kpi)
        assert backend.tasks_run == cold_tasks  # zero detector evaluations
        np.testing.assert_array_equal(cold.values, warm.values)

        registry = live_obs.registry.snapshot()
        by_name = {
            (metric["name"],): sample["value"]
            for metric in registry["metrics"]
            for sample in metric["samples"]
            if metric["name"].startswith("repro_extract_cache")
        }
        assert by_name[("repro_extract_cache_hits_total",)] == 133
        assert by_name[("repro_extract_cache_misses_total",)] == 133

    def test_extract_workers_gauge(self, hourly_kpi, live_obs):
        FeatureExtractor(workers=3, backend="thread", cache=False).extract(
            hourly_kpi
        )
        snapshot = live_obs.registry.snapshot()
        gauges = {
            metric["name"]: sample["value"]
            for metric in snapshot["metrics"]
            for sample in metric["samples"]
            if metric["kind"] == "gauge"
        }
        assert gauges["repro_extract_workers"] == 3

    def test_cache_distinguishes_series(self, hourly_kpi):
        cache = SeverityCache()
        extractor = FeatureExtractor(cache=cache)
        extractor.extract(hourly_kpi)
        shifted = hourly_kpi.slice(0, len(hourly_kpi) - 1)
        extractor.extract(shifted)
        # Different value bytes -> different keys -> no false hits.
        assert cache.misses == 2 * 133
        assert cache.hits == 0

    def test_disk_cache_survives_fresh_extractor(self, hourly_kpi, tmp_path):
        first = FeatureExtractor(cache=SeverityCache(directory=tmp_path))
        cold = first.extract(hourly_kpi)
        stored = list(tmp_path.rglob("*.npy"))
        assert len(stored) == 133

        fresh_cache = SeverityCache(directory=tmp_path)
        backend = RecordingBackend()
        fresh = FeatureExtractor(backend=backend, cache=fresh_cache)
        warm = fresh.extract(hourly_kpi)
        assert backend.tasks_run == 0
        assert fresh_cache.hits == 133 and fresh_cache.misses == 0
        np.testing.assert_array_equal(cold.values, warm.values)

    def test_cache_dir_env_enables_caching(self, hourly_kpi, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        extractor = FeatureExtractor()
        assert extractor.cache is not None
        assert extractor.cache.directory == tmp_path
        # cache=False wins over the environment.
        assert FeatureExtractor(cache=False).cache is None
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert FeatureExtractor().cache is None

    def test_lru_bound(self):
        cache = SeverityCache(max_entries=2)
        for j in range(4):
            cache.put(f"key{j}", np.arange(3, dtype=float))
        assert len(cache) == 2
        assert cache.get("key0") is None
        assert cache.get("key3") is not None
        with pytest.raises(ValueError):
            SeverityCache(max_entries=0)

    def test_cached_columns_are_read_only(self):
        cache = SeverityCache()
        cache.put("k", np.arange(4, dtype=float))
        column = cache.get("k")
        with pytest.raises(ValueError):
            column[0] = 99.0

    def test_keys_are_content_addressed(self, hourly_kpi):
        digest = series_digest(hourly_kpi)
        assert digest == series_digest(hourly_kpi.copy())
        other = hourly_kpi.slice(0, len(hourly_kpi) - 1)
        assert digest != series_digest(other)
        assert column_key("ewma(alpha=0.5)", digest) != column_key(
            "ewma(alpha=0.3)", digest
        )

    def test_partial_hits_recompute_only_missing_columns(self, hourly_kpi):
        cache = SeverityCache()
        extractor = FeatureExtractor(cache=cache)
        full = extractor.extract(hourly_kpi)
        # Drop one non-HW column from the memory layer: only that task
        # reruns, the other 132 columns stay served by the cache.
        digest = series_digest(hourly_kpi)
        victim = "simple threshold"
        key = column_key(victim, digest)
        assert cache._memory.pop(key) is not None
        backend = RecordingBackend()
        extractor = FeatureExtractor(backend=backend, cache=cache)
        again = extractor.extract(hourly_kpi)
        assert backend.tasks_run == 1
        np.testing.assert_array_equal(full.values, again.values)
