"""Preference backtest tests."""

import numpy as np
import pytest

from repro.core import backtest_preferences, render_backtest
from repro.evaluation import AccuracyPreference

from test_opprentice import fast_forest, online_kpi, small_bank


@pytest.fixture(scope="module")
def outcomes(online_kpi):
    return backtest_preferences(
        online_kpi,
        preferences=(
            AccuracyPreference(0.66, 0.66),
            AccuracyPreference(0.4, 0.9),
        ),
        configs=small_bank(online_kpi.points_per_week),
        classifier_factory=fast_forest,
    )


class TestBacktestPreferences:
    def test_one_outcome_per_preference(self, outcomes):
        assert len(outcomes) == 2
        assert outcomes[0].preference == AccuracyPreference(0.66, 0.66)

    def test_fields_in_range(self, outcomes):
        for outcome in outcomes:
            assert 0.0 <= outcome.satisfaction_rate <= 1.0
            assert 0.0 <= outcome.mean_recall <= 1.0
            assert 0.0 <= outcome.mean_precision <= 1.0
            assert 0.0 <= outcome.detected_fraction <= 1.0
            assert outcome.detected_points >= 0

    def test_precision_hungry_detects_fewer_or_equal(self, online_kpi):
        """A stricter precision bound pushes the cThld up, so detection
        volume can only shrink (or tie) relative to a recall-hungry
        preference on the same scores."""
        results = backtest_preferences(
            online_kpi,
            preferences=(
                AccuracyPreference(0.9, 0.1),   # recall-hungry
                AccuracyPreference(0.1, 0.95),  # precision-hungry
            ),
            configs=small_bank(online_kpi.points_per_week),
            classifier_factory=fast_forest,
        )
        recall_hungry, precision_hungry = results
        assert precision_hungry.detected_points <= recall_hungry.detected_points

    def test_render(self, outcomes):
        text = render_backtest(outcomes)
        assert "preference backtest" in text
        assert "recall>=0.66" in text

    def test_requires_labels(self, hourly_kpi):
        with pytest.raises(ValueError, match="labelled"):
            backtest_preferences(hourly_kpi)

    def test_requires_preferences(self, online_kpi):
        with pytest.raises(ValueError, match="preference"):
            backtest_preferences(
                online_kpi, preferences=(),
                configs=small_bank(online_kpi.points_per_week),
            )

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            render_backtest([])


class TestTrainingHealth:
    def test_reports_oob_diagnostics(self, labeled_kpi):
        from repro.core import Opprentice

        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series)
        health = opp.training_health()
        assert 0.5 < health["oob_accuracy"] <= 1.0
        assert 0.0 <= health["oob_aucpr"] <= 1.0
        assert health["oob_brier"] < 0.25
        assert isinstance(health["preference_satisfied"], bool)

    def test_requires_fit(self):
        from repro.core import Opprentice

        with pytest.raises(RuntimeError):
            Opprentice().training_health()
