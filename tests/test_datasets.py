"""KPI dataset profile tests (repro.data.datasets)."""

import numpy as np
import pytest

from repro.data import (
    PROFILES,
    PV_PROFILE,
    SR_PROFILE,
    SRT_PROFILE,
    make_all,
    make_kpi,
    make_pv,
    same_type_kpis,
)


class TestProfiles:
    def test_registry_has_three_kpis(self):
        assert list(PROFILES) == ["PV", "#SR", "SRT"]

    def test_table1_lengths(self):
        assert PV_PROFILE.weeks == 25
        assert SR_PROFILE.weeks == 19
        assert SRT_PROFILE.weeks == 16

    def test_srt_uses_hourly_interval(self):
        assert SRT_PROFILE.interval == 3600
        assert SRT_PROFILE.paper_interval_seconds == 3600

    def test_pv_paper_interval_is_one_minute(self):
        assert PV_PROFILE.paper_interval_seconds == 60


class TestMakeKPI:
    def test_weeks_override(self):
        result = make_kpi(PV_PROFILE, weeks=3)
        assert result.series.n_weeks == pytest.approx(3.0)

    def test_paper_interval_flag(self):
        result = make_kpi(PV_PROFILE, weeks=1, paper_interval=True)
        assert result.series.interval == 60
        assert len(result.series) == 7 * 1440

    def test_without_anomalies(self):
        result = make_kpi(PV_PROFILE, weeks=2, with_anomalies=False)
        assert result.series.labels.sum() == 0
        assert result.windows == []

    def test_seed_offset_changes_data(self):
        a = make_kpi(PV_PROFILE, weeks=2, seed_offset=0)
        b = make_kpi(PV_PROFILE, weeks=2, seed_offset=1)
        assert not np.array_equal(a.series.values, b.series.values)

    def test_deterministic(self):
        a = make_kpi(SRT_PROFILE, weeks=2)
        b = make_kpi(SRT_PROFILE, weeks=2)
        np.testing.assert_array_equal(a.series.values, b.series.values)

    def test_injector_mix_respected(self):
        # #SR's mix has no dips or ramps.
        result = make_kpi(SR_PROFILE, weeks=6)
        assert set(result.kinds) <= {"spike", "level_shift", "jitter"}
        assert "spike" in result.kinds

    def test_make_all_keys(self):
        results = make_all(weeks=2)
        assert list(results) == ["PV", "#SR", "SRT"]


class TestSameTypeKPIs:
    def test_count_and_names(self):
        replicas = same_type_kpis(PV_PROFILE, count=3, weeks=2)
        assert [r.series.name for r in replicas] == ["PV-0", "PV-1", "PV-2"]

    def test_scales_differ(self):
        replicas = same_type_kpis(PV_PROFILE, count=3, weeks=2, scale_spread=10.0)
        means = [r.series.values.mean() for r in replicas]
        assert max(means) > 1.5 * min(means)

    def test_each_replica_labelled(self):
        for replica in same_type_kpis(PV_PROFILE, count=2, weeks=2):
            assert replica.series.is_labeled
            assert replica.series.labels.sum() > 0

    def test_count_validated(self):
        with pytest.raises(ValueError):
            same_type_kpis(PV_PROFILE, count=0)


class TestSRShape:
    """#SR anomalies must be top-of-range spikes (the property that
    makes simple threshold the paper's best #SR detector)."""

    def test_anomalous_points_dominate_the_tail(self):
        result = make_pv(weeks=4)  # sanity: not true for PV
        sr = make_kpi(SR_PROFILE, weeks=6)
        values, labels = sr.series.values, sr.series.labels.astype(bool)
        threshold = np.quantile(values, 0.995)
        top = values >= threshold
        # Most of the extreme top tail is anomalous for #SR.
        assert labels[top].mean() > 0.6


class TestExtraProfiles:
    """The §5.1 "other domains" KPIs: ISP traffic volume and RTT."""

    def test_registry(self):
        from repro.data import EXTRA_PROFILES

        assert list(EXTRA_PROFILES) == ["TRAFFIC", "RTT"]

    def test_traffic_is_strongly_seasonal_volume(self):
        from repro.data import TRAFFIC_PROFILE
        from repro.timeseries import summarize

        summary = summarize(make_kpi(TRAFFIC_PROFILE, weeks=6).series)
        assert summary.seasonality_label == "strong"
        assert summary.cv > 0.4

    def test_rtt_is_latency_like(self):
        from repro.data import RTT_PROFILE
        from repro.timeseries import summarize

        summary = summarize(make_kpi(RTT_PROFILE, weeks=6).series)
        assert summary.cv < 0.3
        assert summary.seasonality_label in ("moderate", "weak")

    def test_traffic_anomalies_are_mostly_dips_and_shifts(self):
        from repro.data import TRAFFIC_PROFILE

        result = make_kpi(TRAFFIC_PROFILE, weeks=6)
        assert set(result.kinds) <= {"dip", "level_shift", "spike"}

    def test_opprentice_works_on_extra_profiles(self):
        """End-to-end sanity: the framework generalises beyond the
        search-engine trio (§5.1's claim)."""
        from repro.core import Opprentice
        from repro.data import RTT_PROFILE
        from repro.evaluation import aucpr
        from repro.ml import RandomForest

        series = make_kpi(RTT_PROFILE, weeks=6).series
        split = 4 * series.points_per_week
        opp = Opprentice(
            classifier_factory=lambda: RandomForest(n_estimators=15, seed=0)
        )
        opp.fit(series.slice(0, split))
        scores = opp.anomaly_scores(series.slice(split, len(series)))
        assert aucpr(scores, series.labels[split:]) > 0.5
