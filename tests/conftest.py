"""Shared fixtures: small KPIs sized for fast unit tests."""

import numpy as np
import pytest

from repro.data import SeasonalProfile, generate_kpi, inject_anomalies
from repro.timeseries import TimeSeries


@pytest.fixture(scope="session")
def hourly_kpi():
    """4 weeks of clean hourly data with daily seasonality (672 points)."""
    generated = generate_kpi(
        weeks=4,
        interval=3600,
        profile=SeasonalProfile(
            base_level=100.0,
            daily_amplitude=0.5,
            noise_scale=0.02,
            trend=0.0,
        ),
        seed=42,
        name="unit-kpi",
    )
    return generated.series


@pytest.fixture(scope="session")
def labeled_kpi(hourly_kpi):
    """The hourly KPI with ~6% injected anomalies and exact labels."""
    result = inject_anomalies(
        hourly_kpi, target_fraction=0.06, seed=7, mean_window=4.0
    )
    return result


@pytest.fixture()
def rng():
    return np.random.default_rng(123)


def make_series(values, interval=3600, **kwargs) -> TimeSeries:
    """Tiny helper for hand-built series in tests."""
    return TimeSeries(values=np.asarray(values, dtype=float),
                      interval=interval, **kwargs)
