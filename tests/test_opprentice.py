"""Opprentice fit/detect and the online loop, on fast small KPIs."""

import numpy as np
import pytest

from repro.core import (
    CrossValidationPredictor,
    EWMAPredictor,
    FeatureExtractor,
    I1,
    Opprentice,
    run_online,
)
from repro.core.opprentice import _subsample_training
from repro.detectors import (
    Diff,
    EWMA,
    HistoricalAverage,
    SimpleMA,
    SimpleThreshold,
    TSDMad,
    build_configs,
)
from repro.evaluation import AccuracyPreference
from repro.ml import RandomForest


def small_bank(ppw: int):
    """A fast 7-configuration bank for unit testing the pipeline."""
    return build_configs(
        [
            SimpleThreshold(),
            Diff("last-slot", 1),
            SimpleMA(5),
            SimpleMA(20),
            EWMA(0.5),
            TSDMad(1, ppw),
            HistoricalAverage(1, ppw // 7),
        ]
    )


def fast_forest():
    return RandomForest(n_estimators=15, seed=0)


@pytest.fixture(scope="module")
def online_kpi():
    """10 weeks of hourly KPI with labels: long enough for the I1 loop."""
    from repro.data import SeasonalProfile, generate_kpi, inject_anomalies

    generated = generate_kpi(
        weeks=10,
        interval=3600,
        profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                noise_scale=0.02, trend=0.0),
        seed=11,
        name="online-kpi",
    )
    return inject_anomalies(
        generated.series, target_fraction=0.06, seed=12, mean_window=4.0
    ).series


class TestSubsampleTraining:
    def test_noop_under_cap(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.integers(0, 2, 50).astype(np.int8)
        out_x, out_y = _subsample_training(X, y, 100, 0)
        assert out_x is X and out_y is y

    def test_keeps_all_anomalies(self, rng):
        X = rng.normal(size=(1000, 2))
        y = np.zeros(1000, dtype=np.int8)
        y[:50] = 1
        out_x, out_y = _subsample_training(X, y, 200, 0)
        assert out_y.sum() == 50
        assert len(out_y) <= 200

    def test_deterministic(self, rng):
        X = rng.normal(size=(500, 2))
        y = (rng.random(500) < 0.1).astype(np.int8)
        a = _subsample_training(X, y, 100, 7)[0]
        b = _subsample_training(X, y, 100, 7)[0]
        np.testing.assert_array_equal(a, b)


class TestOpprenticeFitDetect:
    def test_fit_requires_labels(self, hourly_kpi):
        with pytest.raises(ValueError, match="labelled"):
            Opprentice().fit(hourly_kpi)

    def test_detect_requires_fit(self, labeled_kpi):
        with pytest.raises(RuntimeError, match="not fitted"):
            Opprentice().detect(labeled_kpi.series)

    def test_fit_detect_roundtrip(self, labeled_kpi):
        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        )
        opp.fit(series)
        result = opp.detect(series)
        assert len(result.predictions) == len(series)
        assert set(np.unique(result.predictions)) <= {0, 1}
        recall, precision = result.accuracy()
        # In-sample accuracy on an easy KPI should be strong.
        assert recall > 0.6 and precision > 0.6

    def test_detection_result_indices(self, labeled_kpi):
        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series)
        result = opp.detect(series)
        indices = result.anomalous_indices()
        assert (result.predictions[indices] == 1).all()

    def test_cthld_configured_by_predictor(self, labeled_kpi):
        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series)
        assert 0.0 <= opp.cthld_ <= 1.0


class TestRunOnline:
    def test_requires_labels(self, hourly_kpi):
        with pytest.raises(ValueError, match="labelled"):
            run_online(hourly_kpi)

    def test_weekly_outcomes(self, online_kpi):
        run = run_online(
            online_kpi,
            configs=small_bank(online_kpi.points_per_week),
            classifier_factory=fast_forest,
        )
        assert [o.week for o in run.outcomes] == [9, 10]
        ppw = online_kpi.points_per_week
        assert run.test_begin == 8 * ppw
        assert run.test_end == 10 * ppw

    def test_predictions_only_in_test_region(self, online_kpi):
        run = run_online(
            online_kpi,
            configs=small_bank(online_kpi.points_per_week),
            classifier_factory=fast_forest,
        )
        assert (run.predictions[: run.test_begin] == -1).all()
        assert set(np.unique(run.predictions[run.test_begin:])) <= {0, 1}

    def test_best_case_at_least_as_good_on_pc_score(self, online_kpi):
        """The offline best cThld maximises PC-Score per week by
        construction, so its per-week PC-Score dominates EWMA's."""
        from repro.evaluation import pc_score

        run = run_online(
            online_kpi,
            configs=small_bank(online_kpi.points_per_week),
            classifier_factory=fast_forest,
        )
        for o in run.outcomes:
            best = pc_score(o.best_recall, o.best_precision, run.preference)
            used = pc_score(o.recall, o.precision, run.preference)
            assert best >= used - 1e-9

    def test_moving_window_accuracy_points(self, online_kpi):
        run = run_online(
            online_kpi,
            configs=small_bank(online_kpi.points_per_week),
            classifier_factory=fast_forest,
        )
        points = run.moving_window_accuracy(window_weeks=1, step_days=7)
        assert len(points) == 2
        for recall, precision in points:
            assert 0.0 <= recall <= 1.0 and 0.0 <= precision <= 1.0

    def test_five_fold_predictor_runs(self, online_kpi):
        run = run_online(
            online_kpi,
            configs=small_bank(online_kpi.points_per_week),
            classifier_factory=fast_forest,
            predictor=CrossValidationPredictor(AccuracyPreference()),
        )
        assert len(run.outcomes) == 2

    def test_precomputed_features_shortcut(self, online_kpi):
        configs = small_bank(online_kpi.points_per_week)
        features = FeatureExtractor(configs).extract(online_kpi)
        a = run_online(
            online_kpi, configs=configs, classifier_factory=fast_forest,
            features=features,
        )
        b = run_online(
            online_kpi, configs=configs, classifier_factory=fast_forest,
        )
        np.testing.assert_array_equal(a.predictions, b.predictions)

    def test_feature_length_mismatch_rejected(self, online_kpi):
        configs = small_bank(online_kpi.points_per_week)
        features = FeatureExtractor(configs).extract(
            online_kpi.slice(0, len(online_kpi) - 5)
        )
        with pytest.raises(ValueError, match="rows"):
            run_online(online_kpi, configs=configs, features=features)

    def test_too_short_series_rejected(self, labeled_kpi):
        with pytest.raises(ValueError, match="too short"):
            run_online(
                labeled_kpi.series,
                configs=small_bank(labeled_kpi.series.points_per_week),
                classifier_factory=fast_forest,
            )

    def test_max_train_points_cap(self, online_kpi):
        run = run_online(
            online_kpi,
            configs=small_bank(online_kpi.points_per_week),
            classifier_factory=fast_forest,
            max_train_points=300,
        )
        assert len(run.outcomes) == 2  # still works, just cheaper


class TestContextualDetection:
    """detect() on a continuation slice must equal scoring the full
    series — seasonal detectors keep their history (§4.1/Fig 3b)."""

    def test_continuation_scores_match_full_series(self, labeled_kpi):
        series = labeled_kpi.series
        split = 3 * series.points_per_week
        bank = small_bank(series.points_per_week)
        opp = Opprentice(configs=bank, classifier_factory=fast_forest)
        opp.fit(series.slice(0, split))

        tail = series.slice(split, len(series))
        contextual = opp.anomaly_scores(tail)

        matrix = FeatureExtractor(bank).extract(series)
        expected = opp.score_features(matrix.values[split:])
        np.testing.assert_allclose(contextual, expected, atol=1e-12)

    def test_non_continuation_falls_back_to_standalone(self, labeled_kpi):
        series = labeled_kpi.series
        split = 3 * series.points_per_week
        bank = small_bank(series.points_per_week)
        opp = Opprentice(configs=bank, classifier_factory=fast_forest)
        opp.fit(series.slice(0, split))

        # A slice that does NOT continue the training grid.
        other = series.slice(0, split)
        standalone = opp.anomaly_scores(other)
        matrix = FeatureExtractor(bank).extract(other)
        expected = opp.score_features(matrix.values)
        np.testing.assert_allclose(standalone, expected, atol=1e-12)

    def test_detection_in_context_beats_cold_start(self, labeled_kpi):
        """With a seasonal detector in the bank, contextual extraction
        yields finite features where a cold start has only NaN."""
        series = labeled_kpi.series
        split = 3 * series.points_per_week
        bank = small_bank(series.points_per_week)
        tsd_index = [c.name for c in bank].index("tsd MAD(win=1w)")
        tail = series.slice(split, split + 10)

        cold = FeatureExtractor(bank).extract(tail).values[:, tsd_index]
        assert np.isnan(cold).all()

        opp = Opprentice(configs=bank, classifier_factory=fast_forest)
        opp.fit(series.slice(0, split))
        scores = opp.anomaly_scores(tail)
        assert np.isfinite(scores).all()
