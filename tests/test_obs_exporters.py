"""Exporters + the repro-obs CLI: Prometheus text, JSON snapshots, diff."""

import json
import re

import pytest

from repro.obs import (
    MetricsRegistry,
    diff_snapshots,
    disable,
    load_snapshot,
    render_diff_text,
    render_prometheus,
    render_snapshot_json,
    write_snapshot,
)
from repro.obs.cli import main as obs_main


@pytest.fixture(autouse=True)
def _reset_provider():
    yield
    disable()


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter(
        "repro_points_ingested_total", "Points seen", kpi="PV"
    ).inc(42)
    registry.gauge("repro_cthld", "Current threshold").set(0.65)
    histogram = registry.histogram(
        "repro_ingest_seconds", "Ingest latency", buckets=(0.001, 0.1, 1.0)
    )
    for value in (0.0005, 0.05, 0.5, 2.0):
        histogram.observe(value)
    return registry


#: name{labels} value — the two exposition line shapes we emit.
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>[0-9eE+.\-]+)$"
)


class TestPrometheus:
    def test_every_line_parses(self, registry):
        text = render_prometheus(registry.snapshot())
        samples = {}
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            match = SAMPLE_LINE.match(line)
            assert match, f"unparseable exposition line: {line!r}"
            samples[(match["name"], match["labels"] or "")] = float(
                match["value"]
            )
        assert samples[("repro_points_ingested_total", 'kpi="PV"')] == 42.0
        assert samples[("repro_cthld", "")] == 0.65
        assert samples[("repro_ingest_seconds_bucket", 'le="0.001"')] == 1.0
        assert samples[("repro_ingest_seconds_bucket", 'le="+Inf"')] == 4.0
        assert samples[("repro_ingest_seconds_count", "")] == 4.0
        assert samples[("repro_ingest_seconds_sum", "")] == pytest.approx(
            2.5505
        )

    def test_type_and_help_lines(self, registry):
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_points_ingested_total counter" in text
        assert "# TYPE repro_cthld gauge" in text
        assert "# TYPE repro_ingest_seconds histogram" in text
        assert "# HELP repro_ingest_seconds Ingest latency" in text

    def test_histogram_buckets_cumulative(self, registry):
        text = render_prometheus(registry.snapshot())
        counts = [
            float(SAMPLE_LINE.match(line)["value"])
            for line in text.splitlines()
            if line.startswith("repro_ingest_seconds_bucket")
        ]
        assert counts == sorted(counts), "bucket counts must be cumulative"

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", kpi='we"ird\nname').inc()
        text = render_prometheus(registry.snapshot())
        assert r'kpi="we\"ird\nname"' in text


class TestSnapshotRoundTrip:
    def test_json_round_trips_clean_diff(self, registry, tmp_path):
        snapshot = registry.snapshot()
        path = write_snapshot(snapshot, tmp_path / "snap.json")
        reloaded = load_snapshot(path)
        assert reloaded == json.loads(render_snapshot_json(snapshot))
        diff = diff_snapshots(snapshot, reloaded)
        assert diff == {"changed": [], "added": [], "removed": []}
        assert render_diff_text(diff) == "no changes\n"

    def test_diff_detects_changes(self, registry):
        before = registry.snapshot()
        registry.counter("repro_points_ingested_total", kpi="PV").inc(8)
        registry.histogram(
            "repro_ingest_seconds", buckets=(0.001, 0.1, 1.0)
        ).observe(0.2)
        registry.counter("repro_new_total").inc()
        after = registry.snapshot()
        diff = diff_snapshots(before, after)
        changed = {e["name"]: e for e in diff["changed"]}
        assert changed["repro_points_ingested_total"]["delta"] == 8.0
        assert changed["repro_ingest_seconds"]["delta_count"] == 1
        assert [e["name"] for e in diff["added"]] == ["repro_new_total"]
        assert diff["removed"] == []

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "not-a-snapshot.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="metrics"):
            load_snapshot(path)


class TestCli:
    @pytest.fixture()
    def snapshot_path(self, registry, tmp_path):
        return write_snapshot(registry.snapshot(), tmp_path / "snap.json")

    def test_dump_prometheus(self, snapshot_path, capsys):
        assert obs_main(["dump", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_ingest_seconds histogram" in out

    def test_dump_json(self, snapshot_path, capsys):
        assert obs_main(["dump", str(snapshot_path), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == 1

    def test_diff_identical_snapshots(self, snapshot_path, capsys):
        code = obs_main(
            ["diff", str(snapshot_path), str(snapshot_path),
             "--fail-on-change"]
        )
        assert code == 0
        assert capsys.readouterr().out == "no changes\n"

    def test_diff_changed_snapshots(self, registry, snapshot_path, tmp_path,
                                    capsys):
        registry.gauge("repro_cthld").set(0.7)
        second = write_snapshot(registry.snapshot(), tmp_path / "after.json")
        code = obs_main(
            ["diff", str(snapshot_path), str(second), "--fail-on-change"]
        )
        assert code == 1
        assert "repro_cthld" in capsys.readouterr().out

    def test_diff_json_format(self, registry, snapshot_path, tmp_path,
                              capsys):
        registry.counter("repro_points_ingested_total", kpi="PV").inc()
        second = write_snapshot(registry.snapshot(), tmp_path / "after.json")
        assert obs_main(
            ["diff", str(snapshot_path), str(second), "--format", "json"]
        ) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["changed"][0]["delta"] == 1.0

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        code = obs_main(["dump", str(tmp_path / "nope.json")])
        assert code == 2
        assert "repro-obs:" in capsys.readouterr().err
