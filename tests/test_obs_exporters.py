"""Exporters + the repro-obs CLI: Prometheus text, JSON snapshots, diff."""

import json
import re

import pytest

from repro.obs import (
    MetricsRegistry,
    combine_snapshots,
    diff_snapshots,
    disable,
    histogram_sample_percentiles,
    load_snapshot,
    merge_snapshots,
    render_diff_text,
    render_prometheus,
    render_snapshot_json,
    write_snapshot,
)
from repro.obs.cli import main as obs_main


@pytest.fixture(autouse=True)
def _reset_provider():
    yield
    disable()


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter(
        "repro_points_ingested_total", "Points seen", kpi="PV"
    ).inc(42)
    registry.gauge("repro_cthld", "Current threshold").set(0.65)
    histogram = registry.histogram(
        "repro_ingest_seconds", "Ingest latency", buckets=(0.001, 0.1, 1.0)
    )
    for value in (0.0005, 0.05, 0.5, 2.0):
        histogram.observe(value)
    return registry


#: name{labels} value — the two exposition line shapes we emit.
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>[0-9eE+.\-]+)$"
)


class TestPrometheus:
    def test_every_line_parses(self, registry):
        text = render_prometheus(registry.snapshot())
        samples = {}
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            match = SAMPLE_LINE.match(line)
            assert match, f"unparseable exposition line: {line!r}"
            samples[(match["name"], match["labels"] or "")] = float(
                match["value"]
            )
        assert samples[("repro_points_ingested_total", 'kpi="PV"')] == 42.0
        assert samples[("repro_cthld", "")] == 0.65
        assert samples[("repro_ingest_seconds_bucket", 'le="0.001"')] == 1.0
        assert samples[("repro_ingest_seconds_bucket", 'le="+Inf"')] == 4.0
        assert samples[("repro_ingest_seconds_count", "")] == 4.0
        assert samples[("repro_ingest_seconds_sum", "")] == pytest.approx(
            2.5505
        )

    def test_type_and_help_lines(self, registry):
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_points_ingested_total counter" in text
        assert "# TYPE repro_cthld gauge" in text
        assert "# TYPE repro_ingest_seconds histogram" in text
        assert "# HELP repro_ingest_seconds Ingest latency" in text

    def test_histogram_buckets_cumulative(self, registry):
        text = render_prometheus(registry.snapshot())
        counts = [
            float(SAMPLE_LINE.match(line)["value"])
            for line in text.splitlines()
            if line.startswith("repro_ingest_seconds_bucket")
        ]
        assert counts == sorted(counts), "bucket counts must be cumulative"

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", kpi='we"ird\nname').inc()
        text = render_prometheus(registry.snapshot())
        assert r'kpi="we\"ird\nname"' in text


class TestSnapshotRoundTrip:
    def test_json_round_trips_clean_diff(self, registry, tmp_path):
        snapshot = registry.snapshot()
        path = write_snapshot(snapshot, tmp_path / "snap.json")
        reloaded = load_snapshot(path)
        assert reloaded == json.loads(render_snapshot_json(snapshot))
        diff = diff_snapshots(snapshot, reloaded)
        assert diff == {"changed": [], "added": [], "removed": []}
        assert render_diff_text(diff) == "no changes\n"

    def test_diff_detects_changes(self, registry):
        before = registry.snapshot()
        registry.counter("repro_points_ingested_total", kpi="PV").inc(8)
        registry.histogram(
            "repro_ingest_seconds", buckets=(0.001, 0.1, 1.0)
        ).observe(0.2)
        registry.counter("repro_new_total").inc()
        after = registry.snapshot()
        diff = diff_snapshots(before, after)
        changed = {e["name"]: e for e in diff["changed"]}
        assert changed["repro_points_ingested_total"]["delta"] == 8.0
        assert changed["repro_ingest_seconds"]["delta_count"] == 1
        assert [e["name"] for e in diff["added"]] == ["repro_new_total"]
        assert diff["removed"] == []

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "not-a-snapshot.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="metrics"):
            load_snapshot(path)


class TestCli:
    @pytest.fixture()
    def snapshot_path(self, registry, tmp_path):
        return write_snapshot(registry.snapshot(), tmp_path / "snap.json")

    def test_dump_prometheus(self, snapshot_path, capsys):
        assert obs_main(["dump", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_ingest_seconds histogram" in out

    def test_dump_json(self, snapshot_path, capsys):
        assert obs_main(["dump", str(snapshot_path), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == 1

    def test_diff_identical_snapshots(self, snapshot_path, capsys):
        code = obs_main(
            ["diff", str(snapshot_path), str(snapshot_path),
             "--fail-on-change"]
        )
        assert code == 0
        assert capsys.readouterr().out == "no changes\n"

    def test_diff_changed_snapshots(self, registry, snapshot_path, tmp_path,
                                    capsys):
        registry.gauge("repro_cthld").set(0.7)
        second = write_snapshot(registry.snapshot(), tmp_path / "after.json")
        code = obs_main(
            ["diff", str(snapshot_path), str(second), "--fail-on-change"]
        )
        assert code == 1
        assert "repro_cthld" in capsys.readouterr().out

    def test_diff_json_format(self, registry, snapshot_path, tmp_path,
                              capsys):
        registry.counter("repro_points_ingested_total", kpi="PV").inc()
        second = write_snapshot(registry.snapshot(), tmp_path / "after.json")
        assert obs_main(
            ["diff", str(snapshot_path), str(second), "--format", "json"]
        ) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["changed"][0]["delta"] == 1.0

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        code = obs_main(["dump", str(tmp_path / "nope.json")])
        assert code == 2
        assert "repro-obs:" in capsys.readouterr().err

    def test_dump_table_shows_percentiles(self, snapshot_path, capsys):
        code = obs_main(["dump", str(snapshot_path), "--format", "table"])
        assert code == 0
        out = capsys.readouterr().out
        assert "P50" in out and "P90" in out and "P99" in out
        assert "repro_ingest_seconds" in out
        # Four observations (0.0005, 0.05, 0.5, 2.0) over buckets
        # (0.001, 0.1, 1.0): the p50 rank lands exactly on the second
        # bucket boundary, and the p99 rank in the overflow bucket
        # clamps to the highest finite bound.
        row = next(
            line for line in out.splitlines()
            if line.startswith("repro_ingest_seconds")
        )
        assert row.split()[-3:] == ["0.1", "1", "1"]


class TestMergeSemantics:
    """Per-kind collision rules: counters/histograms add, gauges take
    the last write (regression: gauges used to be summed)."""

    def _source(self, queue_depth, points, latency):
        registry = MetricsRegistry()
        registry.gauge("repro_fleet_queue_depth", "depth").set(queue_depth)
        registry.counter("repro_points_ingested_total", "points").inc(points)
        registry.histogram(
            "repro_ingest_seconds", "latency", buckets=(0.01, 1.0)
        ).observe(latency)
        return registry.snapshot()

    def _series(self, merged, name):
        (family,) = [f for f in merged["metrics"] if f["name"] == name]
        return family["samples"]

    def test_merge_tags_sources_without_collisions(self):
        merged = merge_snapshots(
            {"b": self._source(3, 10, 0.005), "a": self._source(7, 20, 0.5)},
            label="kpi",
        )
        gauges = self._series(merged, "repro_fleet_queue_depth")
        assert {s["labels"]["kpi"]: s["value"] for s in gauges} == {
            "a": 7.0, "b": 3.0,
        }

    def test_colliding_gauge_takes_last_write_not_sum(self):
        # Same series after tagging (the sources' samples carry a
        # conflicting kpi label already): gauges must NOT add.
        registry_one = MetricsRegistry()
        registry_one.gauge("g", "gauge", kpi="X").set(5)
        registry_two = MetricsRegistry()
        registry_two.gauge("g", "gauge", kpi="X").set(11)
        merged = combine_snapshots(
            [registry_one.snapshot(), registry_two.snapshot()]
        )
        (sample,) = self._series(merged, "g")
        assert sample["value"] == 11.0  # last write, not 16

    def test_colliding_counter_and_histogram_add(self):
        registry_one = MetricsRegistry()
        registry_one.counter("c_total", "c").inc(5)
        registry_one.histogram("h", "h", buckets=(1.0,)).observe(0.5)
        registry_two = MetricsRegistry()
        registry_two.counter("c_total", "c").inc(7)
        registry_two.histogram("h", "h", buckets=(1.0,)).observe(2.0)
        merged = combine_snapshots(
            [registry_one.snapshot(), registry_two.snapshot()]
        )
        (counter,) = self._series(merged, "c_total")
        assert counter["value"] == 12.0
        (histogram,) = self._series(merged, "h")
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(2.5)
        assert histogram["buckets"] == [["1", 1], ["+Inf", 2]]

    def test_kind_clash_across_sources_rejected(self):
        registry_one = MetricsRegistry()
        registry_one.counter("m_total", "m").inc()
        registry_two = MetricsRegistry()
        registry_two.gauge("m_total", "m").set(1)
        with pytest.raises(ValueError, match="kind"):
            merge_snapshots(
                {"a": registry_one.snapshot(), "b": registry_two.snapshot()}
            )

    def test_colliding_histogram_layout_mismatch_rejected(self):
        registry_one = MetricsRegistry()
        registry_one.histogram("h", "h", buckets=(1.0,), kpi="X").observe(0.5)
        registry_two = MetricsRegistry()
        registry_two.histogram(
            "h", "h", buckets=(1.0, 2.0), kpi="X"
        ).observe(0.5)
        with pytest.raises(ValueError, match="bucket"):
            combine_snapshots(
                [registry_one.snapshot(), registry_two.snapshot()]
            )

    def test_merge_does_not_mutate_inputs(self):
        source = self._source(3, 10, 0.005)
        frozen = json.loads(json.dumps(source))
        merge_snapshots({"a": source, "b": self._source(1, 2, 0.5)})
        assert source == frozen


class TestWindowPercentiles:
    def test_histogram_sample_percentiles(self, registry):
        snapshot = registry.snapshot()
        (family,) = [
            f for f in snapshot["metrics"]
            if f["name"] == "repro_ingest_seconds"
        ]
        percentiles = histogram_sample_percentiles(family["samples"][0])
        assert set(percentiles) == {"p50", "p90", "p99"}
        assert percentiles["p50"] == pytest.approx(0.1)
        # p99 rank lands in the overflow bucket -> highest finite bound.
        assert percentiles["p99"] == pytest.approx(1.0)

    def test_empty_sample_is_none(self):
        registry = MetricsRegistry()
        registry.histogram("h", "h", buckets=(1.0,))
        snapshot = registry.snapshot()
        assert histogram_sample_percentiles(
            snapshot["metrics"][0]["samples"][0]
        ) is None

    def test_diff_reports_window_percentiles(self, registry):
        before = registry.snapshot()
        histogram = registry.histogram(
            "repro_ingest_seconds", buckets=(0.001, 0.1, 1.0)
        )
        for _ in range(10):
            histogram.observe(0.05)  # all new points in (0.001, 0.1]
        after = registry.snapshot()
        diff = diff_snapshots(before, after)
        (entry,) = [
            e for e in diff["changed"]
            if e["name"] == "repro_ingest_seconds"
        ]
        window = entry["window_percentiles"]
        # Percentiles of ONLY the 10 new observations, not the mixed
        # cumulative distribution.
        assert 0.001 < window["p50"] < 0.1
        assert 0.001 < window["p99"] < 0.1
        assert "p50=" in render_diff_text(diff)
