"""Table 2 training-set strategy tests."""

import numpy as np
import pytest

from repro.core import F4, I1, I4, R4, STRATEGIES, TrainingStrategy, TrainTestSplit
from repro.timeseries import TimeSeries


def weeks_series(n_weeks: float, interval=3600) -> TimeSeries:
    ppw = 7 * 24 * 3600 // interval
    n = int(n_weeks * ppw)
    return TimeSeries(values=np.zeros(n), interval=interval)


class TestTrainTestSplit:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainTestSplit(5, 3, 3, 10, 9)  # train_begin > train_end


class TestI1:
    def test_first_split_starts_at_week9(self):
        series = weeks_series(12)
        splits = list(I1.splits(series))
        ppw = series.points_per_week
        assert splits[0].test_begin == 8 * ppw
        assert splits[0].test_end == 9 * ppw
        assert splits[0].test_week == 9
        assert splits[0].train_begin == 0
        assert splits[0].train_end == 8 * ppw

    def test_one_split_per_remaining_week(self):
        series = weeks_series(12)
        assert I1.n_splits(series) == 4  # weeks 9, 10, 11, 12

    def test_training_grows_incrementally(self):
        series = weeks_series(12)
        splits = list(I1.splits(series))
        ends = [s.train_end for s in splits]
        assert ends == sorted(ends)
        ppw = series.points_per_week
        assert splits[-1].train_end == 11 * ppw

    def test_partial_final_week_excluded(self):
        series = weeks_series(12.5)
        assert I1.n_splits(series) == 4


class TestFourWeekStrategies:
    def test_i4_trains_on_all_history(self):
        series = weeks_series(16)
        split = next(iter(I4.splits(series)))
        assert split.train_begin == 0
        assert split.test_end - split.test_begin == 4 * series.points_per_week

    def test_r4_trains_on_recent_8_weeks(self):
        series = weeks_series(16)
        splits = list(R4.splits(series))
        ppw = series.points_per_week
        last = splits[-1]
        assert last.train_end - last.train_begin == 8 * ppw
        assert last.train_end == last.test_begin

    def test_f4_trains_on_first_8_weeks_only(self):
        series = weeks_series(16)
        for split in F4.splits(series):
            assert split.train_begin == 0
            assert split.train_end == 8 * series.points_per_week

    def test_all_4week_strategies_share_test_windows(self):
        series = weeks_series(16)
        tests_i4 = [(s.test_begin, s.test_end) for s in I4.splits(series)]
        tests_r4 = [(s.test_begin, s.test_end) for s in R4.splits(series)]
        tests_f4 = [(s.test_begin, s.test_end) for s in F4.splits(series)]
        assert tests_i4 == tests_r4 == tests_f4
        assert len(tests_i4) == 16 - 8 - 4 + 1

    def test_too_short_series_yields_no_splits(self):
        series = weeks_series(10)
        assert list(I4.splits(series)) == []


class TestStrategyValidation:
    def test_ids(self):
        assert [s.id for s in STRATEGIES] == ["I1", "I4", "R4", "F4"]

    def test_rejects_unknown_history(self):
        with pytest.raises(ValueError, match="history"):
            TrainingStrategy(id="X", history="middle", test_weeks=1)

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            TrainingStrategy(id="X", history="all", test_weeks=0)

    def test_train_and_test_never_overlap(self):
        series = weeks_series(20)
        for strategy in STRATEGIES:
            for split in strategy.splits(series):
                assert split.train_end <= split.test_begin
