"""Duration filter and alert aggregation tests (§6)."""

import numpy as np
import pytest

from repro.core import Alert, alerts_from_predictions, duration_filter
from repro.core.alerting import windows_from_alerts
from repro.timeseries import AnomalyWindow, TimeSeries


class TestDurationFilter:
    def test_short_runs_suppressed(self):
        predictions = np.array([0, 1, 0, 1, 1, 1, 0, 1, 1], dtype=np.int8)
        filtered = duration_filter(predictions, min_duration_points=2)
        assert filtered.tolist() == [0, 0, 0, 1, 1, 1, 0, 1, 1]

    def test_min_one_is_identity(self):
        predictions = np.array([0, 1, 0, 1], dtype=np.int8)
        np.testing.assert_array_equal(
            duration_filter(predictions, 1), predictions
        )

    def test_missing_placeholders_untouched(self):
        predictions = np.array([-1, 1, 1, -1, 1], dtype=np.int8)
        filtered = duration_filter(predictions, 2)
        assert filtered[0] == -1 and filtered[3] == -1
        assert filtered[4] == 0  # single run filtered

    def test_validation(self):
        with pytest.raises(ValueError):
            duration_filter(np.zeros(3, dtype=np.int8), 0)

    def test_does_not_mutate_input(self):
        predictions = np.array([0, 1, 0], dtype=np.int8)
        duration_filter(predictions, 2)
        assert predictions.tolist() == [0, 1, 0]


class TestAlerts:
    def _series(self, n=10):
        return TimeSeries(
            values=np.arange(n, dtype=float), interval=60, start=1000,
            name="alert-kpi",
        )

    def test_alerts_cover_anomalous_windows(self):
        series = self._series()
        predictions = np.array([0, 1, 1, 0, 0, 1, 1, 1, 0, 0], dtype=np.int8)
        scores = np.linspace(0.1, 1.0, 10)
        alerts = alerts_from_predictions(series, predictions, scores)
        assert len(alerts) == 2
        first = alerts[0]
        assert (first.begin_index, first.end_index) == (1, 3)
        assert first.begin_timestamp == 1000 + 60
        assert first.end_timestamp == 1000 + 3 * 60
        assert first.duration_points == 2
        assert first.peak_score == pytest.approx(scores[2])

    def test_duration_filter_applied(self):
        series = self._series()
        predictions = np.array([0, 1, 0, 1, 1, 1, 0, 0, 0, 0], dtype=np.int8)
        alerts = alerts_from_predictions(
            series, predictions, np.ones(10), min_duration_points=3
        )
        assert len(alerts) == 1
        assert alerts[0].begin_index == 3

    def test_length_mismatch_rejected(self):
        series = self._series()
        with pytest.raises(ValueError):
            alerts_from_predictions(series, np.zeros(5), np.ones(10))

    def test_windows_from_alerts(self):
        series = self._series()
        predictions = np.array([1, 1, 0, 0, 0, 0, 0, 1, 0, 0], dtype=np.int8)
        alerts = alerts_from_predictions(series, predictions, np.ones(10))
        assert windows_from_alerts(alerts) == [
            AnomalyWindow(0, 2), AnomalyWindow(7, 8)
        ]

    def test_no_anomalies_no_alerts(self):
        series = self._series()
        assert alerts_from_predictions(
            series, np.zeros(10, dtype=np.int8), np.ones(10)
        ) == []
