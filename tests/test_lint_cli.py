"""CLI, reporter-shape and pyproject-config tests for repro.analysis.

Includes the acceptance fixture from the issue: a detector containing a
``values[t+1]`` lookahead, an unseeded ``np.random`` call and an
unregistered ``Detector`` subclass must fail the lint with each problem
reported under its own rule id, in both text and JSON output.
"""

import json
import textwrap

import pytest

from repro.analysis.cli import main

#: One fixture violating three contracts at once (issue acceptance).
BAD_DETECTOR = """\
import numpy as np

from repro.detectors.base import Detector


class SneakyDetector(Detector):
    kind = "sneaky"

    def params(self):
        return {}

    def warmup(self):
        return 0

    def severities(self, series):
        values = self._validate(series)
        noise = np.random.normal(size=len(values))
        out = np.empty(len(values))
        for t in range(len(values) - 1):
            out[t] = abs(values[t + 1]) + noise[t]
        return out
"""

CLEAN_MODULE = """\
import numpy as np


def shift(values, lag):
    return np.concatenate([np.full(lag, np.nan), values[:-lag]])
"""


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_MODULE)
        code, out, _ = run_cli(capsys, "--no-config", str(tmp_path))
        assert code == 0
        assert "0 error(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_DETECTOR)
        code, out, _ = run_cli(capsys, "--no-config", str(tmp_path))
        assert code == 1

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code, _, err = run_cli(
            capsys, "--no-config", str(tmp_path / "nope")
        )
        assert code == 2
        assert "does not exist" in err

    def test_unknown_disable_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_MODULE)
        code, _, err = run_cli(
            capsys, "--no-config", "--disable", "no-such-rule", str(tmp_path)
        )
        assert code == 2
        assert "no-such-rule" in err

    def test_strict_fails_on_warnings(self, tmp_path, capsys):
        (tmp_path / "warn.py").write_text(textwrap.dedent("""\
            __all__ = ["listed"]


            def listed():
                return 1


            def unlisted():
                return 2
        """))
        code, _, _ = run_cli(capsys, "--no-config", str(tmp_path))
        assert code == 0
        code, _, _ = run_cli(
            capsys, "--no-config", "--strict", str(tmp_path)
        )
        assert code == 1


class TestAcceptanceFixture:
    """The issue's acceptance criterion, end to end through the CLI."""

    EXPECTED_RULES = {"no-lookahead", "determinism", "registry-contract"}

    def test_text_output_reports_each_rule(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_DETECTOR)
        code, out, _ = run_cli(capsys, "--no-config", str(tmp_path))
        assert code != 0
        for rule in self.EXPECTED_RULES:
            assert f"[{rule}]" in out

    def test_json_output_reports_each_rule(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_DETECTOR)
        code, out, _ = run_cli(
            capsys, "--no-config", "--format", "json", str(tmp_path)
        )
        assert code != 0
        payload = json.loads(out)
        assert self.EXPECTED_RULES <= {
            f["rule"] for f in payload["findings"]
        }


class TestJsonShape:
    def test_payload_schema(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_DETECTOR)
        _, out, _ = run_cli(
            capsys, "--no-config", "--format", "json", str(tmp_path)
        )
        payload = json.loads(out)
        assert payload["version"] == 2
        assert set(payload) == {
            "version", "findings", "summary", "rules", "timing"
        }
        assert payload["summary"] == {
            "files": 1,
            "errors": len(payload["findings"]),
            "warnings": 0,
            "suppressed": 0,
        }
        assert payload["timing"]["parsed"] == 1
        assert payload["timing"]["cached"] == 0
        assert payload["timing"]["duration_seconds"] >= 0.0
        for finding in payload["findings"]:
            assert set(finding) == {
                "file", "line", "col", "rule", "severity", "message", "data"
            }
            assert finding["severity"] in {"error", "warning"}
            assert finding["line"] >= 1

    def test_findings_sorted_by_location(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_DETECTOR)
        _, out, _ = run_cli(
            capsys, "--no-config", "--format", "json", str(tmp_path)
        )
        payload = json.loads(out)
        keys = [(f["file"], f["line"], f["col"]) for f in payload["findings"]]
        assert keys == sorted(keys)


class TestListRules:
    def test_lists_every_registered_rule(self, capsys):
        code, out, _ = run_cli(capsys, "--list-rules")
        assert code == 0
        for rule in ("no-lookahead", "determinism", "registry-contract",
                     "api-hygiene"):
            assert rule in out


class TestPyprojectConfig:
    def _write_pyproject(self, tmp_path, body):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent(body))
        return pyproject

    def test_disable_via_toml(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nx = np.random.normal()\n"
        )
        pyproject = self._write_pyproject(tmp_path, """\
            [tool.repro-lint]
            disable = ["determinism"]
        """)
        code, _, _ = run_cli(
            capsys, "--config", str(pyproject), str(tmp_path / "bad.py")
        )
        assert code == 0

    def test_severity_override_via_toml(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nx = np.random.normal()\n"
        )
        pyproject = self._write_pyproject(tmp_path, """\
            [tool.repro-lint.severity]
            determinism = "warning"
        """)
        code, out, _ = run_cli(
            capsys, "--config", str(pyproject), "--format", "json",
            str(tmp_path / "bad.py")
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["findings"][0]["severity"] == "warning"

    def test_registry_exempt_via_toml(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_DETECTOR)
        pyproject = self._write_pyproject(tmp_path, """\
            [tool.repro-lint.registry-contract]
            exempt = ["SneakyDetector"]
        """)
        code, out, _ = run_cli(
            capsys, "--config", str(pyproject), "--format", "json",
            str(tmp_path / "bad.py")
        )
        assert code == 1  # still fails on lookahead + determinism
        payload = json.loads(out)
        assert "registry-contract" not in {
            f["rule"] for f in payload["findings"]
        }

    def test_paths_default_from_toml(self, tmp_path, capsys, monkeypatch):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "ok.py").write_text(CLEAN_MODULE)
        pyproject = self._write_pyproject(tmp_path, """\
            [tool.repro-lint]
            paths = ["pkg"]
        """)
        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(capsys, "--config", str(pyproject))
        assert code == 0
        assert "1 file(s) checked" in out

    def test_unknown_key_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_MODULE)
        pyproject = self._write_pyproject(tmp_path, """\
            [tool.repro-lint]
            typo_key = true
        """)
        code, _, err = run_cli(
            capsys, "--config", str(pyproject), str(tmp_path)
        )
        assert code == 2
        assert "typo_key" in err

    def test_no_config_ignores_toml(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nx = np.random.normal()\n"
        )
        self._write_pyproject(tmp_path, """\
            [tool.repro-lint]
            disable = ["determinism"]
        """)
        monkeypatch.chdir(tmp_path)
        code, _, _ = run_cli(capsys, "--no-config", str(tmp_path / "bad.py"))
        assert code == 1


class TestCacheDirOption:
    def test_warm_run_parses_nothing(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_MODULE)
        cache = tmp_path / "cache"
        argv = ("--no-config", "--cache-dir", str(cache), "--format",
                "json", str(tmp_path / "ok.py"))
        _, out, _ = run_cli(capsys, *argv)
        assert json.loads(out)["timing"]["parsed"] == 1
        _, out, _ = run_cli(capsys, *argv)
        timing = json.loads(out)["timing"]
        assert timing["parsed"] == 0
        assert timing["cached"] == 1


class TestChangedOnly:
    """--changed-only analyses everything but reports only changed files."""

    def _git(self, cwd, *argv):
        import subprocess

        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@example.com",
             *argv],
            cwd=cwd, check=True, capture_output=True,
        )

    def _setup_repo(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        (tmp_path / "committed.py").write_text(
            "import numpy as np\nx = np.random.normal()\n"
        )
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")

    def test_committed_findings_filtered_out(self, tmp_path, capsys,
                                             monkeypatch):
        self._setup_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(
            capsys, "--no-config", "--changed-only", "HEAD", str(tmp_path)
        )
        assert code == 0
        assert "0 error(s)" in out

    def test_new_file_findings_reported(self, tmp_path, capsys, monkeypatch):
        self._setup_repo(tmp_path)
        (tmp_path / "fresh.py").write_text(
            "import numpy as np\ny = np.random.normal()\n"
        )
        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(
            capsys, "--no-config", "--changed-only", "HEAD", "--format",
            "json", str(tmp_path)
        )
        assert code == 1
        files = {f["file"] for f in json.loads(out)["findings"]}
        assert any(f.endswith("fresh.py") for f in files)
        assert not any(f.endswith("committed.py") for f in files)

    def test_bad_ref_exits_two(self, tmp_path, capsys, monkeypatch):
        self._setup_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        code, _, err = run_cli(
            capsys, "--no-config", "--changed-only", "no-such-ref",
            str(tmp_path)
        )
        assert code == 2
        assert "no-such-ref" in err
