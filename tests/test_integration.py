"""Cross-module integration tests: the full Opprentice story.

These tests run the complete pipeline — synthetic KPI, simulated
operator labeling, feature extraction over a detector bank, random
forest training, cThld selection — and check the paper's qualitative
claims end to end on small, fast KPIs.
"""

import numpy as np
import pytest

from repro.combiners import MajorityVote, NormalizationSchema
from repro.core import FeatureExtractor, Opprentice, run_online
from repro.data import (
    SeasonalProfile,
    SimulatedOperator,
    generate_kpi,
    inject_anomalies,
)
from repro.detectors import (
    Diff,
    EWMA,
    HistoricalAverage,
    SimpleMA,
    SimpleThreshold,
    TSD,
    TSDMad,
    build_configs,
)
from repro.evaluation import AccuracyPreference, aucpr
from repro.ml import Imputer, RandomForest


@pytest.fixture(scope="module")
def story():
    """10 weeks of hourly KPI, labelled by an imperfect operator."""
    generated = generate_kpi(
        weeks=10,
        interval=3600,
        profile=SeasonalProfile(
            base_level=100.0, daily_amplitude=0.5, noise_scale=0.02, trend=0.02
        ),
        seed=77,
        name="integration-kpi",
    )
    injected = inject_anomalies(
        generated.series, target_fraction=0.07, seed=78, mean_window=4.0
    )
    operator = SimulatedOperator(
        boundary_jitter=1, miss_rate=0.03, false_window_rate=0.05, seed=79
    )
    labelled = operator.label(injected.series, injected.windows)
    truth = injected.series.labels
    return labelled, truth


@pytest.fixture(scope="module")
def bank():
    return build_configs(
        [
            SimpleThreshold(),
            Diff("last-slot", 1),
            Diff("last-day", 24),
            SimpleMA(10),
            SimpleMA(30),
            EWMA(0.3),
            EWMA(0.7),
            TSD(1, 168),
            TSDMad(1, 168),
            HistoricalAverage(1, 24),
        ]
    )


@pytest.fixture(scope="module")
def features(story, bank):
    labelled, _ = story
    return FeatureExtractor(bank).extract(labelled)


def forest():
    return RandomForest(n_estimators=25, seed=5)


class TestEndToEnd:
    def test_operator_labels_are_viable_for_learning(self, story, bank):
        """§4.2: "machine learning is well known for being robust to
        noises. Our evaluation also attests that the real labels of
        operators are viable for learning" — train on noisy operator
        labels, evaluate against the exact injection ground truth."""
        labelled, truth = story
        ppw = labelled.points_per_week
        train = labelled.slice(0, 8 * ppw)
        test = labelled.slice(8 * ppw, len(labelled))
        opp = Opprentice(configs=bank, classifier_factory=forest)
        opp.fit(train)
        scores = opp.anomaly_scores(test)
        assert aucpr(scores, truth[8 * ppw:]) > 0.6

    def test_forest_beats_static_combiners(self, story, bank, features):
        """The Fig 9 headline: random forests outrank the normalization
        schema and majority vote on AUCPR."""
        labelled, truth = story
        ppw = labelled.points_per_week
        split = 8 * ppw
        train_rows, test_rows = features.rows(0, split), features.rows(
            split, len(labelled)
        )
        test_truth = truth[split:]

        imputer = Imputer().fit(train_rows)
        rf = forest().fit(imputer.transform(train_rows), labelled.labels[:split])
        rf_auc = aucpr(rf.predict_proba(imputer.transform(test_rows)), test_truth)

        norm = NormalizationSchema().fit(train_rows)
        vote = MajorityVote().fit(train_rows)
        norm_auc = aucpr(norm.score(test_rows), test_truth)
        vote_auc = aucpr(vote.score(test_rows), test_truth)

        assert rf_auc > norm_auc
        assert rf_auc > vote_auc

    def test_online_loop_approaches_preference(self, story, bank):
        """§5.6: Opprentice "can automatically satisfy or approximate
        the operators' accuracy preference" on pooled windows."""
        labelled, _ = story
        run = run_online(
            labelled,
            configs=bank,
            classifier_factory=forest,
            preference=AccuracyPreference(0.66, 0.66),
        )
        points = run.moving_window_accuracy(window_weeks=2, step_days=7)
        satisfied = sum(
            1 for r, p in points if r >= 0.5 and p >= 0.5
        )
        assert satisfied / len(points) >= 0.5

    def test_duration_filter_composes_with_detection(self, story, bank):
        from repro.core import alerts_from_predictions

        labelled, _ = story
        ppw = labelled.points_per_week
        opp = Opprentice(configs=bank, classifier_factory=forest)
        opp.fit(labelled.slice(0, 8 * ppw))
        result = opp.detect(labelled.slice(8 * ppw, len(labelled)))
        alerts = alerts_from_predictions(
            result.series, result.predictions, result.scores,
            min_duration_points=2,
        )
        for alert in alerts:
            assert alert.duration_points >= 2


@pytest.mark.slow
class TestPaperScaleSRT:
    def test_srt_online_detection_meets_preference(self):
        """Full-length SRT KPI (Table 1 scale) through the whole online
        pipeline: the Fig 13(c) qualitative outcome."""
        from repro.data import make_srt

        srt = make_srt().series
        run = run_online(
            srt,
            classifier_factory=lambda: RandomForest(n_estimators=30, seed=1),
        )
        assert run.satisfaction_rate() > 0.6
        assert run.satisfaction_rate(use_best=True) >= run.satisfaction_rate() - 0.2
