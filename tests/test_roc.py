"""ROC curve tests, including the paper's PR-vs-ROC imbalance argument."""

import numpy as np
import pytest

from repro.evaluation import auc_roc, aucpr, roc_curve


class TestROCCurve:
    def test_perfect_classifier(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        assert auc_roc(scores, labels) == pytest.approx(1.0)

    def test_random_scores_near_half(self, rng):
        labels = (rng.random(20_000) < 0.3).astype(int)
        scores = rng.random(20_000)
        assert auc_roc(scores, labels) == pytest.approx(0.5, abs=0.02)

    def test_inverted_classifier_near_zero(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([1, 1, 0, 0])
        assert auc_roc(scores, labels) == pytest.approx(0.0)

    def test_monotone_axes(self, rng):
        scores = rng.random(500)
        labels = (rng.random(500) < 0.2).astype(int)
        curve = roc_curve(scores, labels)
        assert (np.diff(curve.false_positive_rates) >= 0).all()
        assert (np.diff(curve.true_positive_rates) >= 0).all()

    def test_needs_both_classes(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([0.1, 0.2]), np.array([1, 1]))

    def test_nan_scores_excluded(self):
        scores = np.array([0.9, np.nan, 0.1])
        labels = np.array([1, 0, 0])
        assert auc_roc(scores, labels) == pytest.approx(1.0)


class TestImbalanceArgument:
    def test_pr_exposes_weak_detector_roc_hides_it(self, rng):
        """Footnote 3: on highly imbalanced data PR is more informative.

        Build a detector that ranks anomalies above 95% of normals —
        AUROC looks excellent, but with 0.5% anomalies the false alarms
        swamp the detections and AUCPR stays small.
        """
        n = 50_000
        labels = (rng.random(n) < 0.005).astype(int)
        scores = np.where(
            labels == 1,
            rng.uniform(0.95, 1.0, n),
            rng.random(n),
        )
        roc = auc_roc(scores, labels)
        pr = aucpr(scores, labels)
        assert roc > 0.95
        assert pr < 0.5
        # PR reflects the precision collapse; ROC does not.
        assert roc - pr > 0.4
