"""Feature-matrix assembly tests (§4.3), incl. the batched HW path."""

import numpy as np
import pytest

from repro.core import FeatureExtractor, FeatureMatrix, extract_features
from repro.detectors import Diff, EWMA, HoltWinters, SimpleThreshold, build_configs


class TestFeatureMatrix:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            FeatureMatrix(values=np.zeros(5), names=["a"])
        with pytest.raises(ValueError, match="columns"):
            FeatureMatrix(values=np.zeros((5, 2)), names=["a"])

    def test_rows_and_column_access(self):
        matrix = FeatureMatrix(
            values=np.arange(12, dtype=float).reshape(4, 3),
            names=["a", "b", "c"],
        )
        assert matrix.rows(1, 3).shape == (2, 3)
        np.testing.assert_array_equal(matrix.column("b"), [1.0, 4.0, 7.0, 10.0])
        with pytest.raises(KeyError):
            matrix.column("zzz")
        with pytest.raises(ValueError):
            matrix.rows(2, 10)


class TestFeatureExtractor:
    def test_custom_bank(self, hourly_kpi):
        configs = build_configs(
            [SimpleThreshold(), Diff("last-slot", 1), EWMA(0.5)]
        )
        matrix = FeatureExtractor(configs).extract(hourly_kpi)
        assert matrix.n_features == 3
        assert matrix.n_points == len(hourly_kpi)
        assert matrix.names == [
            "simple threshold", "diff(lag=last-slot)", "ewma(alpha=0.5)"
        ]

    def test_columns_match_individual_detectors(self, hourly_kpi):
        detectors = [SimpleThreshold(), Diff("last-slot", 1), EWMA(0.5)]
        matrix = FeatureExtractor(build_configs(detectors)).extract(hourly_kpi)
        for j, detector in enumerate(detectors):
            np.testing.assert_allclose(
                matrix.values[:, j],
                detector.severities(hourly_kpi),
                equal_nan=True,
            )

    def test_batched_hw_matches_individual(self, hourly_kpi):
        """The grouped Holt-Winters fast path must be exact."""
        detectors = [
            HoltWinters(a, 0.4, 0.6, 24) for a in (0.2, 0.4, 0.6, 0.8)
        ] + [SimpleThreshold()]
        matrix = FeatureExtractor(build_configs(detectors)).extract(hourly_kpi)
        for j, detector in enumerate(detectors[:4]):
            expected = detector.severities(hourly_kpi)
            np.testing.assert_allclose(
                matrix.values[:, j], expected, equal_nan=True, atol=1e-9
            )

    def test_default_bank_is_table3(self, hourly_kpi):
        matrix = extract_features(hourly_kpi)
        assert matrix.n_features == 133
        assert len(set(matrix.names)) == 133

    def test_extractor_without_configs_requires_series(self):
        with pytest.raises(ValueError, match="no series"):
            FeatureExtractor().configs()

    def test_names_require_configs(self):
        with pytest.raises(RuntimeError):
            _ = FeatureExtractor().names


class TestParallelExtraction:
    def test_workers_produce_identical_matrix(self, hourly_kpi):
        sequential = FeatureExtractor(workers=1).extract(hourly_kpi)
        parallel = FeatureExtractor(workers=4).extract(hourly_kpi)
        np.testing.assert_array_equal(
            sequential.values, parallel.values
        )
        assert sequential.names == parallel.names

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            FeatureExtractor(workers=-1)

    def test_workers_zero_means_auto(self):
        import os

        extractor = FeatureExtractor(workers=0)
        assert extractor.workers == (os.cpu_count() or 1)
