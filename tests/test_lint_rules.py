"""Per-rule tests for :mod:`repro.analysis`: each rule gets fixtures
that violate it and fixtures that must stay quiet (the false-positive
shapes that exist in the real detector bank)."""

import textwrap

import pytest

from repro.analysis import LintConfig, LintEngine, Severity


def mod(*parts):
    """Join snippet parts, dedenting each part independently."""
    return "".join(textwrap.dedent(part) for part in parts)


def lint(tmp_path, sources, config=None):
    """Write ``{filename: source}`` fixtures and lint the directory."""
    for name, source in sources.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(mod(source))
    return LintEngine(config or LintConfig()).run([str(tmp_path)])


def rules_hit(result):
    return {finding.rule for finding in result.findings}


DETECTOR_PREAMBLE = """\
import numpy as np

from repro.detectors.base import Detector

"""


# ---------------------------------------------------------------------------
# no-lookahead
# ---------------------------------------------------------------------------
class TestNoLookahead:
    def test_forward_index_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    values = self._validate(series)
                    out = np.zeros(len(values))
                    for t in range(len(values) - 1):
                        out[t] = values[t + 1]
                    return out
        """)})
        lookaheads = [f for f in result.findings if f.rule == "no-lookahead"]
        assert len(lookaheads) == 1
        assert lookaheads[0].data["shape"] == "forward-index"
        assert lookaheads[0].severity is Severity.ERROR

    def test_forward_slice_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    values = self._validate(series)
                    t = 10
                    future = values[t + 1:]
                    return np.zeros(len(values))
        """)})
        shapes = {f.data.get("shape") for f in result.findings
                  if f.rule == "no-lookahead"}
        assert shapes == {"forward-slice"}

    def test_whole_series_aggregate_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    values = self._validate(series)
                    return np.abs(values - np.mean(values))
        """)})
        shapes = {f.data.get("shape") for f in result.findings
                  if f.rule == "no-lookahead"}
        assert shapes == {"whole-series-aggregate"}

    def test_method_aggregate_on_series_values_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    baseline = series.values.mean()
                    return np.abs(self._validate(series) - baseline)
        """)})
        assert "no-lookahead" in rules_hit(result)

    def test_series_reversal_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    values = self._validate(series)
                    return values[::-1]
        """)})
        shapes = {f.data.get("shape") for f in result.findings
                  if f.rule == "no-lookahead"}
        assert shapes == {"reversal"}

    def test_stream_update_checked(self, tmp_path):
        result = lint(tmp_path, {"det.py": """
            from repro.detectors.base import SeverityStream


            class BadStream(SeverityStream):
                def update(self, value):
                    t = len(self._buffer)
                    return self._buffer[t + 1]
        """})
        assert "no-lookahead" in rules_hit(result)

    def test_causal_shapes_stay_quiet(self, tmp_path):
        # Every shape here exists in the real bank and must not fire:
        # past indexing, exclusive slice uppers, windowed aggregates,
        # reversal of a non-series array (WeightedMA's weights).
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Good(Detector):
                kind = "good"

                def severities(self, series):
                    values = self._validate(series)
                    n = len(values)
                    out = np.full(n, np.nan)
                    weights = np.arange(1.0, 6.0)
                    kernel = weights[::-1]
                    prefix = values[:10]
                    floor = prefix[np.isfinite(prefix)].mean()
                    for t in range(10, n):
                        window = values[t - 10:t]
                        out[t] = abs(values[t] - window.mean()) / floor
                        out[t] += values[t - 1]
                    out[: 10 + 1] = np.nan
                    return out
        """)})
        assert "no-lookahead" not in rules_hit(result)

    def test_subclass_through_intermediate_base(self, tmp_path):
        # _Base(Detector) in one file, Leaf(_Base) in another: the
        # hierarchy is resolved across the analysed set.
        result = lint(tmp_path, {
            "base_mod.py": mod(DETECTOR_PREAMBLE, """
                class _Base(Detector):
                    kind = "base"
            """),
            "leaf_mod.py": """
                from base_mod import _Base


                class Leaf(_Base):
                    def severities(self, series):
                        values = self._validate(series)
                        t = 0
                        return values[t + 1:]
            """,
        })
        lookaheads = [f for f in result.findings if f.rule == "no-lookahead"]
        assert len(lookaheads) == 1
        assert "Leaf.severities" in lookaheads[0].message

    def test_non_detector_class_ignored(self, tmp_path):
        result = lint(tmp_path, {"other.py": """
            import numpy as np


            class Smoother:
                def severities(self, series):
                    values = np.asarray(series.values)
                    return values - np.mean(values)
        """})
        assert "no-lookahead" not in rules_hit(result)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("call", [
        "np.random.normal(size=3)",
        "np.random.rand(4)",
        "np.random.seed(0)",
        "np.random.shuffle(x)",
        "np.random.default_rng()",
        "np.random.default_rng(None)",
        "np.random.default_rng(seed=None)",
        "np.random.RandomState()",
    ])
    def test_global_rng_flagged(self, tmp_path, call):
        result = lint(tmp_path, {"mod.py": f"""
            import numpy as np

            x = [1, 2, 3]
            y = {call}
        """})
        assert "determinism" in rules_hit(result)

    @pytest.mark.parametrize("call", [
        "np.random.default_rng(42)",
        "np.random.default_rng(seed=7)",
        "np.random.default_rng(seed)",
        "rng.normal(size=3)",
    ])
    def test_seeded_and_instance_calls_ok(self, tmp_path, call):
        result = lint(tmp_path, {"mod.py": f"""
            import numpy as np

            seed = 1
            rng = np.random.default_rng(seed)
            y = {call}
        """})
        assert "determinism" not in rules_hit(result)

    def test_import_aliases_resolved(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            from numpy.random import default_rng
            from numpy import random as npr

            a = default_rng()
            b = npr.normal()
        """})
        symbols = {f.data["symbol"] for f in result.findings
                   if f.rule == "determinism"}
        assert symbols == {
            "numpy.random.default_rng", "numpy.random.normal"
        }

    def test_stdlib_random_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import random

            a = random.random()
            b = random.Random()
            good = random.Random(1234)
        """})
        flagged = [f for f in result.findings if f.rule == "determinism"]
        assert len(flagged) == 2


# ---------------------------------------------------------------------------
# registry-contract
# ---------------------------------------------------------------------------
REGISTRY_FIXTURE = """
    from det import Registered

    EXPECTED_CONFIGURATIONS = {configs}
    EXPECTED_DETECTORS = {detectors}

    WINDOWS = (10, 20, 30)


    def default_detectors(interval):
        detectors = [Registered(w) for w in WINDOWS]
        return detectors
"""


class TestRegistryContract:
    def _sources(self, configs=3, detectors=1, extra_detector=""):
        return {
            "det.py": mod(DETECTOR_PREAMBLE, """
                class Registered(Detector):
                    kind = "registered"

                    def severities(self, series):
                        return self._validate(series) * 0.0
            """, extra_detector),
            "registry.py": REGISTRY_FIXTURE.format(
                configs=configs, detectors=detectors
            ),
        }

    def test_consistent_bank_is_clean(self, tmp_path):
        result = lint(tmp_path, self._sources())
        assert "registry-contract" not in rules_hit(result)

    def test_unregistered_detector_flagged(self, tmp_path):
        result = lint(tmp_path, self._sources(extra_detector="""

            class Orphan(Detector):
                kind = "orphan"

                def severities(self, series):
                    return self._validate(series) * 0.0
        """))
        flagged = [f for f in result.findings
                   if f.rule == "registry-contract"]
        assert len(flagged) == 1
        assert flagged[0].data == {
            "detector": "Orphan", "check": "reachability"
        }

    def test_exempt_config_allows_unregistered(self, tmp_path):
        config = LintConfig(registry_exempt=["Orphan"])
        result = lint(tmp_path, self._sources(extra_detector="""

            class Orphan(Detector):
                kind = "orphan"

                def severities(self, series):
                    return self._validate(series) * 0.0
        """), config=config)
        assert "registry-contract" not in rules_hit(result)

    def test_private_and_abstract_classes_ignored(self, tmp_path):
        result = lint(tmp_path, self._sources(extra_detector="""

            class _Helper(Detector):
                kind = "helper"


            class AbstractKind(Detector):
                import abc

                @abc.abstractmethod
                def params(self):
                    ...
        """))
        assert "registry-contract" not in rules_hit(result)

    def test_configuration_count_drift_flagged(self, tmp_path):
        result = lint(tmp_path, self._sources(configs=4))
        flagged = [f for f in result.findings
                   if f.rule == "registry-contract"]
        assert len(flagged) == 1
        assert flagged[0].data["check"] == "config-count"
        assert flagged[0].data["derived"] == "3"
        assert "EXPECTED_CONFIGURATIONS = 4" in flagged[0].message

    def test_detector_count_drift_flagged(self, tmp_path):
        result = lint(tmp_path, self._sources(detectors=2))
        flagged = [f for f in result.findings
                   if f.rule == "registry-contract"]
        assert len(flagged) == 1
        assert flagged[0].data["check"] == "detector-count"

    def test_product_comprehension_and_append_counted(self, tmp_path):
        sources = self._sources()
        sources["registry.py"] = """
            import itertools

            from det import Registered

            EXPECTED_CONFIGURATIONS = 14
            EXPECTED_DETECTORS = 1

            GRID_A = (0.2, 0.4)
            GRID_B = (1, 2, 3)


            def default_detectors(interval):
                detectors = [Registered(0)]
                detectors += [
                    Registered(a * b)
                    for a, b in itertools.product(GRID_A, GRID_B)
                ]
                detectors += [Registered(w) for w in (5, 6, 7)]
                detectors.extend([Registered(8), Registered(9)])
                detectors.append(Registered(10))
                detectors.append(Registered(11))
                return detectors
        """
        result = lint(tmp_path, sources)
        assert "registry-contract" not in rules_hit(result)

    def test_unresolvable_grid_is_warning(self, tmp_path):
        sources = self._sources()
        sources["registry.py"] = """
            from det import Registered

            EXPECTED_CONFIGURATIONS = 3


            def _windows():
                return [1, 2, 3]


            def default_detectors(interval):
                detectors = [Registered(w) for w in _windows()]
                return detectors
        """
        result = lint(tmp_path, sources)
        flagged = [f for f in result.findings
                   if f.rule == "registry-contract"]
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.WARNING
        assert flagged[0].data["check"] == "grid-unresolvable"


# ---------------------------------------------------------------------------
# api-hygiene
# ---------------------------------------------------------------------------
class TestApiHygiene:
    def test_bare_and_broad_except_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f():
                try:
                    return 1
                except:
                    return None


            def g():
                try:
                    return 1
                except Exception:
                    return None
        """})
        flagged = [f for f in result.findings
                   if f.data.get("check") == "broad-except"]
        assert len(flagged) == 2

    def test_reraising_handler_allowed(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f():
                try:
                    return 1
                except Exception as exc:
                    raise RuntimeError("wrapped") from exc
        """})
        assert "api-hygiene" not in rules_hit(result)

    def test_specific_except_allowed(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f():
                try:
                    return 1
                except ValueError:
                    return None
        """})
        assert "api-hygiene" not in rules_hit(result)

    def test_mutable_defaults_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f(items=[], mapping={}, *, names=set()):
                return items, mapping, names


            def g(items=None, n=3, name="x"):
                return items
        """})
        flagged = [f for f in result.findings
                   if f.data.get("check") == "mutable-default"]
        assert len(flagged) == 3

    def test_all_undefined_name_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            __all__ = ["present", "missing"]


            def present():
                return 1
        """})
        flagged = [f for f in result.findings
                   if f.data.get("check") == "all-undefined"]
        assert [f.data["name"] for f in flagged] == ["missing"]

    def test_public_def_missing_from_all_is_warning(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            __all__ = ["listed"]


            def listed():
                return 1


            def unlisted():
                return 2


            def _private():
                return 3
        """})
        flagged = [f for f in result.findings
                   if f.data.get("check") == "all-missing"]
        assert [f.data["name"] for f in flagged] == ["unlisted"]
        assert flagged[0].severity is Severity.WARNING

    def test_module_without_all_not_checked(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def anything():
                return 1
        """})
        assert "api-hygiene" not in rules_hit(result)


# ---------------------------------------------------------------------------
# worker-safety
# ---------------------------------------------------------------------------
class TestWorkerSafety:
    def test_global_statement_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            _CALLS = 0

            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    global _CALLS
                    _CALLS += 1
                    return np.zeros(len(series))
        """)})
        flagged = [f for f in result.findings if f.rule == "worker-safety"]
        assert flagged
        assert flagged[0].severity is Severity.ERROR
        assert any(f.data["symbol"] == "_CALLS" for f in flagged)

    def test_module_container_mutation_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            CACHE = {}

            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    CACHE[series.name] = len(series)
                    return np.zeros(len(series))
        """)})
        flagged = [f for f in result.findings if f.rule == "worker-safety"]
        assert [f.data["symbol"] for f in flagged] == ["CACHE"]
        assert "module-level" in flagged[0].message

    def test_mutating_method_on_module_list_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            _SEEN = []

            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    _SEEN.append(series.name)
                    return np.zeros(len(series))
        """)})
        flagged = [f for f in result.findings if f.rule == "worker-safety"]
        assert [f.data["symbol"] for f in flagged] == ["_SEEN.append"]

    def test_class_attribute_write_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"
                runs = 0

                def severities(self, series):
                    cls = type(self)
                    cls.runs = cls.runs + 1
                    return np.zeros(len(series))

                @classmethod
                def reset(cls):
                    cls.runs = 0
        """)})
        flagged = [f for f in result.findings if f.rule == "worker-safety"]
        assert len(flagged) == 2
        assert all("class attribute" in f.message for f in flagged)

    def test_local_shadowing_stays_quiet(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            CACHE = {}

            class Fine(Detector):
                kind = "fine"

                def severities(self, series):
                    CACHE = {}
                    CACHE[series.name] = len(series)
                    return np.zeros(len(series))
        """)})
        assert "worker-safety" not in rules_hit(result)

    def test_self_state_and_module_reads_stay_quiet(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            WINDOWS = (10, 20, 40)

            class Fine(Detector):
                kind = "fine"

                def __init__(self, window):
                    self.window = window
                    self._buffer = []

                def severities(self, series):
                    self._buffer.append(len(series))
                    self.window = min(self.window, WINDOWS[-1])
                    out = list(WINDOWS)
                    out.append(self.window)
                    return np.zeros(len(series))
        """)})
        assert "worker-safety" not in rules_hit(result)

    def test_non_detector_classes_not_checked(self, tmp_path):
        result = lint(tmp_path, {"helper.py": """
            STATS = {}

            class Accumulator:
                def bump(self, key):
                    STATS[key] = STATS.get(key, 0) + 1
        """})
        assert "worker-safety" not in rules_hit(result)


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_line_level_suppression(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable=determinism
            y = np.random.normal()
        """})
        flagged = [f for f in result.findings if f.rule == "determinism"]
        assert len(flagged) == 1
        assert flagged[0].line == 5
        assert result.summary.suppressed == 1

    def test_def_scope_suppression(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np


            def noisy():  # repro: disable=determinism
                a = np.random.normal()
                b = np.random.rand()
                return a + b
        """})
        assert "determinism" not in rules_hit(result)
        assert result.summary.suppressed == 2

    def test_class_scope_suppression_on_registry_rule(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Orphan(Detector):  # repro: disable=registry-contract
                kind = "orphan"

                def severities(self, series):
                    return self._validate(series) * 0.0
        """)})
        assert "registry-contract" not in rules_hit(result)

    def test_bare_disable_suppresses_all_rules(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable
        """})
        assert result.findings == []

    def test_suppression_only_hits_named_rule(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable=api-hygiene
        """})
        assert "determinism" in rules_hit(result)


# ---------------------------------------------------------------------------
# config behaviour (overrides via LintConfig; TOML parsing in test_lint_cli)
# ---------------------------------------------------------------------------
class TestConfigOverrides:
    def test_disabled_rule_does_not_run(self, tmp_path):
        config = LintConfig(disabled_rules=["determinism"])
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()
        """}, config=config)
        assert result.findings == []
        assert "determinism" not in result.rules

    def test_severity_override_downgrades_to_warning(self, tmp_path):
        config = LintConfig(
            severity_overrides={"determinism": Severity.WARNING}
        )
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()
        """}, config=config)
        assert result.summary.errors == 0
        assert result.summary.warnings == 1
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1

    def test_exclude_patterns_skip_files(self, tmp_path):
        config = LintConfig(exclude=["*/skipme/*"])
        result = lint(tmp_path, {
            "skipme/mod.py": "import numpy as np\nx = np.random.normal()\n",
            "keep.py": "import numpy as np\ny = np.random.normal()\n",
        }, config=config)
        assert len(result.findings) == 1
        assert "keep.py" in result.findings[0].file

    def test_parse_error_reported_not_raised(self, tmp_path):
        result = lint(tmp_path, {"broken.py": """
            def f(:
                pass
        """})
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert result.summary.errors == 1
