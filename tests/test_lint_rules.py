"""Per-rule tests for :mod:`repro.analysis`: each rule gets fixtures
that violate it and fixtures that must stay quiet (the false-positive
shapes that exist in the real detector bank)."""

import textwrap

import pytest

from repro.analysis import LintConfig, LintEngine, Severity


def mod(*parts):
    """Join snippet parts, dedenting each part independently."""
    return "".join(textwrap.dedent(part) for part in parts)


def lint(tmp_path, sources, config=None):
    """Write ``{filename: source}`` fixtures and lint the directory."""
    for name, source in sources.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(mod(source))
    return LintEngine(config or LintConfig()).run([str(tmp_path)])


def rules_hit(result):
    return {finding.rule for finding in result.findings}


DETECTOR_PREAMBLE = """\
import numpy as np

from repro.detectors.base import Detector

"""


# ---------------------------------------------------------------------------
# no-lookahead
# ---------------------------------------------------------------------------
class TestNoLookahead:
    def test_forward_index_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    values = self._validate(series)
                    out = np.zeros(len(values))
                    for t in range(len(values) - 1):
                        out[t] = values[t + 1]
                    return out
        """)})
        lookaheads = [f for f in result.findings if f.rule == "no-lookahead"]
        assert len(lookaheads) == 1
        assert lookaheads[0].data["shape"] == "forward-index"
        assert lookaheads[0].severity is Severity.ERROR

    def test_forward_slice_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    values = self._validate(series)
                    t = 10
                    future = values[t + 1:]
                    return np.zeros(len(values))
        """)})
        shapes = {f.data.get("shape") for f in result.findings
                  if f.rule == "no-lookahead"}
        assert shapes == {"forward-slice"}

    def test_whole_series_aggregate_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    values = self._validate(series)
                    return np.abs(values - np.mean(values))
        """)})
        shapes = {f.data.get("shape") for f in result.findings
                  if f.rule == "no-lookahead"}
        assert shapes == {"whole-series-aggregate"}

    def test_method_aggregate_on_series_values_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    baseline = series.values.mean()
                    return np.abs(self._validate(series) - baseline)
        """)})
        assert "no-lookahead" in rules_hit(result)

    def test_series_reversal_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    values = self._validate(series)
                    return values[::-1]
        """)})
        shapes = {f.data.get("shape") for f in result.findings
                  if f.rule == "no-lookahead"}
        assert shapes == {"reversal"}

    def test_stream_update_checked(self, tmp_path):
        result = lint(tmp_path, {"det.py": """
            from repro.detectors.base import SeverityStream


            class BadStream(SeverityStream):
                def update(self, value):
                    t = len(self._buffer)
                    return self._buffer[t + 1]
        """})
        assert "no-lookahead" in rules_hit(result)

    def test_causal_shapes_stay_quiet(self, tmp_path):
        # Every shape here exists in the real bank and must not fire:
        # past indexing, exclusive slice uppers, windowed aggregates,
        # reversal of a non-series array (WeightedMA's weights).
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Good(Detector):
                kind = "good"

                def severities(self, series):
                    values = self._validate(series)
                    n = len(values)
                    out = np.full(n, np.nan)
                    weights = np.arange(1.0, 6.0)
                    kernel = weights[::-1]
                    prefix = values[:10]
                    floor = prefix[np.isfinite(prefix)].mean()
                    for t in range(10, n):
                        window = values[t - 10:t]
                        out[t] = abs(values[t] - window.mean()) / floor
                        out[t] += values[t - 1]
                    out[: 10 + 1] = np.nan
                    return out
        """)})
        assert "no-lookahead" not in rules_hit(result)

    def test_subclass_through_intermediate_base(self, tmp_path):
        # _Base(Detector) in one file, Leaf(_Base) in another: the
        # hierarchy is resolved across the analysed set.
        result = lint(tmp_path, {
            "base_mod.py": mod(DETECTOR_PREAMBLE, """
                class _Base(Detector):
                    kind = "base"
            """),
            "leaf_mod.py": """
                from base_mod import _Base


                class Leaf(_Base):
                    def severities(self, series):
                        values = self._validate(series)
                        t = 0
                        return values[t + 1:]
            """,
        })
        lookaheads = [f for f in result.findings if f.rule == "no-lookahead"]
        assert len(lookaheads) == 1
        assert "Leaf.severities" in lookaheads[0].message

    def test_non_detector_class_ignored(self, tmp_path):
        result = lint(tmp_path, {"other.py": """
            import numpy as np


            class Smoother:
                def severities(self, series):
                    values = np.asarray(series.values)
                    return values - np.mean(values)
        """})
        assert "no-lookahead" not in rules_hit(result)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("call", [
        "np.random.normal(size=3)",
        "np.random.rand(4)",
        "np.random.seed(0)",
        "np.random.shuffle(x)",
        "np.random.default_rng()",
        "np.random.default_rng(None)",
        "np.random.default_rng(seed=None)",
        "np.random.RandomState()",
    ])
    def test_global_rng_flagged(self, tmp_path, call):
        result = lint(tmp_path, {"mod.py": f"""
            import numpy as np

            x = [1, 2, 3]
            y = {call}
        """})
        assert "determinism" in rules_hit(result)

    @pytest.mark.parametrize("call", [
        "np.random.default_rng(42)",
        "np.random.default_rng(seed=7)",
        "np.random.default_rng(seed)",
        "rng.normal(size=3)",
    ])
    def test_seeded_and_instance_calls_ok(self, tmp_path, call):
        result = lint(tmp_path, {"mod.py": f"""
            import numpy as np

            seed = 1
            rng = np.random.default_rng(seed)
            y = {call}
        """})
        assert "determinism" not in rules_hit(result)

    def test_import_aliases_resolved(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            from numpy.random import default_rng
            from numpy import random as npr

            a = default_rng()
            b = npr.normal()
        """})
        symbols = {f.data["symbol"] for f in result.findings
                   if f.rule == "determinism"}
        assert symbols == {
            "numpy.random.default_rng", "numpy.random.normal"
        }

    def test_stdlib_random_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import random

            a = random.random()
            b = random.Random()
            good = random.Random(1234)
        """})
        flagged = [f for f in result.findings if f.rule == "determinism"]
        assert len(flagged) == 2


# ---------------------------------------------------------------------------
# registry-contract
# ---------------------------------------------------------------------------
REGISTRY_FIXTURE = """
    from det import Registered

    EXPECTED_CONFIGURATIONS = {configs}
    EXPECTED_DETECTORS = {detectors}

    WINDOWS = (10, 20, 30)


    def default_detectors(interval):
        detectors = [Registered(w) for w in WINDOWS]
        return detectors
"""


class TestRegistryContract:
    def _sources(self, configs=3, detectors=1, extra_detector=""):
        return {
            "det.py": mod(DETECTOR_PREAMBLE, """
                class Registered(Detector):
                    kind = "registered"

                    def severities(self, series):
                        return self._validate(series) * 0.0
            """, extra_detector),
            "registry.py": REGISTRY_FIXTURE.format(
                configs=configs, detectors=detectors
            ),
        }

    def test_consistent_bank_is_clean(self, tmp_path):
        result = lint(tmp_path, self._sources())
        assert "registry-contract" not in rules_hit(result)

    def test_unregistered_detector_flagged(self, tmp_path):
        result = lint(tmp_path, self._sources(extra_detector="""

            class Orphan(Detector):
                kind = "orphan"

                def severities(self, series):
                    return self._validate(series) * 0.0
        """))
        flagged = [f for f in result.findings
                   if f.rule == "registry-contract"]
        assert len(flagged) == 1
        assert flagged[0].data == {
            "detector": "Orphan", "check": "reachability"
        }

    def test_exempt_config_allows_unregistered(self, tmp_path):
        config = LintConfig(registry_exempt=["Orphan"])
        result = lint(tmp_path, self._sources(extra_detector="""

            class Orphan(Detector):
                kind = "orphan"

                def severities(self, series):
                    return self._validate(series) * 0.0
        """), config=config)
        assert "registry-contract" not in rules_hit(result)

    def test_private_and_abstract_classes_ignored(self, tmp_path):
        result = lint(tmp_path, self._sources(extra_detector="""

            class _Helper(Detector):
                kind = "helper"


            class AbstractKind(Detector):
                import abc

                @abc.abstractmethod
                def params(self):
                    ...
        """))
        assert "registry-contract" not in rules_hit(result)

    def test_configuration_count_drift_flagged(self, tmp_path):
        result = lint(tmp_path, self._sources(configs=4))
        flagged = [f for f in result.findings
                   if f.rule == "registry-contract"]
        assert len(flagged) == 1
        assert flagged[0].data["check"] == "config-count"
        assert flagged[0].data["derived"] == "3"
        assert "EXPECTED_CONFIGURATIONS = 4" in flagged[0].message

    def test_detector_count_drift_flagged(self, tmp_path):
        result = lint(tmp_path, self._sources(detectors=2))
        flagged = [f for f in result.findings
                   if f.rule == "registry-contract"]
        assert len(flagged) == 1
        assert flagged[0].data["check"] == "detector-count"

    def test_product_comprehension_and_append_counted(self, tmp_path):
        sources = self._sources()
        sources["registry.py"] = """
            import itertools

            from det import Registered

            EXPECTED_CONFIGURATIONS = 14
            EXPECTED_DETECTORS = 1

            GRID_A = (0.2, 0.4)
            GRID_B = (1, 2, 3)


            def default_detectors(interval):
                detectors = [Registered(0)]
                detectors += [
                    Registered(a * b)
                    for a, b in itertools.product(GRID_A, GRID_B)
                ]
                detectors += [Registered(w) for w in (5, 6, 7)]
                detectors.extend([Registered(8), Registered(9)])
                detectors.append(Registered(10))
                detectors.append(Registered(11))
                return detectors
        """
        result = lint(tmp_path, sources)
        assert "registry-contract" not in rules_hit(result)

    def test_unresolvable_grid_is_warning(self, tmp_path):
        sources = self._sources()
        sources["registry.py"] = """
            from det import Registered

            EXPECTED_CONFIGURATIONS = 3


            def _windows():
                return [1, 2, 3]


            def default_detectors(interval):
                detectors = [Registered(w) for w in _windows()]
                return detectors
        """
        result = lint(tmp_path, sources)
        flagged = [f for f in result.findings
                   if f.rule == "registry-contract"]
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.WARNING
        assert flagged[0].data["check"] == "grid-unresolvable"


# ---------------------------------------------------------------------------
# api-hygiene
# ---------------------------------------------------------------------------
class TestApiHygiene:
    def test_bare_and_broad_except_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f():
                try:
                    return 1
                except:
                    return None


            def g():
                try:
                    return 1
                except Exception:
                    return None
        """})
        flagged = [f for f in result.findings
                   if f.data.get("check") == "broad-except"]
        assert len(flagged) == 2

    def test_reraising_handler_allowed(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f():
                try:
                    return 1
                except Exception as exc:
                    raise RuntimeError("wrapped") from exc
        """})
        assert "api-hygiene" not in rules_hit(result)

    def test_specific_except_allowed(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f():
                try:
                    return 1
                except ValueError:
                    return None
        """})
        assert "api-hygiene" not in rules_hit(result)

    def test_mutable_defaults_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f(items=[], mapping={}, *, names=set()):
                return items, mapping, names


            def g(items=None, n=3, name="x"):
                return items
        """})
        flagged = [f for f in result.findings
                   if f.data.get("check") == "mutable-default"]
        assert len(flagged) == 3

    def test_all_undefined_name_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            __all__ = ["present", "missing"]


            def present():
                return 1
        """})
        flagged = [f for f in result.findings
                   if f.data.get("check") == "all-undefined"]
        assert [f.data["name"] for f in flagged] == ["missing"]

    def test_public_def_missing_from_all_is_warning(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            __all__ = ["listed"]


            def listed():
                return 1


            def unlisted():
                return 2


            def _private():
                return 3
        """})
        flagged = [f for f in result.findings
                   if f.data.get("check") == "all-missing"]
        assert [f.data["name"] for f in flagged] == ["unlisted"]
        assert flagged[0].severity is Severity.WARNING

    def test_module_without_all_not_checked(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def anything():
                return 1
        """})
        assert "api-hygiene" not in rules_hit(result)


# ---------------------------------------------------------------------------
# worker-reachability
# ---------------------------------------------------------------------------
#: A process-pool entry point dispatching into detector methods, so the
#: call graph makes ``severities`` (and whatever it calls) reachable.
WORKER_ENTRY = """

    def _process_worker_run(task, series):
        return task.severities(series)
"""


class TestWorkerReachability:
    def test_global_statement_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            _CALLS = 0

            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    global _CALLS
                    _CALLS += 1
                    return np.zeros(len(series))
        """, WORKER_ENTRY)})
        flagged = [f for f in result.findings
                   if f.rule == "worker-reachability"]
        assert len(flagged) == 1
        assert flagged[0].severity is Severity.ERROR
        assert flagged[0].data["kind"] == "global"
        assert "_CALLS" in flagged[0].message
        assert "_process_worker_run" in flagged[0].data["chain"]

    def test_module_container_mutation_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            CACHE = {}

            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    CACHE[series.name] = len(series)
                    return np.zeros(len(series))
        """, WORKER_ENTRY)})
        flagged = [f for f in result.findings
                   if f.rule == "worker-reachability"]
        assert [f.data["kind"] for f in flagged] == ["module-write"]
        assert "'CACHE'" in flagged[0].message

    def test_mutating_method_on_module_list_flagged(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            _SEEN = []

            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    _SEEN.append(series.name)
                    return np.zeros(len(series))
        """, WORKER_ENTRY)})
        flagged = [f for f in result.findings
                   if f.rule == "worker-reachability"]
        assert [f.data["kind"] for f in flagged] == ["module-mutation"]
        assert "_SEEN.append" in flagged[0].message

    def test_class_attribute_write_flagged(self, tmp_path):
        # Only the reachable method fires; the classmethod nobody calls
        # from the worker path stays quiet (that's the point of walking
        # the call graph instead of scanning every method).
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Bad(Detector):
                kind = "bad"
                runs = 0

                def severities(self, series):
                    cls = type(self)
                    cls.runs = cls.runs + 1
                    return np.zeros(len(series))

                @classmethod
                def reset(cls):
                    cls.runs = 0
        """, WORKER_ENTRY)})
        flagged = [f for f in result.findings
                   if f.rule == "worker-reachability"]
        assert len(flagged) == 1
        assert flagged[0].data["kind"] == "class-write"
        assert "Bad.severities" in flagged[0].message

    def test_transitive_helper_flagged_with_chain(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            _HITS = []


            def _record(name):
                _HITS.append(name)


            class Bad(Detector):
                kind = "bad"

                def severities(self, series):
                    _record(series.name)
                    return np.zeros(len(series))
        """, WORKER_ENTRY)})
        flagged = [f for f in result.findings
                   if f.rule == "worker-reachability"]
        assert len(flagged) == 1
        chain = flagged[0].data["chain"]
        assert "_process_worker_run" in chain
        assert "_record" in chain

    def test_unreachable_mutator_stays_quiet(self, tmp_path):
        # Same mutation, but no worker entry point anywhere: nothing is
        # reachable, so nothing fires.
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            CACHE = {}

            class Offline(Detector):
                kind = "offline"

                def severities(self, series):
                    CACHE[series.name] = len(series)
                    return np.zeros(len(series))
        """)})
        assert "worker-reachability" not in rules_hit(result)

    def test_local_shadowing_stays_quiet(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            CACHE = {}

            class Fine(Detector):
                kind = "fine"

                def severities(self, series):
                    CACHE = {}
                    CACHE[series.name] = len(series)
                    return np.zeros(len(series))
        """, WORKER_ENTRY)})
        assert "worker-reachability" not in rules_hit(result)

    def test_self_state_and_module_reads_stay_quiet(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            WINDOWS = (10, 20, 40)

            class Fine(Detector):
                kind = "fine"

                def __init__(self, window):
                    self.window = window
                    self._buffer = []

                def severities(self, series):
                    self._buffer.append(len(series))
                    self.window = min(self.window, WINDOWS[-1])
                    out = list(WINDOWS)
                    out.append(self.window)
                    return np.zeros(len(series))
        """, WORKER_ENTRY)})
        assert "worker-reachability" not in rules_hit(result)

    def test_custom_entry_points_config(self, tmp_path):
        config = LintConfig(worker_entry_points=["run_in_worker"])
        result = lint(tmp_path, {"mod.py": """
            STATE = {}


            def mutate():
                STATE["k"] = 1


            def run_in_worker():
                mutate()
        """}, config=config)
        flagged = [f for f in result.findings
                   if f.rule == "worker-reachability"]
        assert len(flagged) == 1
        assert "run_in_worker" in flagged[0].data["chain"]


# ---------------------------------------------------------------------------
# checkpoint-symmetry
# ---------------------------------------------------------------------------
class TestCheckpointSymmetry:
    def test_dropped_key_flagged(self, tmp_path):
        # The seeded asymmetry from the issue: snapshot() stores a key
        # the paired restore never reads back.
        result = lint(tmp_path, {"mod.py": """
            class Stream:
                def __init__(self):
                    self._window = 5
                    self._count = 0

                def snapshot(self):
                    return {"window": self._window, "count": self._count}

                def restore_snapshot(self, state):
                    self._window = state["window"]
        """})
        flagged = [f for f in result.findings
                   if f.rule == "checkpoint-symmetry"]
        assert len(flagged) == 1
        assert flagged[0].data["check"] == "dropped-key"
        assert flagged[0].data["key"] == "count"
        assert "silently drop" in flagged[0].message

    def test_phantom_key_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            class Stream:
                def snapshot(self):
                    return {"window": 5}

                def restore(self, state):
                    self._window = state["window"]
                    self._count = state["count"]
        """})
        flagged = [f for f in result.findings
                   if f.rule == "checkpoint-symmetry"]
        assert [f.data["check"] for f in flagged] == ["phantom-key"]
        assert flagged[0].data["key"] == "count"

    def test_optional_get_read_is_not_phantom(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            class Stream:
                def snapshot(self):
                    return {"window": 5}

                def restore(self, state):
                    self._window = state["window"]
                    self._count = state.get("count", 0)
        """})
        assert "checkpoint-symmetry" not in rules_hit(result)

    def test_json_unsafe_value_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            class Stream:
                def snapshot(self):
                    return {"seen": set(self._seen)}

                def restore(self, state):
                    self._seen = set(state["seen"])
        """})
        flagged = [f for f in result.findings
                   if f.data.get("check") == "json-unsafe"]
        assert len(flagged) == 1
        assert flagged[0].data["key"] == "seen"

    def test_symmetric_pair_stays_quiet(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            class Stream:
                def snapshot(self):
                    state = {"window": self._window}
                    state["count"] = self._count
                    return state

                def restore_snapshot(self, state):
                    self._window = state["window"]
                    self._count = state.pop("count")
        """})
        assert "checkpoint-symmetry" not in rules_hit(result)

    def test_dynamic_restore_skips_coverage_check(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            class Stream:
                def snapshot(self):
                    return {"window": self._window, "count": self._count}

                def restore(self, state):
                    for key, value in state.items():
                        setattr(self, "_" + key, value)
        """})
        assert "checkpoint-symmetry" not in rules_hit(result)


# ---------------------------------------------------------------------------
# obs-taxonomy
# ---------------------------------------------------------------------------
class TestObsTaxonomy:
    def test_label_keys_must_match_across_sites(self, tmp_path):
        result = lint(tmp_path, {
            "a.py": """
                def f(registry):
                    registry.counter("x_total", "help", kpi="a")
            """,
            "b.py": """
                def g(registry):
                    registry.counter("x_total", "help", backend="b")
            """,
        })
        flagged = [f for f in result.findings if f.rule == "obs-taxonomy"]
        assert [f.data["check"] for f in flagged] == ["label-mismatch"]
        assert flagged[0].data["name"] == "x_total"

    def test_kind_must_match_across_sites(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f(registry):
                registry.counter("x_total", "help")
                registry.gauge("x_total", "help")
        """})
        flagged = [f for f in result.findings if f.rule == "obs-taxonomy"]
        assert [f.data["check"] for f in flagged] == ["kind-mismatch"]

    def test_timer_and_histogram_are_one_kind(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            def f(obs):
                obs.histogram("x_seconds", "help")
                obs.timer("x_seconds", "help")
        """})
        assert "obs-taxonomy" not in rules_hit(result)

    def test_undocumented_name_flagged(self, tmp_path):
        doc = tmp_path / "obs.md"
        doc.write_text("| name |\n|---|\n| `known_total` |\n")
        config = LintConfig(obs_doc=str(doc))
        result = lint(tmp_path, {"mod.py": """
            def f(registry):
                registry.counter("known_total", "help")
                registry.counter("rogue_total", "help")
        """}, config=config)
        flagged = [f for f in result.findings if f.rule == "obs-taxonomy"]
        assert [f.data["check"] for f in flagged] == ["undocumented"]
        assert flagged[0].data["name"] == "rogue_total"

    def test_stale_documented_name_flagged(self, tmp_path):
        doc = tmp_path / "obs.md"
        doc.write_text(
            "| name |\n|---|\n| `known_total` |\n| `gone_total` |\n"
        )
        config = LintConfig(obs_doc=str(doc))
        result = lint(tmp_path, {"mod.py": """
            def f(registry):
                registry.counter("known_total", "help")
        """}, config=config)
        flagged = [f for f in result.findings if f.rule == "obs-taxonomy"]
        assert [f.data["check"] for f in flagged] == ["stale"]
        assert flagged[0].data["name"] == "gone_total"
        assert flagged[0].line == 4  # anchored at the doc table row

    def test_multiple_names_in_one_doc_cell(self, tmp_path):
        doc = tmp_path / "obs.md"
        doc.write_text("| name |\n|---|\n| `opened` / `closed` |\n")
        config = LintConfig(obs_doc=str(doc))
        result = lint(tmp_path, {"mod.py": """
            def f(events):
                events.emit("opened")
                events.emit("closed")
        """}, config=config)
        assert "obs-taxonomy" not in rules_hit(result)

    def test_dynamic_fstring_prefix_covers_documented_names(self, tmp_path):
        doc = tmp_path / "obs.md"
        doc.write_text("| name |\n|---|\n| `alert_opened` / `alert_closed` |\n")
        config = LintConfig(obs_doc=str(doc))
        result = lint(tmp_path, {"mod.py": """
            def f(events, kind):
                events.emit(f"alert_{kind}")
        """}, config=config)
        assert "obs-taxonomy" not in rules_hit(result)

    def test_name_via_module_constant_resolved(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            METRIC = "x_total"


            def f(registry):
                registry.counter(METRIC, "help", kpi="a")


            def g(registry):
                registry.counter("x_total", "help")
        """})
        flagged = [f for f in result.findings if f.rule == "obs-taxonomy"]
        assert [f.data["check"] for f in flagged] == ["label-mismatch"]


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------
LOCK_PREAMBLE = """\
import threading

"""


class TestLockDiscipline:
    def test_unguarded_read_of_guarded_attr_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": mod(LOCK_PREAMBLE, """
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def inc(self):
                    with self._lock:
                        self._value += 1

                def value(self):
                    return self._value
        """)})
        flagged = [f for f in result.findings if f.rule == "lock-discipline"]
        assert len(flagged) == 1
        assert flagged[0].data == {
            "cls": "Counter", "attr": "_value", "method": "value",
        }
        assert "reads self._value" in flagged[0].message

    def test_unguarded_write_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": mod(LOCK_PREAMBLE, """
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def read(self):
                    with self._lock:
                        return self._value

                def reset(self):
                    self._value = 0
        """)})
        flagged = [f for f in result.findings if f.rule == "lock-discipline"]
        assert len(flagged) == 1
        assert "writes self._value" in flagged[0].message

    def test_container_mutation_counts_as_write(self, tmp_path):
        result = lint(tmp_path, {"mod.py": mod(LOCK_PREAMBLE, """
            class Buffer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def push(self, item):
                    with self._lock:
                        self._items.append(item)

                def peek(self):
                    return self._items[-1]
        """)})
        flagged = [f for f in result.findings if f.rule == "lock-discipline"]
        assert len(flagged) == 1
        assert flagged[0].data["attr"] == "_items"

    def test_immutable_config_read_stays_quiet(self, tmp_path):
        # _cap is written only in __init__; defensive locking elsewhere
        # must not force every reader to take the lock.
        result = lint(tmp_path, {"mod.py": mod(LOCK_PREAMBLE, """
            class Buffer:
                def __init__(self, cap):
                    self._lock = threading.Lock()
                    self._cap = cap
                    self._items = []

                def push(self, item):
                    with self._lock:
                        if len(self._items) < self._cap:
                            self._items.append(item)

                def capacity(self):
                    return self._cap
        """)})
        assert "lock-discipline" not in rules_hit(result)

    def test_lock_held_helper_stays_quiet(self, tmp_path):
        # _evict touches _items without the lock, but every call site
        # holds it — the fixpoint marks it lock-held.
        result = lint(tmp_path, {"mod.py": mod(LOCK_PREAMBLE, """
            class Buffer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def _evict(self):
                    del self._items[0]

                def push(self, item):
                    with self._lock:
                        self._items.append(item)
                        if len(self._items) > 10:
                            self._evict()

                def pop(self):
                    with self._lock:
                        self._evict()
        """)})
        assert "lock-discipline" not in rules_hit(result)

    def test_helper_also_called_unguarded_is_flagged(self, tmp_path):
        result = lint(tmp_path, {"mod.py": mod(LOCK_PREAMBLE, """
            class Buffer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def _evict(self):
                    del self._items[0]

                def push(self, item):
                    with self._lock:
                        self._items.append(item)
                        self._evict()

                def hurry(self):
                    self._evict()
        """)})
        flagged = [f for f in result.findings if f.rule == "lock-discipline"]
        assert flagged
        assert {f.data["method"] for f in flagged} == {"_evict"}

    def test_class_without_lock_not_checked(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            class Plain:
                def __init__(self):
                    self._value = 0

                def inc(self):
                    self._value += 1
        """})
        assert "lock-discipline" not in rules_hit(result)


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_line_level_suppression(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable=determinism — test fixture
            y = np.random.normal()
        """})
        flagged = [f for f in result.findings if f.rule == "determinism"]
        assert len(flagged) == 1
        assert flagged[0].line == 5
        assert result.summary.suppressed == 1

    def test_def_scope_suppression(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np


            def noisy():  # repro: disable=determinism — test fixture
                a = np.random.normal()
                b = np.random.rand()
                return a + b
        """})
        assert "determinism" not in rules_hit(result)
        assert result.summary.suppressed == 2

    def test_class_scope_suppression_on_registry_rule(self, tmp_path):
        result = lint(tmp_path, {"det.py": mod(DETECTOR_PREAMBLE, """
            class Orphan(Detector):  # repro: disable=registry-contract — test fixture
                kind = "orphan"

                def severities(self, series):
                    return self._validate(series) * 0.0
        """)})
        assert "registry-contract" not in rules_hit(result)

    def test_bare_disable_still_suppresses_other_rules(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable
        """})
        assert "determinism" not in rules_hit(result)

    def test_suppression_only_hits_named_rule(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable=api-hygiene — test fixture
        """})
        assert "determinism" in rules_hit(result)


# ---------------------------------------------------------------------------
# suppression-justification
# ---------------------------------------------------------------------------
class TestSuppressionJustification:
    def test_bare_disable_is_a_finding(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable
        """})
        flagged = [f for f in result.findings
                   if f.rule == "suppression-justification"]
        assert [f.data["check"] for f in flagged] == ["bare"]
        assert flagged[0].line == 4

    def test_unjustified_named_disable_is_a_finding(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable=determinism
        """})
        flagged = [f for f in result.findings
                   if f.rule == "suppression-justification"]
        assert [f.data["check"] for f in flagged] == ["unjustified"]
        assert "determinism" in flagged[0].message

    def test_justified_disable_stays_quiet(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable=determinism — seeding is exercised elsewhere
        """})
        assert "suppression-justification" not in rules_hit(result)

    def test_rule_cannot_suppress_itself(self, tmp_path):
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()  # repro: disable=determinism,suppression-justification
        """})
        flagged = [f for f in result.findings
                   if f.rule == "suppression-justification"]
        assert len(flagged) == 1


# ---------------------------------------------------------------------------
# config behaviour (overrides via LintConfig; TOML parsing in test_lint_cli)
# ---------------------------------------------------------------------------
class TestConfigOverrides:
    def test_disabled_rule_does_not_run(self, tmp_path):
        config = LintConfig(disabled_rules=["determinism"])
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()
        """}, config=config)
        assert result.findings == []
        assert "determinism" not in result.rules

    def test_severity_override_downgrades_to_warning(self, tmp_path):
        config = LintConfig(
            severity_overrides={"determinism": Severity.WARNING}
        )
        result = lint(tmp_path, {"mod.py": """
            import numpy as np

            x = np.random.normal()
        """}, config=config)
        assert result.summary.errors == 0
        assert result.summary.warnings == 1
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 1

    def test_exclude_patterns_skip_files(self, tmp_path):
        config = LintConfig(exclude=["*/skipme/*"])
        result = lint(tmp_path, {
            "skipme/mod.py": "import numpy as np\nx = np.random.normal()\n",
            "keep.py": "import numpy as np\ny = np.random.normal()\n",
        }, config=config)
        assert len(result.findings) == 1
        assert "keep.py" in result.findings[0].file

    def test_parse_error_reported_not_raised(self, tmp_path):
        result = lint(tmp_path, {"broken.py": """
            def f(:
                pass
        """})
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert result.summary.errors == 1
