"""Hand-computed severity checks for the simple detector families."""

import numpy as np
import pytest

from repro.detectors import (
    Diff,
    DetectorError,
    EWMA,
    MAOfDiff,
    SimpleMA,
    SimpleThreshold,
    WeightedMA,
    rolling_mean,
    rolling_std,
)
from repro.timeseries import TimeSeries


def ts(values, interval=60):
    return TimeSeries(values=np.asarray(values, dtype=float), interval=interval)


class TestRollingHelpers:
    def test_rolling_mean_excludes_current(self):
        out = rolling_mean(np.array([1.0, 2.0, 3.0, 4.0]), 2)
        assert np.isnan(out[:2]).all()
        assert out[2] == pytest.approx(1.5)  # mean(1, 2)
        assert out[3] == pytest.approx(2.5)  # mean(2, 3)

    def test_rolling_std_matches_numpy(self):
        values = np.arange(10, dtype=float) ** 1.5
        out = rolling_std(values, 4)
        for t in range(4, 10):
            assert out[t] == pytest.approx(values[t - 4: t].std())

    def test_rejects_bad_window(self):
        with pytest.raises(DetectorError):
            rolling_mean(np.zeros(5), 0)
        with pytest.raises(DetectorError):
            rolling_std(np.zeros(5), 1)


class TestSimpleThreshold:
    def test_severity_is_value(self):
        detector = SimpleThreshold()
        np.testing.assert_array_equal(
            detector.severities(ts([1.0, 5.0, 2.0])), [1.0, 5.0, 2.0]
        )

    def test_no_warmup(self):
        assert SimpleThreshold().warmup() == 0

    def test_feature_name(self):
        assert SimpleThreshold().feature_name == "simple threshold"


class TestDiff:
    def test_last_slot(self):
        detector = Diff("last-slot", 1)
        out = detector.severities(ts([10.0, 13.0, 9.0]))
        assert np.isnan(out[0])
        assert out[1] == pytest.approx(3.0)
        assert out[2] == pytest.approx(4.0)

    def test_longer_lag(self):
        detector = Diff("last-day", 3)
        out = detector.severities(ts([1.0, 2.0, 3.0, 5.0, 2.0]))
        assert np.isnan(out[:3]).all()
        assert out[3] == pytest.approx(4.0)
        assert out[4] == pytest.approx(0.0)

    def test_rejects_unknown_lag_name(self):
        with pytest.raises(DetectorError, match="lag_name"):
            Diff("yesterday", 1)

    def test_rejects_nonpositive_lag(self):
        with pytest.raises(DetectorError):
            Diff("last-slot", 0)

    def test_feature_name_includes_lag(self):
        assert Diff("last-week", 7).feature_name == "diff(lag=last-week)"


class TestSimpleMA:
    def test_severity_is_abs_residual_from_window_mean(self):
        detector = SimpleMA(window=3)
        out = detector.severities(ts([1.0, 2.0, 3.0, 10.0, 2.0]))
        assert np.isnan(out[:3]).all()
        assert out[3] == pytest.approx(8.0)   # |10 - mean(1,2,3)|
        assert out[4] == pytest.approx(3.0)   # |2 - mean(2,3,10)|

    def test_constant_series_zero_severity(self):
        out = SimpleMA(window=5).severities(ts([7.0] * 10))
        assert np.nanmax(out) == 0.0


class TestWeightedMA:
    def test_recent_points_weigh_more(self):
        # Window (1, 2, 3): weights 1, 2, 3 -> forecast (1+4+9)/6 = 7/3.
        detector = WeightedMA(window=3)
        out = detector.severities(ts([1.0, 2.0, 3.0, 0.0]))
        assert out[3] == pytest.approx(7.0 / 3.0)

    def test_reacts_faster_than_simple_ma_after_shift(self):
        values = [10.0] * 20 + [20.0] * 20
        simple = SimpleMA(window=10).severities(ts(values))
        weighted = WeightedMA(window=10).severities(ts(values))
        # Several points after the shift, the weighted forecast has
        # caught up more, so its residual is smaller.
        assert weighted[25] < simple[25]


class TestMAOfDiff:
    def test_mean_of_recent_abs_diffs(self):
        detector = MAOfDiff(window=2)
        out = detector.severities(ts([1.0, 3.0, 2.0, 2.0]))
        assert np.isnan(out[:2]).all()
        assert out[2] == pytest.approx((2.0 + 1.0) / 2)
        assert out[3] == pytest.approx((1.0 + 0.0) / 2)

    def test_sustained_jitter_keeps_severity_high(self):
        jitter = [100.0, 200.0] * 20
        out = MAOfDiff(window=4).severities(ts(jitter))
        assert np.nanmin(out[10:]) == pytest.approx(100.0)


class TestEWMA:
    def test_alpha_one_equals_last_slot_diff(self):
        values = [5.0, 8.0, 2.0, 2.0]
        ewma = EWMA(alpha=1.0).severities(ts(values))
        diff = Diff("last-slot", 1).severities(ts(values))
        np.testing.assert_allclose(ewma[1:], diff[1:])

    def test_hand_computed_recursion(self):
        # pred1 = v0 = 10; pred2 = .5*20 + .5*10 = 15
        out = EWMA(alpha=0.5).severities(ts([10.0, 20.0, 10.0]))
        assert out[1] == pytest.approx(10.0)
        assert out[2] == pytest.approx(5.0)

    def test_alpha_bounds(self):
        with pytest.raises(DetectorError):
            EWMA(alpha=0.0)
        with pytest.raises(DetectorError):
            EWMA(alpha=1.5)

    def test_small_alpha_remembers_history(self):
        values = [10.0] * 50 + [20.0] * 5
        fast = EWMA(alpha=0.9).severities(ts(values))
        slow = EWMA(alpha=0.1).severities(ts(values))
        # After a few shifted points the fast EWMA has adapted; the slow
        # one still flags them.
        assert slow[54] > fast[54]


class TestStreamsMatchBatch:
    @pytest.mark.parametrize(
        "detector",
        [
            SimpleThreshold(),
            Diff("last-slot", 1),
            Diff("last-day", 5),
            SimpleMA(4),
            WeightedMA(4),
            MAOfDiff(3),
            EWMA(0.3),
        ],
        ids=lambda d: d.feature_name,
    )
    def test_stream_equals_batch(self, detector, rng):
        values = rng.normal(100.0, 10.0, size=60)
        series = ts(values)
        batch = detector.severities(series)
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)
