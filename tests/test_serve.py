"""repro.serve: protocol framing, shard supervision, the HTTP plane.

The expensive part is bootstrapping per-KPI services, so supervisor
tests reuse the bootstrapped template from ``test_fleet`` (one bank
extraction per module, cloned per KPI through the public checkpoint
path); child processes inherit the clone closures across the fork.

The crash drills here pin the ISSUE's durability contract end-to-end:
``kill -9`` a shard mid-ingest, the supervisor re-forks it from its
last atomic checkpoint, and with checkpoint cadence 1 every shard's
alert stream stays bit-identical to an undisturbed twin fleet.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import time
import http.client
from pathlib import Path

import pytest

from repro.fleet import FleetManager
from repro.fleet.status import (
    STATUS_DOCUMENT_VERSION,
    FleetStatus,
    merge_statuses,
    status_document,
)
from repro.loadgen import ReplayClient, ReplayConfig, ScenarioSpec
from repro.obs import ObservabilityProvider, set_provider
from repro.obs.slo import evaluate_slo, load_snapshot_series, parse_slo_spec
from repro.serve import (
    MAX_MESSAGE_BYTES,
    ConnectionClosed,
    ProtocolError,
    ReproServer,
    ShardError,
    ShardSupervisor,
    atomic_checkpoint,
    find_checkpoint,
    recv_message,
    send_message,
)
from repro.serve import cli as serve_cli
from repro.serve.shard import LIVE_DIR, OLD_DIR, ShardSpec, load_or_build

from test_fleet import (  # noqa: F401 — fleet_kpi/template are fixtures
    build_fleet,
    clone_service,
    fleet_kpi,
    service_factory,
    template,
)


@pytest.fixture(autouse=True)
def _fresh_provider():
    previous = set_provider(ObservabilityProvider())
    yield
    set_provider(previous)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestProtocol:
    def test_round_trip(self, pair):
        a, b = pair
        message = {"op": "ping", "values": [1, 2.5, "é"], "nested": {"x": None}}
        send_message(a, message)
        assert recv_message(b) == message

    def test_frames_stay_ordered(self, pair):
        a, b = pair
        for index in range(16):
            send_message(a, {"n": index})
        assert [recv_message(b)["n"] for _ in range(16)] == list(range(16))

    def test_peer_close_is_connection_closed(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_message(b)

    def test_send_to_dead_peer_is_connection_closed(self, pair):
        a, b = pair
        b.close()
        with pytest.raises(ConnectionClosed):
            # AF_UNIX raises EPIPE promptly; allow a couple of sends
            # for the buffered first write.
            for _ in range(4):
                send_message(a, {"op": "ping"})

    def test_oversize_frame_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_message(b)

    def test_non_object_frame_rejected(self, pair):
        a, b = pair
        payload = json.dumps([1, 2, 3]).encode("utf-8")
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(ProtocolError):
            recv_message(b)

    def test_truncated_frame_is_connection_closed(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 64) + b"{")
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_message(b)


# ----------------------------------------------------------------------
# Checkpoint rotation
# ----------------------------------------------------------------------
class TestCheckpointRotation:
    def test_atomic_swap_and_mid_swap_fallback(self, template, tmp_path):
        fleet = build_fleet(template, ["kpi-000"], n_shards=1)
        root = tmp_path / "ckpt"
        live = atomic_checkpoint(fleet, root)
        assert live == root / LIVE_DIR
        assert find_checkpoint(root) == live
        # A second checkpoint rotates without leaving tmp/old litter.
        assert atomic_checkpoint(fleet, root) == live
        assert not (root / OLD_DIR).exists()
        # Simulate a kill between the swap's two renames: live is gone
        # but old still holds the previous complete generation.
        os.rename(live, root / OLD_DIR)
        assert find_checkpoint(root) == root / OLD_DIR
        restored = FleetManager.restore(
            find_checkpoint(root), service_factory=service_factory(template)
        )
        assert restored.kpi_ids == ["kpi-000"]

    def test_find_checkpoint_empty(self, tmp_path):
        assert find_checkpoint(tmp_path) is None

    def test_load_or_build_prefers_checkpoint_over_builder(
        self, template, tmp_path, fleet_kpi
    ):
        series, _, split = fleet_kpi
        root = tmp_path / "shard-0"
        spec = ShardSpec(
            index=0,
            checkpoint_dir=str(root),
            build_fleet=lambda: build_fleet(template, ["kpi-000"], n_shards=1),
            service_factory=service_factory(template),
        )
        first = load_or_build(spec)  # builds, writes the initial checkpoint
        assert find_checkpoint(root) is not None
        baseline = first.status().kpis[0].points_ingested
        # Mutate in memory only — the next load must ignore the builder
        # *and* this un-checkpointed progress.
        first.offer("kpi-000", float(series.values[split]))
        first.drain_all()
        second = load_or_build(spec)
        assert second.status().kpis[0].points_ingested == baseline


# ----------------------------------------------------------------------
# Shard supervision
# ----------------------------------------------------------------------
KPI_IDS = [f"kpi-{i:03d}" for i in range(6)]


def make_supervisor(template, workdir, kpi_ids=KPI_IDS, **kwargs):
    kwargs.setdefault("n_shards", 2)
    kwargs.setdefault("checkpoint_every_batches", 1)
    return ShardSupervisor(
        kpi_ids,
        lambda index, ids: build_fleet(template, ids, n_shards=1),
        workdir=str(workdir),
        service_factory=service_factory(template),
        **kwargs,
    )


def stream_batches(supervisor, values, disturb_at=None, disturb=None):
    """Offer each value to every KPI (one batch per shard per value),
    collecting alert-event streams per KPI. ``disturb`` runs before the
    batch at index ``disturb_at``."""
    events = {}
    for index, value in enumerate(values):
        if disturb_at is not None and index == disturb_at:
            disturb(supervisor)
        for shard, ids in supervisor.assignment.items():
            if not ids:
                continue
            reply = supervisor.offer_batch(
                shard, [(kpi_id, float(value)) for kpi_id in ids]
            )
            assert reply["accepted"] == len(ids)
            assert reply["unknown"] == []
            for event in reply["events"]:
                events.setdefault(event["kpi"], []).append(
                    (
                        event["kind"],
                        event["begin_index"],
                        event["end_index"],
                        event["peak_score"],
                        event.get("diagnosis"),
                    )
                )
    return events


def kpi_counters(supervisor):
    status, _ = supervisor.status()
    return {
        kpi.kpi_id: (kpi.points_ingested, kpi.alerts_opened, kpi.state)
        for kpi in status.kpis
    }


def sigkill_shard(index):
    def disturb(supervisor):
        pid = supervisor.shard_table()[index]["pid"]
        os.kill(pid, signal.SIGKILL)
        deadline = time.time() + 10
        while time.time() < deadline:
            if not supervisor.shard_table()[index]["alive"]:
                return
            time.sleep(0.05)
        raise AssertionError(f"shard {index} survived SIGKILL")

    return disturb


class TestShardSupervisor:
    def test_start_assignment_and_ping(self, template, tmp_path):
        with make_supervisor(template, tmp_path) as supervisor:
            assigned = [
                kpi
                for ids in supervisor.assignment.values()
                for kpi in ids
            ]
            assert sorted(assigned) == KPI_IDS
            table = supervisor.shard_table()
            assert [row["shard"] for row in table] == [0, 1]
            assert all(row["alive"] for row in table)
            assert all(row["restarts"] == 0 for row in table)
            for index in range(supervisor.n_shards):
                reply = supervisor.request(index, "ping")
                assert reply["pid"] == table[index]["pid"]
                assert sorted(reply["kpis"]) == sorted(
                    supervisor.assignment[index]
                )

    def test_both_shards_populated(self, template, tmp_path):
        # The drills below kill one shard and compare the other; the
        # ring must give each of the two processes real work.
        supervisor = make_supervisor(template, tmp_path)
        assert all(supervisor.assignment[i] for i in range(2))

    def test_status_retags_process_shard(self, template, tmp_path, fleet_kpi):
        series, _, split = fleet_kpi
        with make_supervisor(template, tmp_path) as supervisor:
            stream_batches(supervisor, series.values[split : split + 4])
            status, table = supervisor.status()
            assert status.n_kpis == len(KPI_IDS)
            for kpi in status.kpis:
                assert kpi.shard == supervisor.shard_for(kpi.kpi_id)
                assert kpi.points_ingested == 4
            assert len(table) == 2

    def test_metrics_rollup_tags_shard(self, template, tmp_path, fleet_kpi):
        series, _, split = fleet_kpi
        with make_supervisor(template, tmp_path) as supervisor:
            stream_batches(supervisor, series.values[split : split + 2])
            snapshot = supervisor.metrics()
            names = {metric["name"] for metric in snapshot["metrics"]}
            assert "repro_fleet_ingest_seconds" in names
            assert "repro_fleet_dropped_points_total" in names
            for metric in snapshot["metrics"]:
                for sample in metric["samples"]:
                    assert sample["labels"].get("shard") in {"0", "1"}

    def test_bad_requests_raise_shard_error(self, template, tmp_path):
        with make_supervisor(template, tmp_path) as supervisor:
            with pytest.raises(ShardError, match="unknown op"):
                supervisor.request(0, "launch_missiles")
            with pytest.raises(ShardError):
                supervisor.request(0, "submit_labels", kpi="nope", windows=[])
            # A failed request must not wedge the shard.
            assert supervisor.request(0, "ping")["ok"]

    def test_kill9_recovery_is_bit_identical(
        self, template, tmp_path, fleet_kpi
    ):
        """The tentpole drill: SIGKILL one shard mid-stream. The
        supervisor re-forks it from its checkpoint and — at cadence 1,
        where every acknowledged batch is durable — both the killed and
        the surviving shard end bit-identical to an undisturbed twin."""
        series, _, split = fleet_kpi
        # Offsets 100–160 of the live third straddle several injected
        # anomalies (alerts open around offsets 112–135), so the drill
        # compares *non-empty* alert streams across the kill.
        values = series.values[split + 100 : split + 160]
        victim = 0

        undisturbed = make_supervisor(template, tmp_path / "a")
        with undisturbed:
            base_events = stream_batches(undisturbed, values)
            base_counters = kpi_counters(undisturbed)

        disturbed = make_supervisor(template, tmp_path / "b")
        with disturbed:
            drill_events = stream_batches(
                disturbed, values, disturb_at=20, disturb=sigkill_shard(victim)
            )
            drill_counters = kpi_counters(disturbed)
            table = disturbed.shard_table()

        assert table[victim]["restarts"] == 1
        assert drill_counters == base_counters
        assert drill_events == base_events
        assert any(base_events.values()), (
            "drill window produced no alerts anywhere; the bit-identity "
            "assertion would be vacuous"
        )

    def test_graceful_restart_has_zero_divergence(
        self, template, tmp_path, fleet_kpi
    ):
        series, _, split = fleet_kpi
        values = series.values[split + 100 : split + 140]
        victim = 1

        undisturbed = make_supervisor(template, tmp_path / "a")
        with undisturbed:
            base_events = stream_batches(undisturbed, values)
            base_counters = kpi_counters(undisturbed)

        disturbed = make_supervisor(template, tmp_path / "b")
        with disturbed:
            old_pid = disturbed.shard_table()[victim]["pid"]

            def disturb(supervisor):
                assert supervisor.restart_shard(victim) != old_pid

            drill_events = stream_batches(
                disturbed, values, disturb_at=20, disturb=disturb
            )
            drill_counters = kpi_counters(disturbed)
            assert disturbed.shard_table()[victim]["restarts"] == 1

        assert drill_counters == base_counters
        assert drill_events == base_events
        assert any(base_events.values())

    def test_restart_emits_observability(self, template, tmp_path):
        provider = ObservabilityProvider()
        previous = set_provider(provider)
        try:
            with make_supervisor(template, tmp_path) as supervisor:
                supervisor.restart_shard(0)
                snapshot = provider.snapshot()
        finally:
            set_provider(previous)
        restarts = [
            sample
            for metric in snapshot["metrics"]
            if metric["name"] == "repro_serve_shard_restarts_total"
            for sample in metric["samples"]
        ]
        assert restarts and restarts[0]["labels"] == {
            "shard": "0",
            "reason": "graceful",
        }


# ----------------------------------------------------------------------
# Diagnosis over the networked path
# ----------------------------------------------------------------------
class TestNetworkedDiagnosis:
    def test_kind_sequence_matches_in_process_twin_across_kill9(
        self, template, tmp_path, fleet_kpi
    ):
        """With a diagnoser in every service checkpoint, alert events
        crossing the shard protocol carry the same diagnosis sequence
        an in-process twin produces — and a SIGKILL mid-stream does not
        change a single kind, because the fitted diagnoser rides the
        shard checkpoints through the re-fork."""
        import copy

        from repro.diagnosis import fit_diagnoser

        diagnoser = fit_diagnoser(
            seed=0, n_estimators=8, weeks=1.0, repeats=1
        )
        snapshot = copy.deepcopy(template["snapshot"])
        snapshot["diagnoser"] = diagnoser.to_dict()
        diagnosing = {**template, "snapshot": snapshot}

        series, _, split = fleet_kpi
        # Same live window as the kill drill: it straddles injected
        # anomalies, so closed (diagnosed) alerts are guaranteed.
        values = series.values[split + 100 : split + 160]
        kpi_ids = KPI_IDS[:3]

        supervisor = make_supervisor(diagnosing, tmp_path, kpi_ids=kpi_ids)
        with supervisor:
            networked = stream_batches(
                supervisor, values, disturb_at=20, disturb=sigkill_shard(0)
            )
            assert supervisor.shard_table()[0]["restarts"] == 1

        twins = {}
        for kpi_id in kpi_ids:
            service = clone_service(diagnosing, kpi_id)
            assert service.diagnoser is not None
            collected = []
            for value in values:
                collected.extend(service.ingest(float(value)))
            twins[kpi_id] = [
                (e.kind, e.begin_index, e.end_index, e.peak_score,
                 e.diagnosis)
                for e in collected
            ]

        for kpi_id in kpi_ids:
            assert networked.get(kpi_id, []) == twins[kpi_id]
        closed_kinds = [
            event[4]
            for sequence in twins.values()
            for event in sequence
            if event[0] == "closed"
        ]
        assert closed_kinds, "drill window closed no alerts"
        assert None not in closed_kinds
        assert set(closed_kinds) <= {
            "spike", "dip", "ramp", "jitter", "level_shift"
        }


# ----------------------------------------------------------------------
# Status serializers (shared by repro-fleet --json and GET /status)
# ----------------------------------------------------------------------
class TestStatusSerializers:
    def test_from_dict_round_trips(self, template, fleet_kpi):
        series, _, split = fleet_kpi
        fleet = build_fleet(template, ["kpi-000", "kpi-001"], n_shards=1)
        fleet.offer("kpi-000", float(series.values[split]))
        fleet.drain_all()
        status = fleet.status()
        rebuilt = FleetStatus.from_dict(status.as_dict())
        assert rebuilt.as_dict() == status.as_dict()

    def test_merge_statuses_concatenates(self, template):
        first = build_fleet(template, ["kpi-000"], n_shards=1).status()
        second = build_fleet(template, ["kpi-001"], n_shards=1).status()
        merged = merge_statuses([first, second])
        assert merged.n_kpis == 2
        assert {kpi.kpi_id for kpi in merged.kpis} == {"kpi-000", "kpi-001"}

    def test_status_document_envelope(self, template):
        status = build_fleet(template, ["kpi-000"], n_shards=1).status()
        document = status_document(status, source="serve", shards=[{"shard": 0}])
        assert document["version"] == STATUS_DOCUMENT_VERSION
        assert document["source"] == "serve"
        assert document["shards"] == [{"shard": 0}]
        json.dumps(document)  # must be JSON-serializable as-is


# ----------------------------------------------------------------------
# HTTP ingest plane
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(template, tmp_path_factory):
    previous = set_provider(ObservabilityProvider())
    supervisor = make_supervisor(
        template, tmp_path_factory.mktemp("serve-http")
    )
    try:
        with ReproServer(supervisor) as running:
            yield running
    finally:
        set_provider(previous)


def http_request(server, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=60
    )
    try:
        data = None
        if body is not None:
            data = body if isinstance(body, bytes) else json.dumps(body).encode()
        connection.request(method, path, body=data, headers=headers or {})
        response = connection.getresponse()
        raw = response.read()
    finally:
        connection.close()
    try:
        payload = json.loads(raw) if raw else None
    except json.JSONDecodeError:
        payload = raw.decode("utf-8", "replace")
    return response.status, dict(response.getheaders()), payload


class TestHttpPlane:
    def test_healthz(self, server):
        status, _, payload = http_request(server, "GET", "/healthz")
        assert status == 200
        assert payload["ok"] is True

    def test_ingest_single_point(self, server):
        status, _, payload = http_request(
            server, "POST", "/ingest", {"kpi": "kpi-000", "value": 101.5}
        )
        assert status == 200
        assert payload["accepted"] == 1
        assert payload["rejected"] == 0

    def test_ingest_unknown_kpi_404(self, server):
        status, _, _ = http_request(
            server, "POST", "/ingest", {"kpi": "nope", "value": 1.0}
        )
        assert status == 404

    def test_ingest_batch_ndjson(self, server):
        lines = [
            json.dumps({"kpi": kpi_id, "value": 100.0 + index})
            for index, kpi_id in enumerate(KPI_IDS)
        ]
        lines.append(json.dumps({"kpi": "ghost", "value": 1.0}))
        status, _, payload = http_request(
            server, "POST", "/ingest/batch", "\n".join(lines).encode()
        )
        assert status == 200
        assert payload["accepted"] == len(KPI_IDS)
        assert payload["unknown"] == ["ghost"]

    def test_batch_rejects_malformed_lines(self, server):
        status, _, payload = http_request(
            server, "POST", "/ingest/batch", b'{"kpi": "kpi-000"\nnot json'
        )
        assert status == 400
        assert "line 1" in payload["error"]

    def test_status_document(self, server):
        status, _, payload = http_request(server, "GET", "/status")
        assert status == 200
        assert payload["version"] == STATUS_DOCUMENT_VERSION
        assert payload["source"] == "serve"
        assert len(payload["shards"]) == 2
        assert payload["fleet"]["n_kpis"] == len(KPI_IDS)
        shard_by_kpi = {
            kpi["kpi_id"]: kpi["shard"] for kpi in payload["fleet"]["kpis"]
        }
        for kpi_id in KPI_IDS:
            assert shard_by_kpi[kpi_id] == server.supervisor.shard_for(kpi_id)

    def test_metrics_json_and_prometheus(self, server):
        # Serve-plane counters live in this test's (fresh) provider and
        # are recorded before each response is written, so one settled
        # request guarantees they exist for the snapshot below.
        http_request(server, "GET", "/healthz")
        status, _, payload = http_request(server, "GET", "/metrics")
        assert status == 200
        names = {metric["name"] for metric in payload["metrics"]}
        assert "repro_serve_requests_total" in names
        assert "repro_fleet_ingest_seconds" in names
        status, headers, text = http_request(
            server, "GET", "/metrics?format=prom"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# HELP repro_serve_request_seconds" in text

    def test_labels_and_targeted_retrain(self, server):
        status, _, payload = http_request(
            server, "POST", "/labels",
            {"kpi": "kpi-001", "windows": [[10, 14]]},
        )
        assert status == 200
        assert payload["submitted"] == 1
        status, _, payload = http_request(
            server, "POST", "/retrain", {"kpis": ["kpi-001"]}
        )
        assert status == 200
        assert set(payload["results"]) == {"kpi-001"}

    def test_labels_unknown_kpi_404(self, server):
        status, _, _ = http_request(
            server, "POST", "/labels", {"kpi": "ghost", "windows": [[0, 1]]}
        )
        assert status == 404

    def test_checkpoint_endpoint(self, server):
        status, _, payload = http_request(server, "POST", "/checkpoint", {})
        assert status == 200
        assert len(payload["checkpoints"]) == 2
        for path in payload["checkpoints"]:
            assert Path(path).name == LIVE_DIR

    def test_graceful_shard_restart_endpoint(self, server):
        before = server.supervisor.shard_table()[1]["pid"]
        status, _, payload = http_request(
            server, "POST", "/shards/1/restart", {}
        )
        assert status == 200
        assert payload["pid"] != before
        status, _, payload = http_request(server, "GET", "/status")
        assert payload["shards"][1]["restarts"] >= 1
        # The restarted shard still serves its KPIs.
        kpi_id = server.supervisor.assignment[1][0]
        status, _, payload = http_request(
            server, "POST", "/ingest", {"kpi": kpi_id, "value": 100.0}
        )
        assert status == 200 and payload["accepted"] == 1

    def test_unroutable_paths_and_methods(self, server):
        assert http_request(server, "GET", "/nope")[0] == 404
        assert http_request(server, "GET", "/ingest")[0] == 405
        assert http_request(server, "POST", "/ingest", b"not json")[0] == 400


class _SaturatedSupervisor:
    """A supervisor double whose shards reject everything — drives the
    plane's 429 mapping without needing a real overloaded fleet."""

    n_shards = 1

    def start(self):
        pass

    def stop(self, **kwargs):
        pass

    def shard_for(self, kpi_id):
        return 0

    def offer_batch(self, index, points):
        return {
            "accepted": 0,
            "rejected": len(points),
            "unknown": [],
            "events": [],
        }

    def shard_table(self):
        return [{"shard": 0, "pid": 0, "alive": True, "restarts": 0, "kpis": 1}]


class TestBackpressure:
    def test_saturated_ingest_maps_to_429(self):
        with ReproServer(_SaturatedSupervisor()) as server:
            status, headers, payload = http_request(
                server, "POST", "/ingest", {"kpi": "kpi-000", "value": 1.0}
            )
            assert status == 429
            assert headers["Retry-After"] == "1"
            assert payload["rejected"] == 1
            status, _, _ = http_request(
                server,
                "POST",
                "/ingest/batch",
                json.dumps({"kpi": "kpi-000", "value": 1.0}).encode(),
            )
            assert status == 429


# ----------------------------------------------------------------------
# repro-serve CLI composition
# ----------------------------------------------------------------------
class TestServeCli:
    def test_fleet_restore_mode(self, template, tmp_path):
        fleet = build_fleet(template, KPI_IDS[:4], n_shards=1)
        fleet_dir = tmp_path / "fleet"
        fleet.save(fleet_dir)
        args = serve_cli.build_parser().parse_args(
            [
                "--fleet", str(fleet_dir),
                "--interval", "3600",
                "--shards", "2",
                "--workdir", str(tmp_path / "serve"),
            ]
        )
        supervisor = serve_cli.build_supervisor(args)
        with supervisor:
            status, _ = supervisor.status()
            assert status.n_kpis == 4
            assert {kpi.kpi_id for kpi in status.kpis} == set(KPI_IDS[:4])

    def test_missing_fleet_dir_is_value_error(self, tmp_path):
        args = serve_cli.build_parser().parse_args(
            ["--fleet", str(tmp_path / "ghost"), "--workdir", str(tmp_path)]
        )
        with pytest.raises(ValueError, match="fleet.json"):
            serve_cli.build_supervisor(args)


# ----------------------------------------------------------------------
# Networked replay end-to-end (mini soak + fault drill + SLO wiring)
# ----------------------------------------------------------------------
SCENARIO = ScenarioSpec(
    n_kpis=3, weeks=0.1, bootstrap_weeks=1.0, profiles=("SRT",)
)


def scenario_server(workdir):
    args = serve_cli.build_parser().parse_args(
        [
            "--workdir", str(workdir),
            "--shards", "2",
            "--kpis", str(SCENARIO.n_kpis),
            "--weeks", str(SCENARIO.weeks),
            "--bootstrap-weeks", str(SCENARIO.bootstrap_weeks),
            "--profiles", *SCENARIO.profiles,
            "--trees", "5",
            "--checkpoint-every-batches", "1",
        ]
    )
    return ReproServer(serve_cli.build_supervisor(args))


def run_replay(workdir, **overrides):
    with scenario_server(workdir) as server:
        config = ReplayConfig(
            target=server.url,
            scenario=SCENARIO,
            checkpoint_every=3600.0,
            retrain_every=8 * 3600.0,
            **overrides,
        )
        return ReplayClient(config).run()


@pytest.fixture(scope="module")
def replay_docs(tmp_path_factory):
    """One undisturbed networked replay and one with a kill -9 drill,
    over identical deterministic scenarios (module-scoped: each run
    bootstraps real sub-fleets in forked shards)."""
    previous = set_provider(ObservabilityProvider())
    try:
        baseline = run_replay(tmp_path_factory.mktemp("replay-base"))
        set_provider(ObservabilityProvider())  # fresh client counters
        disturbed = run_replay(
            tmp_path_factory.mktemp("replay-kill"),
            kill_shard=0,
            kill_after_batches=5,
        )
    finally:
        set_provider(previous)
    return baseline, disturbed


class TestNetworkedReplay:
    def test_full_span_streams_and_recovers(self, replay_docs):
        baseline, disturbed = replay_docs
        for result in (baseline, disturbed):
            assert result.completed
            assert result.points_offered > 0
            assert result.accepted == result.points_offered
            assert result.rejected == 0
        assert baseline.recovered is None  # no drill requested
        assert disturbed.recovered is True
        fault = disturbed.document["fault"]
        assert fault["type"] == "kill" and fault["shard"] == 0
        assert any(
            row["restarts"] >= 1 for row in disturbed.document["shards"]
        )

    def test_document_feeds_the_slo_engine(self, replay_docs, tmp_path):
        baseline, _ = replay_docs
        path = tmp_path / "replay.json"
        path.write_text(json.dumps(baseline.document))
        series = load_snapshot_series(path)
        assert len(series) == len(baseline.document["checkpoints"])
        spec = parse_slo_spec(
            {
                "name": "ingest-p99",
                "objective": "p99_latency",
                "metric": "repro_fleet_ingest_seconds",
                "target": 60.0,  # absurdly lax: asserts wiring, not speed
                "windows": ["1h", "5h"],
            }
        )
        evaluated = evaluate_slo(spec, series)
        assert not evaluated.violated
        assert all(w.burn_rate is not None for w in evaluated.windows)

    def test_checkpoints_merge_client_and_server_metrics(self, replay_docs):
        baseline, _ = replay_docs
        last = baseline.document["checkpoints"][-1]["snapshot"]
        names = {metric["name"] for metric in last["metrics"]}
        # Client-side offered counter and server-side fleet rollup land
        # in the same SLO-gateable snapshot.
        assert "repro_loadgen_points_offered_total" in names
        assert "repro_fleet_ingest_seconds" in names
        assert "repro_fleet_dropped_points_total" in names

    def test_soak_alerts_diff_accepts_surviving_shards(
        self, replay_docs, tmp_path
    ):
        baseline, disturbed = replay_docs
        base_path = tmp_path / "base.json"
        dist_path = tmp_path / "dist.json"
        base_path.write_text(json.dumps(baseline.document))
        dist_path.write_text(json.dumps(disturbed.document))
        tool = Path(__file__).resolve().parents[1] / "tools" / "soak_alerts_diff.py"
        run = subprocess.run(
            [sys.executable, str(tool), str(base_path), str(dist_path)],
            capture_output=True,
            text=True,
        )
        assert run.returncode == 0, run.stdout + run.stderr
        assert "no forbidden divergence" in run.stdout

    def test_soak_alerts_diff_flags_surviving_divergence(
        self, replay_docs, tmp_path
    ):
        baseline, disturbed = replay_docs
        doctored = json.loads(json.dumps(disturbed.document))
        drilled = doctored["fault"]["shard"]
        surviving = [
            kpi["kpi_id"]
            for kpi in doctored["fleet"]["kpis"]
            if kpi["shard"] != drilled
        ]
        assert surviving, "scenario left a shard empty; widen n_kpis"
        doctored["alerts"][surviving[0]] = [
            {"kind": "alert_open", "begin_index": 1, "end_index": 2,
             "peak_score": 9.9}
        ]
        base_path = tmp_path / "base.json"
        dist_path = tmp_path / "dist.json"
        base_path.write_text(json.dumps(baseline.document))
        dist_path.write_text(json.dumps(doctored))
        tool = Path(__file__).resolve().parents[1] / "tools" / "soak_alerts_diff.py"
        run = subprocess.run(
            [sys.executable, str(tool), str(base_path), str(dist_path)],
            capture_output=True,
            text=True,
        )
        assert run.returncode == 1
        assert "SURVIVING-shard divergence" in run.stderr

    def test_soak_alerts_diff_rejects_mismatched_scenarios(
        self, replay_docs, tmp_path
    ):
        baseline, disturbed = replay_docs
        doctored = json.loads(json.dumps(disturbed.document))
        doctored["config"]["n_kpis"] = 99
        base_path = tmp_path / "base.json"
        dist_path = tmp_path / "dist.json"
        base_path.write_text(json.dumps(baseline.document))
        dist_path.write_text(json.dumps(doctored))
        tool = Path(__file__).resolve().parents[1] / "tools" / "soak_alerts_diff.py"
        run = subprocess.run(
            [sys.executable, str(tool), str(base_path), str(dist_path)],
            capture_output=True,
            text=True,
        )
        assert run.returncode == 2
