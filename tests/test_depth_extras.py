"""Additional depth tests: ARIMA internals, NB likelihoods, service
multi-round retraining, merge properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors.arima import (
    _fit_long_ar,
    _forward_fill,
    _hannan_rissanen,
    _interpolate_nan,
)
from repro.timeseries import AnomalyWindow, merge_windows, windows_to_points


class TestARIMAInternals:
    def test_forward_fill_basic(self):
        values = np.array([np.nan, 1.0, np.nan, np.nan, 4.0])
        filled = _forward_fill(values)
        assert filled.tolist() == [1.0, 1.0, 1.0, 1.0, 4.0]

    def test_forward_fill_is_causal_after_first_observation(self):
        values = np.array([1.0, np.nan, 3.0])
        filled = _forward_fill(values)
        # The NaN takes the PAST value, never the future one.
        assert filled[1] == 1.0

    def test_forward_fill_all_nan_rejected(self):
        from repro.detectors import DetectorError

        with pytest.raises(DetectorError):
            _forward_fill(np.array([np.nan, np.nan]))

    def test_interpolate_nan_uses_both_sides(self):
        values = np.array([1.0, np.nan, 3.0])
        assert _interpolate_nan(values)[1] == pytest.approx(2.0)

    def test_long_ar_innovations_whiten_ar_process(self, rng):
        n = 3000
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = 0.9 * x[t - 1] + rng.normal()
        innovations = _fit_long_ar(x, order=10)
        # Innovations are near-white: their lag-1 autocorrelation is
        # tiny compared to the raw series' 0.9.
        tail = innovations[10:]
        lag1 = np.corrcoef(tail[:-1], tail[1:])[0, 1]
        assert abs(lag1) < 0.1

    def test_hannan_rissanen_recovers_ar_coefficient(self, rng):
        n = 5000
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = 0.7 * x[t - 1] + rng.normal()
        innovations = _fit_long_ar(x, order=15)
        fit = _hannan_rissanen(x, innovations, p=1, q=0)
        assert fit is not None
        _, ar, _, _ = fit
        assert ar[0] == pytest.approx(0.7, abs=0.05)

    def test_hannan_rissanen_degenerate_returns_none(self):
        x = np.zeros(20)
        innovations = np.zeros(20)
        assert _hannan_rissanen(x, innovations, p=3, q=3) is None

    def test_order_estimation_deterministic(self, rng):
        from repro.detectors import ARIMA

        x = rng.normal(100, 5, 400)
        detector = ARIMA(fit_points=300)
        a = detector.estimate_order(x[:300])
        b = detector.estimate_order(x[:300])
        assert a == b


class TestNaiveBayesLikelihood:
    def test_joint_log_likelihood_matches_manual(self, rng):
        from repro.ml import GaussianNB

        X = np.vstack([rng.normal(0, 1, (50, 2)), rng.normal(5, 2, (50, 2))])
        y = np.array([0] * 50 + [1] * 50)
        model = GaussianNB().fit(X, y)
        probe = np.array([[1.0, 2.0]])
        joint = model._joint_log_likelihood(probe)[0]
        for cls in (0, 1):
            manual = np.log(model.class_prior_[cls])
            for j in range(2):
                var = model.var_[cls, j]
                mean = model.theta_[cls, j]
                manual += -0.5 * (
                    np.log(2 * np.pi * var) + (probe[0, j] - mean) ** 2 / var
                )
            assert joint[cls] == pytest.approx(manual)


class TestLinearModelErrors:
    def test_decision_function_requires_fit(self, rng):
        from repro.ml import LinearSVM
        from repro.ml.base import NotFittedError

        with pytest.raises(NotFittedError):
            LinearSVM().decision_function(rng.normal(size=(5, 2)))


class TestMergeWindowsProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=60),
                st.integers(min_value=1, max_value=20),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_preserves_coverage_and_is_minimal(self, raw):
        windows = [AnomalyWindow(b, b + n) for b, n in raw]
        merged = merge_windows(windows)
        # Same point coverage.
        np.testing.assert_array_equal(
            windows_to_points(merged, 100), windows_to_points(windows, 100)
        )
        # Strictly separated (no touching/overlapping survivors).
        for first, second in zip(merged, merged[1:]):
            assert first.end < second.begin

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=60),
                st.integers(min_value=1, max_value=20),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_is_idempotent(self, raw):
        windows = [AnomalyWindow(b, b + n) for b, n in raw]
        merged = merge_windows(windows)
        assert merge_windows(merged) == merged


class TestServiceMultiRound:
    def test_two_retraining_rounds(self):
        """The weekly loop twice in a row: ingest, label, retrain,
        ingest, label, retrain."""
        from repro.core import MonitoringService
        from repro.data import SeasonalProfile, generate_kpi, inject_anomalies
        from test_opprentice import fast_forest, small_bank

        generated = generate_kpi(
            weeks=6, interval=3600,
            profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                    noise_scale=0.02),
            seed=71,
        )
        result = inject_anomalies(
            generated.series, target_fraction=0.06, seed=72, mean_window=4.0
        )
        series = result.series
        ppw = series.points_per_week
        service = MonitoringService(
            configs=small_bank(ppw),
            classifier_factory=fast_forest,
        )
        service.bootstrap(series.slice(0, 4 * ppw))
        for week in (4, 5):
            begin, end = week * ppw, (week + 1) * ppw
            for value in series.values[begin:end]:
                service.ingest(value)
            service.submit_labels(
                [w for w in result.windows if begin <= w.begin < end]
            )
            service.retrain()
        assert service.stats.retrain_rounds == 2
        assert service.history_length == 6 * ppw
        # The accumulated labels match the injected truth windows that
        # fall in the live region.
        truth = series.labels[4 * ppw:]
        internal = service._history.labels[4 * ppw:]
        overlap = (truth.astype(bool) & internal.astype(bool)).sum()
        assert overlap >= 0.9 * internal.sum()
