"""Confusion/precision/recall, PR curves and AUCPR tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    Confusion,
    aucpr,
    aucpr_trapezoid,
    confusion,
    f_score,
    max_precision_at_recall,
    pr_curve,
    precision_recall,
)


class TestConfusion:
    def test_counts(self):
        result = confusion(
            np.array([1, 1, 0, 0, 1]), np.array([1, 0, 1, 0, 1])
        )
        assert result.true_positives == 2
        assert result.false_positives == 1
        assert result.false_negatives == 1
        assert result.true_negatives == 1

    def test_precision_recall_values(self):
        result = Confusion(3, 1, 2, 10)
        assert result.precision == pytest.approx(0.75)
        assert result.recall == pytest.approx(0.6)
        assert result.false_discovery_rate == pytest.approx(0.25)

    def test_empty_detection_conventions(self):
        result = Confusion(0, 0, 5, 10)
        assert result.precision == 1.0  # nothing detected: no false alarms
        assert result.recall == 0.0
        nothing = Confusion(0, 0, 0, 10)
        assert nothing.recall == 1.0  # nothing to detect

    def test_nan_predictions_excluded(self):
        predictions = np.array([1.0, np.nan, 0.0, 1.0])
        labels = np.array([1, 1, 0, 0])
        recall, precision = precision_recall(predictions, labels)
        assert recall == pytest.approx(1.0)
        assert precision == pytest.approx(0.5)

    def test_negative_placeholder_excluded(self):
        predictions = np.array([-1, 1, 0], dtype=float)
        labels = np.array([1, 1, 0])
        recall, precision = precision_recall(predictions, labels)
        assert recall == 1.0 and precision == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion(np.zeros(3), np.zeros(4))


class TestFScore:
    def test_known_value(self):
        assert f_score(0.5, 1.0) == pytest.approx(2 / 3)

    def test_zero_when_both_zero(self):
        assert f_score(0.0, 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            f_score(-0.1, 0.5)

    @given(
        st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1)
    )
    def test_bounded_by_min_and_max(self, r, p):
        value = f_score(r, p)
        assert 0.0 <= value <= 1.0
        assert value <= max(r, p) + 1e-12
        # F1 is at most twice the smaller of the two.
        assert value <= 2 * min(r, p) + 1e-12


class TestPRCurve:
    def test_perfect_scores(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        curve = pr_curve(scores, labels)
        assert curve.satisfies(1.0, 1.0)
        assert aucpr(scores, labels) == pytest.approx(1.0)

    def test_hand_computed_curve(self):
        # Descending scores with labels 1,0,1,0.
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        labels = np.array([1, 0, 1, 0])
        curve = pr_curve(scores, labels)
        np.testing.assert_allclose(curve.recalls, [0.5, 0.5, 1.0, 1.0])
        np.testing.assert_allclose(
            curve.precisions, [1.0, 0.5, 2 / 3, 0.5]
        )
        # AP = 0.5 * 1.0 + 0.5 * (2/3)
        assert aucpr(scores, labels) == pytest.approx(0.5 + 1 / 3)

    def test_recalls_non_decreasing(self, rng):
        scores = rng.random(200)
        labels = (rng.random(200) < 0.2).astype(int)
        curve = pr_curve(scores, labels)
        assert (np.diff(curve.recalls) >= 0).all()

    def test_ties_merged(self):
        scores = np.array([0.5, 0.5, 0.5, 0.1])
        labels = np.array([1, 0, 1, 0])
        curve = pr_curve(scores, labels)
        assert len(curve) == 2

    def test_nan_scores_excluded(self):
        scores = np.array([0.9, np.nan, 0.1])
        labels = np.array([1, 1, 0])
        curve = pr_curve(scores, labels)
        assert curve.recalls[-1] == 1.0  # only one positive counted

    def test_requires_positives(self):
        with pytest.raises(ValueError):
            pr_curve(np.array([0.5, 0.4]), np.array([0, 0]))

    def test_random_scores_aucpr_near_base_rate(self, rng):
        n, rate = 20_000, 0.1
        labels = (rng.random(n) < rate).astype(int)
        scores = rng.random(n)
        assert aucpr(scores, labels) == pytest.approx(rate, abs=0.03)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_aucpr_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 100))
        labels = rng.integers(0, 2, n)
        if labels.sum() == 0:
            labels[0] = 1
        scores = rng.random(n)
        value = aucpr(scores, labels)
        assert 0.0 <= value <= 1.0

    def test_trapezoid_at_least_ap_on_typical_data(self, rng):
        labels = (rng.random(500) < 0.1).astype(int)
        labels[0] = 1
        scores = rng.random(500) + labels * 0.3
        assert aucpr_trapezoid(scores, labels) >= aucpr(scores, labels) - 0.02


class TestMaxPrecisionAtRecall:
    def test_table4_statistic(self):
        scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5])
        labels = np.array([1, 0, 1, 1, 0])
        # recall >= 2/3 requires taking at least first four -> best
        # precision among feasible points.
        value = max_precision_at_recall(scores, labels, 0.66)
        assert value == pytest.approx(0.75)

    def test_unreachable_recall_returns_zero(self):
        scores = np.array([np.nan, 0.5])
        labels = np.array([1, 0])
        with pytest.raises(ValueError):
            # all positives have NaN scores: no curve at all
            max_precision_at_recall(scores, labels, 0.5)

    def test_recall_zero_gives_max_precision_anywhere(self):
        scores = np.array([0.9, 0.1])
        labels = np.array([1, 0])
        assert max_precision_at_recall(scores, labels, 0.0) == 1.0

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            max_precision_at_recall(np.array([0.5]), np.array([1]), 1.5)
