"""Labeling session and console tool tests (§4.2, Fig 4)."""

import io

import numpy as np
import pytest

from repro.labeling import LabelSession, LabelingTool, render_chart, run_commands
from repro.labeling.tool import ViewState
from repro.timeseries import AnomalyWindow, TimeSeries


def series(n=100):
    values = 50.0 + 10.0 * np.sin(np.arange(n) / 5.0)
    return TimeSeries(values=values, interval=3600, name="tool-kpi")


class TestLabelSession:
    def test_label_and_to_labels(self):
        session = LabelSession(series())
        session.label(10, 15)
        labels = session.to_labels()
        assert labels[10:15].tolist() == [1] * 5
        assert labels.sum() == 5

    def test_overlapping_labels_merge(self):
        session = LabelSession(series())
        session.label(10, 15)
        session.label(13, 20)
        assert session.windows == [AnomalyWindow(10, 20)]

    def test_partial_cancel(self):
        session = LabelSession(series())
        session.label(10, 20)
        session.cancel(13, 16)
        assert session.windows == [AnomalyWindow(10, 13), AnomalyWindow(16, 20)]

    def test_undo_restores_previous_state(self):
        session = LabelSession(series())
        session.label(10, 15)
        session.label(30, 35)
        assert session.undo()
        assert session.windows == [AnomalyWindow(10, 15)]
        assert session.undo()
        assert session.windows == []
        assert not session.undo()

    def test_clear(self):
        session = LabelSession(series())
        session.label(10, 15)
        session.clear()
        assert session.windows == []
        assert session.undo()
        assert session.windows == [AnomalyWindow(10, 15)]

    def test_bounds_validated(self):
        session = LabelSession(series())
        with pytest.raises(ValueError):
            session.label(90, 200)
        with pytest.raises(ValueError):
            session.label(-1, 5)

    def test_n_label_actions_counts_drags(self):
        session = LabelSession(series())
        session.label(1, 3)
        session.label(10, 12)
        session.cancel(1, 2)
        assert session.n_label_actions() == 2

    def test_labeled_series(self):
        session = LabelSession(series())
        session.label(5, 8)
        labelled = session.labeled_series()
        assert labelled.is_labeled
        assert labelled.labels[5:8].tolist() == [1, 1, 1]

    def test_save_load_roundtrip(self, tmp_path):
        session = LabelSession(series())
        session.label(10, 15)
        session.label(40, 44)
        path = tmp_path / "labels.json"
        session.save(path)
        restored = LabelSession(series())
        restored.load(path)
        assert restored.windows == session.windows

    def test_load_validates_length(self, tmp_path):
        session = LabelSession(series(100))
        session.label(1, 2)
        path = tmp_path / "labels.json"
        session.save(path)
        other = LabelSession(series(50))
        with pytest.raises(ValueError, match="points"):
            other.load(path)


class TestRenderChart:
    def test_render_includes_markers(self):
        ts = series(200)
        labels = np.zeros(200, dtype=np.int8)
        labels[50:60] = 1
        chart = render_chart(ts, labels, ViewState(offset=0, width=200))
        assert "#" in chart
        assert "tool-kpi" in chart

    def test_render_empty_label_set(self):
        ts = series(50)
        chart = render_chart(
            ts, np.zeros(50, dtype=np.int8), ViewState(width=50)
        )
        assert "*" in chart

    def test_single_anomalous_bin_visible(self):
        """§4.2: "we do not smooth the curve. Thus, even if one time bin
        is anomalous, it is visible" — max-downsampling guarantees it."""
        values = np.full(400, 10.0)
        values[123] = 100.0
        ts = TimeSeries(values=values, interval=3600)
        labels = np.zeros(400, dtype=np.int8)
        labels[123] = 1
        chart = render_chart(ts, labels, ViewState(width=400))
        # The spike occupies the top row of the chart.
        top_row = chart.splitlines()[0]
        assert "@" in top_row


class TestLabelingTool:
    def test_scripted_labeling(self):
        session = run_commands(
            series(), ["l 10 15", "l 30 35", "c 12 14", "u"]
        )
        # Undo reverted the cancel.
        assert session.windows == [AnomalyWindow(10, 15), AnomalyWindow(30, 35)]

    def test_navigation_commands(self):
        tool = LabelingTool(series(1000))
        tool.execute("+")
        width_zoomed = tool.view.width
        tool.execute("-")
        assert tool.view.width > width_zoomed
        tool.execute("g 500")
        assert tool.view.offset == 500

    def test_quit_stops_run(self):
        tool = LabelingTool(series(), output=io.StringIO())
        stream = io.StringIO("l 1 5\nq\nl 20 25\n")
        session = tool.run(stream)
        assert session.windows == [AnomalyWindow(1, 5)]

    def test_unknown_command_reported(self):
        out = io.StringIO()
        tool = LabelingTool(series(), output=out)
        assert tool.execute("xyzzy")
        assert "unknown command" in out.getvalue()

    def test_save_command(self, tmp_path):
        path = tmp_path / "out.json"
        run_commands(series(), ["l 5 9", f"w {path}"])
        restored = LabelSession(series())
        restored.load(path)
        assert restored.windows == [AnomalyWindow(5, 9)]


class TestToolFuzz:
    """Random command sequences must never crash the tool or corrupt
    the session's invariants."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    commands = st.one_of(
        st.builds(lambda a, b: f"l {a} {a + b}",
                  st.integers(0, 90), st.integers(1, 9)),
        st.builds(lambda a, b: f"c {a} {a + b}",
                  st.integers(0, 90), st.integers(1, 9)),
        st.just("u"),
        st.just("n"),
        st.just("p"),
        st.just("+"),
        st.just("-"),
        st.builds(lambda a: f"g {a}", st.integers(0, 99)),
        st.just("bogus"),
        st.just(""),
    )

    @given(sequence=st.lists(commands, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_random_sessions_stay_consistent(self, sequence):
        from repro.labeling import LabelingTool
        from repro.timeseries import points_to_windows

        tool = LabelingTool(series(100))
        for command in sequence:
            assert tool.execute(command) is True
        session = tool.session
        labels = session.to_labels()
        # Invariants: labels are 0/1 over the right length; the window
        # list and the point labels agree; the view stays in bounds.
        assert labels.shape == (100,)
        assert set(np.unique(labels)) <= {0, 1}
        recovered = points_to_windows(labels)
        assert recovered == session.windows
        assert 0 <= tool.view.offset <= 100
        assert 20 <= tool.view.width <= 100

    @given(sequence=st.lists(commands, min_size=1, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_undo_everything_returns_to_empty(self, sequence):
        from repro.labeling import LabelingTool

        tool = LabelingTool(series(100))
        for command in sequence:
            tool.execute(command)
        while tool.session.undo():
            pass
        assert tool.session.windows == []
