"""Calibration curve and Brier score tests."""

import numpy as np
import pytest

from repro.evaluation import brier_score, calibration_curve


class TestCalibrationCurve:
    def test_perfectly_calibrated_scores(self, rng):
        scores = rng.random(50_000)
        labels = (rng.random(50_000) < scores).astype(int)
        curve = calibration_curve(scores, labels, n_bins=10)
        np.testing.assert_allclose(
            curve.observed_rate, curve.mean_predicted, atol=0.02
        )
        assert curve.expected_calibration_error() < 0.02

    def test_overconfident_scores_have_large_ece(self, rng):
        labels = (rng.random(20_000) < 0.5).astype(int)
        scores = np.where(labels == 1, 0.99, 0.01)
        flip = rng.random(20_000) < 0.3  # 30% of labels disagree
        labels = np.where(flip, 1 - labels, labels)
        curve = calibration_curve(scores, labels)
        assert curve.expected_calibration_error() > 0.2

    def test_counts_sum_to_samples(self, rng):
        scores = rng.random(1000)
        labels = rng.integers(0, 2, 1000)
        curve = calibration_curve(scores, labels)
        assert curve.counts.sum() == 1000

    def test_empty_bins_dropped(self):
        scores = np.array([0.05, 0.06, 0.95, 0.96])
        labels = np.array([0, 0, 1, 1])
        curve = calibration_curve(scores, labels, n_bins=10)
        assert len(curve.bin_centers) == 2

    def test_nan_scores_excluded(self):
        scores = np.array([0.5, np.nan, 0.5, 0.5])
        labels = np.array([1, 1, 0, 0])
        curve = calibration_curve(scores, labels)
        assert curve.counts.sum() == 3

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            calibration_curve(rng.random(5), rng.integers(0, 2, 4))
        with pytest.raises(ValueError):
            calibration_curve(rng.random(5), rng.integers(0, 2, 5), n_bins=1)
        with pytest.raises(ValueError):
            calibration_curve(np.full(5, np.nan), np.ones(5, dtype=int))


class TestBrierScore:
    def test_perfect_predictions(self):
        scores = np.array([1.0, 0.0, 1.0])
        labels = np.array([1, 0, 1])
        assert brier_score(scores, labels) == 0.0

    def test_base_rate_predictor(self, rng):
        labels = (rng.random(100_000) < 0.2).astype(int)
        scores = np.full(100_000, 0.2)
        assert brier_score(scores, labels) == pytest.approx(0.16, abs=0.005)

    def test_worse_than_base_rate_detectable(self, rng):
        labels = (rng.random(10_000) < 0.2).astype(int)
        inverted = 1.0 - labels.astype(float)
        assert brier_score(inverted, labels) == pytest.approx(1.0)

    def test_forest_probabilities_beat_base_rate(self, labeled_kpi):
        """The trained forest's probabilities are informative (smaller
        Brier score than always predicting the anomaly rate)."""
        from repro.core import Opprentice
        from test_opprentice import fast_forest, small_bank

        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series)
        scores = opp.anomaly_scores(series)
        base = np.full(len(series), series.anomaly_fraction())
        assert brier_score(scores, series.labels) < brier_score(
            base, series.labels
        )
