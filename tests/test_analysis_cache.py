"""Content-addressed analysis-cache behaviour.

The engine counts parses and cache hits in ``LintResult.timing``, so
these tests assert the cache contract directly: a warm run re-parses
nothing, an edit invalidates exactly the touched module, and
cross-module findings still refresh when a *dependency* of a cached
module changes (project rules always re-run over the summaries).
"""

import textwrap
from pathlib import Path

from repro.analysis import LintConfig, LintEngine, load_config
from repro.analysis.project.cache import (
    AnalysisCache,
    engine_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

ENTRY = """\
    def _process_worker_run(task):
        return helper(task)
"""

MUTATOR = """\
    STATE = {}


    def helper(task):
        STATE["k"] = task
        return task
"""


def write(tmp_path, name, source):
    (tmp_path / name).write_text(textwrap.dedent(source))


def run(tmp_path, cache_dir):
    engine = LintEngine(LintConfig(), cache_dir=cache_dir)
    return engine.run([str(tmp_path / "pkg")])


class TestWarmRuns:
    def test_warm_run_parses_nothing(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        write(tmp_path, "pkg/a.py", ENTRY)
        write(tmp_path, "pkg/b.py", MUTATOR)
        cache = tmp_path / "cache"

        cold = run(tmp_path, cache)
        assert cold.timing["parsed"] == 2
        assert cold.timing["cached"] == 0

        warm = run(tmp_path, cache)
        assert warm.timing["parsed"] == 0
        assert warm.timing["cached"] == 2
        assert [f.message for f in warm.findings] == [
            f.message for f in cold.findings
        ]

    def test_edit_invalidates_exactly_the_touched_entry(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        write(tmp_path, "pkg/a.py", ENTRY)
        write(tmp_path, "pkg/b.py", MUTATOR)
        cache = tmp_path / "cache"
        run(tmp_path, cache)

        write(tmp_path, "pkg/b.py", MUTATOR + "\n\nEXTRA = 1\n")
        warm = run(tmp_path, cache)
        assert warm.timing["parsed"] == 1
        assert warm.timing["cached"] == 1

    def test_cross_module_findings_refresh_on_dependency_change(
        self, tmp_path
    ):
        # b.py's mutation is only a finding because a.py's worker entry
        # point reaches it; editing *a.py* must clear the finding even
        # though b.py itself is served from cache.
        (tmp_path / "pkg").mkdir()
        write(tmp_path, "pkg/a.py", ENTRY)
        write(tmp_path, "pkg/b.py", MUTATOR)
        cache = tmp_path / "cache"

        cold = run(tmp_path, cache)
        assert [f.rule for f in cold.findings] == ["worker-reachability"]
        assert cold.findings[0].file.endswith("b.py")

        write(tmp_path, "pkg/a.py", """\
            def _process_worker_run(task):
                return task
        """)
        warm = run(tmp_path, cache)
        assert warm.timing["cached"] == 1  # b.py never re-parsed
        assert warm.findings == []

    def test_parse_errors_are_cached_too(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        write(tmp_path, "pkg/broken.py", "def f(:\n")
        cache = tmp_path / "cache"
        cold = run(tmp_path, cache)
        assert [f.rule for f in cold.findings] == ["parse-error"]

        warm = run(tmp_path, cache)
        assert warm.timing["parsed"] == 0
        assert [f.rule for f in warm.findings] == ["parse-error"]


class TestFingerprint:
    def test_rule_set_change_invalidates(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        write(tmp_path, "pkg/a.py", "x = 1\n")
        cache = tmp_path / "cache"
        run(tmp_path, cache)

        engine = LintEngine(
            LintConfig(disabled_rules=["determinism"]), cache_dir=cache
        )
        result = engine.run([str(tmp_path / "pkg")])
        assert result.timing["parsed"] == 1

    def test_fingerprint_orders_rule_ids(self):
        assert engine_fingerprint(1, ["b", "a"]) == engine_fingerprint(
            1, ["a", "b"]
        )
        assert engine_fingerprint(1, ["a"]) != engine_fingerprint(2, ["a"])

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = AnalysisCache(tmp_path, engine_fingerprint(1, ["a"]))
        key = cache.key_for(b"source")
        cache.put(key, {"summary": {}})
        entry = tmp_path / key[:2] / f"{key}.json"
        entry.write_text("{not json")
        fresh = AnalysisCache(tmp_path, engine_fingerprint(1, ["a"]))
        assert fresh.get(key) is None
        assert fresh.misses == 1


class TestFullRepoTiming:
    def test_warm_full_repo_run_is_twice_as_fast(self, tmp_path):
        # The acceptance bar from the issue: a warm-cache run over the
        # whole library takes < 50% of the cold wall time (in practice
        # it skips every parse, so the margin is far larger).
        config = load_config(REPO_ROOT / "pyproject.toml")
        library = str(REPO_ROOT / "src" / "repro")
        cache = tmp_path / "cache"

        cold = LintEngine(config, cache_dir=cache).run([library])
        assert cold.timing["parsed"] > 0

        warm = LintEngine(config, cache_dir=cache).run([library])
        assert warm.timing["parsed"] == 0
        assert warm.timing["cached"] == cold.timing["parsed"]
        assert (
            warm.timing["duration_seconds"]
            < 0.5 * cold.timing["duration_seconds"]
        )
