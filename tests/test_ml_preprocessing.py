"""Imputer, StandardScaler and mutual-information ranking tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import Imputer, StandardScaler, mutual_information, rank_features_by_mi


class TestImputer:
    def test_fills_nan_with_training_median(self):
        train = np.array([[1.0, 10.0], [3.0, np.nan], [5.0, 30.0]])
        imputer = Imputer().fit(train)
        out = imputer.transform(np.array([[np.nan, np.nan]]))
        assert out[0, 0] == pytest.approx(3.0)
        assert out[0, 1] == pytest.approx(20.0)

    def test_fills_inf_too(self):
        train = np.array([[1.0], [2.0], [3.0]])
        imputer = Imputer().fit(train)
        out = imputer.transform(np.array([[np.inf], [-np.inf]]))
        assert (out == 2.0).all()

    def test_all_nan_column_falls_back_to_zero(self):
        train = np.full((5, 1), np.nan)
        imputer = Imputer().fit(train)
        assert imputer.transform(train).tolist() == [[0.0]] * 5

    def test_does_not_mutate_input(self):
        train = np.array([[1.0], [np.nan]])
        imputer = Imputer().fit(train)
        imputer.transform(train)
        assert np.isnan(train[1, 0])

    def test_shape_validation(self):
        imputer = Imputer().fit(np.ones((3, 2)))
        with pytest.raises(ValueError):
            imputer.transform(np.ones((3, 5)))
        with pytest.raises(RuntimeError):
            Imputer().transform(np.ones((2, 2)))

    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_output_always_finite(self, n, d):
        rng = np.random.default_rng(n * 100 + d)
        data = rng.normal(size=(n, d))
        data[rng.random((n, d)) < 0.3] = np.nan
        out = Imputer().fit(data).transform(data)
        assert np.isfinite(out).all()


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(5.0, 3.0, size=(1000, 2))
        out = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_not_divided_by_zero(self):
        data = np.ones((10, 1))
        out = StandardScaler().fit_transform(data)
        assert np.isfinite(out).all()

    def test_transform_uses_training_stats(self, rng):
        train = rng.normal(size=(100, 1))
        scaler = StandardScaler().fit(train)
        shifted = scaler.transform(train + 10.0)
        assert shifted.mean() == pytest.approx(10.0 / train.std(), rel=0.01)


class TestMutualInformation:
    def test_perfectly_informative_feature(self, rng):
        labels = rng.integers(0, 2, 2000)
        feature = labels + rng.normal(0, 0.01, 2000)
        mi = mutual_information(feature, labels)
        # Perfect dependence between binary variables: MI ~ H(Y) <= ln 2.
        assert mi > 0.5

    def test_independent_feature_near_zero(self, rng):
        labels = rng.integers(0, 2, 5000)
        feature = rng.normal(size=5000)
        assert mutual_information(feature, labels) < 0.02

    def test_nan_bin_can_be_informative(self, rng):
        labels = rng.integers(0, 2, 1000)
        feature = np.where(labels == 1, np.nan, 0.0)
        assert mutual_information(feature, labels) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            mutual_information(np.zeros(5), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            mutual_information(np.zeros(0), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            mutual_information(np.zeros(5), np.zeros(5, dtype=int), n_bins=1)

    def test_ranking_puts_informative_first(self, rng):
        labels = rng.integers(0, 2, 3000)
        features = np.column_stack(
            [
                rng.normal(size=3000),                     # junk
                labels + rng.normal(0, 0.1, 3000),         # strong
                labels + rng.normal(0, 1.0, 3000),         # weak
                rng.normal(size=3000),                     # junk
            ]
        )
        order = rank_features_by_mi(features, labels)
        assert order[0] == 1
        assert order[1] == 2

    def test_ranking_is_stable_for_ties(self):
        features = np.zeros((100, 3))
        labels = np.zeros(100, dtype=int)
        labels[:50] = 1
        order = rank_features_by_mi(features, labels)
        assert order.tolist() == [0, 1, 2]


class TestMutualInformationBetween:
    def test_identical_features_high_mi(self, rng):
        feature = rng.normal(size=2000)
        mi = __import__("repro.ml", fromlist=["x"]).mutual_information_between(
            feature, feature
        )
        assert mi > 1.0

    def test_independent_features_near_zero(self, rng):
        from repro.ml import mutual_information_between

        a, b = rng.normal(size=5000), rng.normal(size=5000)
        assert mutual_information_between(a, b) < 0.05

    def test_shape_validation(self):
        from repro.ml import mutual_information_between
        import numpy as np
        import pytest as _pytest

        with _pytest.raises(ValueError):
            mutual_information_between(np.zeros(5), np.zeros(4))


class TestMRMR:
    def _redundant_problem(self, rng, n=3000):
        """Feature 0 informative; 1-3 near-duplicates of 0; 4 weakly
        informative but independent; 5-7 junk."""
        labels = rng.integers(0, 2, n)
        base = labels + rng.normal(0, 0.3, n)
        features = np.column_stack(
            [
                base,
                base + rng.normal(0, 0.01, n),
                base * 2.0 + rng.normal(0, 0.01, n),
                base + rng.normal(0, 0.02, n),
                labels + rng.normal(0, 1.5, n),
                rng.normal(size=n),
                rng.normal(size=n),
                rng.normal(size=n),
            ]
        )
        return features, labels

    def test_avoids_redundant_duplicates(self, rng):
        from repro.ml import mrmr_select, rank_features_by_mi

        features, labels = self._redundant_problem(rng)
        mrmr = mrmr_select(features, labels, k=2)
        # Plain MI ranking picks the duplicates first...
        mi_order = rank_features_by_mi(features, labels)[:2]
        assert set(mi_order) <= {0, 1, 2, 3}
        # ...mRMR's second pick escapes the duplicate cluster.
        assert mrmr[0] in {0, 1, 2, 3}
        assert mrmr[1] == 4

    def test_first_pick_is_max_relevance(self, rng):
        from repro.ml import mrmr_select, rank_features_by_mi

        features, labels = self._redundant_problem(rng)
        assert mrmr_select(features, labels, 1)[0] == (
            rank_features_by_mi(features, labels)[0]
        )

    def test_returns_k_distinct_indices(self, rng):
        from repro.ml import mrmr_select

        features, labels = self._redundant_problem(rng)
        selected = mrmr_select(features, labels, k=6)
        assert len(selected) == 6
        assert len(set(selected.tolist())) == 6

    def test_k_validated(self, rng):
        from repro.ml import mrmr_select

        features, labels = self._redundant_problem(rng, n=200)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            mrmr_select(features, labels, k=0)
        with _pytest.raises(ValueError):
            mrmr_select(features, labels, k=99)
