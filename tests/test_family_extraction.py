"""Fused family extraction: equivalence, streams, and the process pool.

Three code paths produce severities — the fused per-family batch pass
(:func:`repro.detectors.build_family_evaluators`), the per-config
serial path (``Detector.severities``), and the incremental per-point
path (:class:`repro.detectors.StreamBank`). The contract under test:

* fused == per-config serial, *bit for bit*, including NaN masks, over
  the full 133-configuration bank on both clean and dirty (§6) data;
* incremental == batch with identical NaN masks; exact for the
  families whose stream shares the batch kernel (Holt-Winters, SVD),
  documented-ULP-close (<= 1e-9) elsewhere — see docs/performance.md;
* ``rolling_std`` survives large offsets (the catastrophic-cancellation
  fix), agreeing with the strided fallback up to 1e9;
* the ``process`` backend keeps ONE pool across ``run_tasks`` calls,
  re-forks exactly once when a worker dies, and never orphans its
  shared-memory segment — even when a task raises and the result
  generator is abandoned.
"""

import gc
import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.execution import (
    ExtractionTask,
    ProcessBackend,
    build_tasks,
)
from repro.detectors import (
    StreamBank,
    build_family_evaluators,
    configs_for,
    rolling_std,
)
from repro.timeseries import TimeSeries

#: Families whose per-point stream runs the same fused kernel as the
#: batch pass — stream == batch must hold exactly, not just closely.
EXACT_STREAM_FAMILIES = {"holt-winters", "svd"}

#: Everything else may differ by accumulated float64 rounding between
#: the fused batch formulation and the per-point recurrence.
STREAM_ATOL = 1e-9


def dirty(series: TimeSeries) -> TimeSeries:
    """The series with injected NaN runs (a lost point, a short gap,
    and a long outage) — the §6 dirty-data shapes."""
    values = series.values.copy()
    values[200] = np.nan
    values[50:55] = np.nan
    values[400:412] = np.nan
    return TimeSeries(
        values=values,
        interval=series.interval,
        start=series.start,
        name=series.name,
    )


def serial_reference(series: TimeSeries, configs) -> np.ndarray:
    """The per-config ground truth: every detector run on its own."""
    matrix = np.full((len(series), len(configs)), np.nan)
    for config in configs:
        matrix[:, config.index] = config.detector.severities(series)
    return matrix


class TestFusedEquivalence:
    """fused family pass == per-config serial, bit for bit."""

    @pytest.mark.parametrize("make", [lambda s: s, dirty], ids=["clean", "dirty"])
    def test_full_bank_bit_identical(self, hourly_kpi, make):
        series = make(hourly_kpi)
        configs = configs_for(series)
        assert len(configs) == 133
        reference = serial_reference(series, configs)
        for evaluator in build_family_evaluators(configs):
            columns = np.asarray(evaluator.evaluate(series))
            assert columns.shape == (len(series), len(evaluator.configs))
            for j, config in enumerate(evaluator.configs):
                np.testing.assert_array_equal(
                    columns[:, j],
                    reference[:, config.index],
                    err_msg=f"fused != serial for {config.name}",
                )

    def test_families_actually_fuse(self, hourly_kpi):
        """The bank must compile to far fewer tasks than configs —
        otherwise the fusion layer silently degenerated to solo runs."""
        configs = configs_for(hourly_kpi)
        evaluators = build_family_evaluators(configs)
        assert len(evaluators) < len(configs) / 2
        kinds = {e.kind for e in evaluators}
        assert {"window-bank", "holt-winters"} <= kinds

    def test_subset_grouping_covers_exactly_the_subset(self, hourly_kpi):
        """The cache layer compiles tasks for arbitrary subsets."""
        configs = configs_for(hourly_kpi)
        subset = configs[::7]
        tasks = build_tasks(subset)
        indices = sorted(i for task in tasks for i in task.indices)
        assert indices == sorted(c.index for c in subset)


class TestIncrementalEquivalence:
    """StreamBank per-point rows == the fused batch matrix."""

    @pytest.mark.parametrize("make", [lambda s: s, dirty], ids=["clean", "dirty"])
    def test_stream_bank_matches_batch(self, hourly_kpi, make):
        series = make(hourly_kpi)
        configs = configs_for(series)
        reference = serial_reference(series, configs)

        bank = StreamBank(configs)
        rows = np.vstack([bank.extract_point(v) for v in series.values])
        assert rows.shape == reference.shape

        # Identical NaN masks everywhere: warm-up windows and dirty
        # points invalidate exactly the same cells.
        np.testing.assert_array_equal(
            np.isnan(rows), np.isnan(reference), err_msg="NaN masks differ"
        )
        np.testing.assert_allclose(
            rows, reference, rtol=0, atol=STREAM_ATOL, equal_nan=True
        )

        # Shared-kernel families must agree exactly, not just closely.
        for config in configs:
            family = config.detector.family()
            kind = family[0] if family else config.detector.kind
            if kind in EXACT_STREAM_FAMILIES:
                np.testing.assert_array_equal(
                    rows[:, config.index],
                    reference[:, config.index],
                    err_msg=f"stream != batch for shared-kernel {config.name}",
                )

    def test_bank_checkpoints_are_per_config(self, hourly_kpi):
        """A fused bank snapshot decomposes into one dict per config and
        restores into a fresh bank mid-stream."""
        configs = configs_for(hourly_kpi)
        bank = StreamBank(configs)
        half = len(hourly_kpi) // 2
        for value in hourly_kpi.values[:half]:
            bank.extract_point(value)
        states = bank.snapshots()
        assert len(states) == len(configs)
        assert all(isinstance(state, dict) for state in states)

        restored = StreamBank(configs)
        restored.restore(states)
        for value in hourly_kpi.values[half:]:
            np.testing.assert_array_equal(
                restored.extract_point(value), bank.extract_point(value)
            )


class TestRollingStdOffsets:
    """The catastrophic-cancellation fix: the cumsum fast path must
    agree with the strided fallback at offsets where the uncentred
    sum-of-squares formula lost the entire variance."""

    @pytest.mark.parametrize("offset", [0.0, 1e4, 1e6, 1e8, 1e9])
    @pytest.mark.parametrize("window", [5, 24])
    def test_fast_path_matches_strided_fallback(self, rng, offset, window):
        values = offset + rng.normal(0.0, 3.0, size=400)
        fast = rolling_std(values, window)

        # Force the strided fallback by breaking the all-finite check
        # on a copy, then compare the unaffected region.
        dirty_values = values.copy()
        dirty_values[0] = np.nan
        slow = rolling_std(dirty_values, window)
        start = window + 1  # first window untouched by the NaN
        assert np.isfinite(fast[window:]).all()
        np.testing.assert_allclose(
            fast[start:], slow[start:], rtol=1e-6, atol=1e-9
        )
        # The spread is ~3.0; a cancelled variance would collapse the
        # std toward 0 (the pre-fix failure at 1e8+).
        assert fast[window:].mean() > 1.0

    def test_zero_variance_is_exactly_zero(self):
        values = np.full(50, 1e9)
        out = rolling_std(values, 10)
        np.testing.assert_array_equal(out[10:], 0.0)
        assert np.isnan(out[:10]).all()


# ----------------------------------------------------------------------
# Process-backend lifecycle. The helper tasks live at module level so
# the fork-based workers can unpickle them by qualified name.
# ----------------------------------------------------------------------
class _PidTask(ExtractionTask):
    """Returns the executing worker's PID as a constant column."""

    kind = "pid"

    def __init__(self, index: int):
        self.indices = (index,)
        self.names = (f"pid{index}",)

    def run(self, series):
        return np.full((len(series), 1), float(os.getpid()))


class _RaiseTask(ExtractionTask):
    """Raises inside the worker (an ordinary task failure)."""

    kind = "raise"
    indices = (0,)
    names = ("raise",)

    def run(self, series):
        raise ValueError("injected task failure")


class _KillOnceTask(ExtractionTask):
    """Kills its worker process the first time it runs; the sentinel
    file makes the resubmitted attempt succeed."""

    kind = "kill"
    indices = (0,)
    names = ("kill",)

    def __init__(self, sentinel: str):
        self.sentinel = sentinel

    def run(self, series):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os._exit(17)
        return np.zeros((len(series), 1))


def tiny_series() -> TimeSeries:
    return TimeSeries(
        values=np.arange(32, dtype=float), interval=60, name="tiny"
    )


class TestPersistentPool:
    def test_pool_is_reused_across_run_tasks_calls(self):
        """One fork, many extractions: the acceptance criterion that no
        call pays a per-call pool fork."""
        backend = ProcessBackend(workers=2)
        series = tiny_series()
        tasks = [_PidTask(0), _PidTask(1), _PidTask(2)]
        try:
            first = dict(
                (task.indices[0], columns[0, 0])
                for task, columns in backend.run_tasks(tasks, series)
            )
            pool_after_first = backend._resources.pool
            assert pool_after_first is not None
            second = dict(
                (task.indices[0], columns[0, 0])
                for task, columns in backend.run_tasks(tasks, series)
            )
            # Same executor object — and the tasks really ran in the
            # same worker processes, not a silently re-forked pool.
            assert backend._resources.pool is pool_after_first
            # The second call's work lands on workers forked for the
            # first one (scheduling may use fewer, but never new ones).
            assert set(second.values()) <= set(first.values())
            assert os.getpid() not in {int(p) for p in first.values()}
        finally:
            backend.close()

    def test_segment_is_republished_per_series(self):
        """Each call gets a fresh segment; the previous one is gone."""
        backend = ProcessBackend(workers=2)
        try:
            list(backend.run_tasks([_PidTask(0), _PidTask(1)], tiny_series()))
            first_name = backend._resources.shm.name
            other = TimeSeries(
                values=np.arange(16, dtype=float), interval=60, name="other"
            )
            list(backend.run_tasks([_PidTask(0), _PidTask(1)], other))
            assert backend._resources.shm.name != first_name
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=first_name)
        finally:
            backend.close()

    def test_refork_once_after_worker_death(self, tmp_path):
        backend = ProcessBackend(workers=2)
        series = tiny_series()
        sentinel = tmp_path / "killed-once"
        tasks = [_PidTask(0), _KillOnceTask(str(sentinel)), _PidTask(2)]
        try:
            results = list(backend.run_tasks(tasks, series))
            delivered = sorted(
                i for task, _ in results for i in task.indices
            )
            # Every task's result arrives exactly once despite the
            # mid-flight worker death, served by the re-forked pool.
            assert delivered == [0, 0, 2]
            assert sentinel.exists()
        finally:
            backend.close()

    def test_task_exception_propagates_without_orphaning_segment(self):
        """Satellite 2: a worker-raised exception abandons the result
        generator mid-iteration; close() must still unlink the shared
        segment (pre-fix, the generator owned it and leaked)."""
        backend = ProcessBackend(workers=2)
        series = tiny_series()
        generator = backend.run_tasks([_RaiseTask(), _PidTask(1)], series)
        with pytest.raises(ValueError, match="injected task failure"):
            for _ in generator:
                pass
        name = backend._resources.shm.name
        # Owned by the backend, so it survives the dead generator...
        probe = shared_memory.SharedMemory(name=name)
        probe.close()
        del generator
        backend.close()
        # ...and close() unlinks it: nothing left to attach to.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_abandoned_generator_then_gc_releases_segment(self):
        """Dropping every reference (no explicit close) must also free
        the segment, via the weakref finalizer."""
        backend = ProcessBackend(workers=2)
        series = tiny_series()
        generator = backend.run_tasks([_PidTask(0), _PidTask(1)], series)
        next(generator)  # partially consumed, then abandoned
        name = backend._resources.shm.name
        del generator
        del backend
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent_and_backend_recovers(self):
        backend = ProcessBackend(workers=2)
        series = tiny_series()
        try:
            list(backend.run_tasks([_PidTask(0), _PidTask(1)], series))
            backend.close()
            backend.close()
            # Usable again after close: resources are re-acquired.
            results = list(backend.run_tasks([_PidTask(0), _PidTask(1)], series))
            assert len(results) == 2
        finally:
            backend.close()
