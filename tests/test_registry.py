"""The Table 3 detector registry: 14 detectors, 133 configurations."""

import collections

import pytest

from repro.detectors import (
    EXPECTED_CONFIGURATIONS,
    EXPECTED_DETECTORS,
    configs_for,
    default_configs,
    default_detectors,
    registry_table,
)
from repro.timeseries import MINUTE


#: Table 3's per-detector configuration counts.
TABLE3_COUNTS = {
    "simple threshold": 1,
    "diff": 3,
    "simple MA": 5,
    "weighted MA": 5,
    "MA of diff": 5,
    "ewma": 5,
    "tsd": 5,
    "tsd MAD": 5,
    "historical average": 5,
    "historical MAD": 5,
    "holt-winters": 64,
    "svd": 15,
    "wavelet": 9,
    "arima": 1,
}


class TestDefaultBank:
    def test_total_configuration_count(self):
        assert len(default_detectors(60)) == EXPECTED_CONFIGURATIONS == 133

    def test_detector_kind_count(self):
        kinds = {d.kind for d in default_detectors(60)}
        assert len(kinds) == EXPECTED_DETECTORS == 14

    def test_per_detector_counts_match_table3(self):
        counts = collections.Counter(d.kind for d in default_detectors(60))
        assert dict(counts) == TABLE3_COUNTS

    def test_feature_names_unique(self):
        names = [d.feature_name for d in default_detectors(60)]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("interval", [60, 600, 3600])
    def test_bank_builds_for_all_paper_intervals(self, interval):
        detectors = default_detectors(interval)
        assert len(detectors) == 133

    def test_day_week_windows_scale_with_interval(self):
        by_name_1min = {
            d.feature_name: d for d in default_detectors(60)
        }
        by_name_1h = {
            d.feature_name: d for d in default_detectors(3600)
        }
        # Same names either way (windows are expressed in days/weeks)...
        assert set(by_name_1min) == set(by_name_1h)
        # ...but the point lags differ with the grid.
        assert by_name_1min["diff(lag=last-day)"].lag_points == 1440
        assert by_name_1h["diff(lag=last-day)"].lag_points == 24

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="divisor"):
            default_detectors(7 * MINUTE)
        with pytest.raises(ValueError):
            default_detectors(0)


class TestConfigs:
    def test_indices_are_stable_and_dense(self):
        configs = default_configs(600)
        assert [c.index for c in configs] == list(range(133))

    def test_configs_for_series(self, hourly_kpi):
        configs = configs_for(hourly_kpi)
        assert len(configs) == 133

    def test_registry_table_rows(self):
        table = registry_table(default_configs(600))
        assert "total" in table
        assert "133" in table
        assert "holt-winters" in table
