"""Bounded streaming buffers and stream checkpoints.

Three invariant families from the online-loop rework:

1. `_BufferedStream` caps its history at ``stream_memory()`` without
   breaking stream == batch for window-bounded detectors.
2. Every registered configuration keeps its stream buffers flat (the
   per-point memory does not grow with points seen) while still
   matching the batch severities exactly.
3. ``snapshot()`` / ``restore()`` resume a stream (and a whole
   StreamingDetector) bit-identically to a cold replay, including
   through a JSON round trip — the mechanism behind O(new points)
   retraining and restartable deployments.
"""

import json

import numpy as np
import pytest

from repro.core import (
    FeatureExtractor,
    Opprentice,
    StreamingDetector,
    load_checkpoint,
    save_checkpoint,
)
from repro.detectors import (
    ARIMA,
    CUSUM,
    EWMA,
    SHESD,
    TSD,
    Brutlag,
    Detector,
    Diff,
    HistoricalAverage,
    HistoricalMad,
    HoltWinters,
    MAOfDiff,
    STREAM_BUFFER_SLACK,
    SVDDetector,
    SimpleMA,
    SimpleThreshold,
    TSDMad,
    WaveletDetector,
    WeightedMA,
    build_configs,
    configs_for,
    extended_detectors,
    rolling_mean,
)
from repro.detectors.base import _BufferedStream
from repro.timeseries import TimeSeries

from test_opprentice import fast_forest, small_bank


def ts(values, interval=3600):
    return TimeSeries(values=np.asarray(values, dtype=float), interval=interval)


class _WindowedProbe(Detector):
    """A window-bounded detector with no stream override, so it
    exercises the generic `_BufferedStream` fallback."""

    kind = "windowed probe"

    def __init__(self, window: int):
        self.window = window

    def params(self):
        return {"window": self.window}

    def warmup(self):
        return self.window

    def severities(self, series):
        values = self._validate(series)
        return np.abs(values - rolling_mean(values, self.window))


class _UnboundedProbe(_WindowedProbe):
    """Same computation, but declares unbounded memory."""

    kind = "unbounded probe"

    def stream_memory(self):
        return None


class TestBufferedStreamCap:
    def test_cap_is_warmup_plus_slack(self):
        stream = _WindowedProbe(10).stream()
        assert isinstance(stream, _BufferedStream)
        assert stream.max_history == 10 + max(10, STREAM_BUFFER_SLACK)

    def test_cap_floor_allows_one_post_warmup_point(self):
        class _Tight(_WindowedProbe):
            def stream_memory(self):
                return 1  # far below warmup; the floor must win

        stream = _Tight(10).stream()
        assert stream.max_history == 11

    def test_buffer_is_bounded(self, rng):
        detector = _WindowedProbe(10)
        stream = detector.stream()
        for value in rng.normal(100.0, 5.0, size=300):
            stream.update(value)
        assert stream.buffered_points() == stream.max_history

    def test_stream_equals_batch_under_cap(self, rng):
        values = rng.normal(100.0, 5.0, size=300)
        values[rng.choice(300, size=20, replace=False)] = np.nan
        detector = _WindowedProbe(10)
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_unbounded_memory_keeps_full_history(self, rng):
        stream = _UnboundedProbe(10).stream()
        assert stream.max_history is None
        for value in rng.normal(100.0, 5.0, size=150):
            stream.update(value)
        assert stream.buffered_points() == 150


# ----------------------------------------------------------------------
# Every registered configuration: stream == batch with flat buffers.
# ----------------------------------------------------------------------
#: 6-hour sampling keeps day/week-sized warm-ups small (ppd = 4) so the
#: whole Table 3 bank plus the extended detectors fits a short series.
BANK_INTERVAL = 21600
_BANK_N = 480


def _bank_values() -> np.ndarray:
    rng = np.random.default_rng(2024)
    t = np.arange(_BANK_N)
    values = (
        100.0
        + 10.0 * np.sin(2 * np.pi * t / 4)  # daily season at ppd = 4
        + rng.normal(0.0, 2.0, size=_BANK_N)
    )
    values[[120, 200, 360, 361, 455]] = np.nan
    return values


BANK_VALUES = _bank_values()
BANK_CONFIGS = configs_for(ts(BANK_VALUES[:8], interval=BANK_INTERVAL)) + (
    build_configs(extended_detectors(BANK_INTERVAL))
)


@pytest.mark.parametrize(
    "config", BANK_CONFIGS, ids=lambda c: c.name
)
class TestRegisteredBankBounded:
    def test_stream_matches_batch_with_flat_buffer(self, config):
        detector = config.detector
        batch = detector.severities(ts(BANK_VALUES, interval=BANK_INTERVAL))
        stream = detector.stream()
        online = np.empty(_BANK_N)
        buffered = np.empty(_BANK_N, dtype=np.int64)
        for i, value in enumerate(BANK_VALUES):
            online[i] = stream.update(value)
            buffered[i] = stream.buffered_points()
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

        # Memory stays flat once warm: the peak buffer occupancy over a
        # late window never exceeds the peak over an earlier one (both
        # windows span full seasonal periods, so periodic scratch
        # buffers cancel out), and the absolute level is a small
        # multiple of the warm-up window.
        warm = min(detector.warmup() + 1, 360)
        early_peak = int(buffered[warm:420].max())
        late_peak = int(buffered[420:].max())
        assert late_peak <= early_peak
        bound = max(3 * detector.warmup() + 2 * STREAM_BUFFER_SLACK, 64)
        assert early_peak <= bound


# ----------------------------------------------------------------------
# Checkpoint-resume equals cold replay, bit for bit.
# ----------------------------------------------------------------------
#: One instance of every stream implementation, sized for 400 points.
CHECKPOINT_DETECTORS = [
    SimpleThreshold(),
    Diff("last-slot", 1),
    SimpleMA(10),
    WeightedMA(10),
    MAOfDiff(10),
    EWMA(0.3),
    TSD(2, 24),
    TSDMad(2, 24),
    HistoricalAverage(1, 4),
    HistoricalMad(1, 4),
    SVDDetector(10, 3),
    WaveletDetector(1, "mid", 48),
    HoltWinters(0.4, 0.2, 0.4, 24),
    Brutlag(0.4, 0.4, 0.4, 24),
    CUSUM(24, 0.5),
    SHESD(1, 24),
    ARIMA(fit_points=120),
    _WindowedProbe(12),
    _UnboundedProbe(12),
]


def _checkpoint_values() -> np.ndarray:
    rng = np.random.default_rng(77)
    t = np.arange(400)
    values = (
        50.0
        + 8.0 * np.sin(2 * np.pi * t / 24)
        + rng.normal(0.0, 1.5, size=400)
    )
    values[[150, 151, 290, 355]] = np.nan
    return values


CHECKPOINT_VALUES = _checkpoint_values()


@pytest.mark.parametrize(
    "detector", CHECKPOINT_DETECTORS, ids=lambda d: d.feature_name
)
class TestStreamCheckpoint:
    #: 100 snapshots ARIMA *before* its order fit (fit_points = 120) and
    #: most detectors mid-warm-up; 240 snapshots every stream warm.
    @pytest.mark.parametrize("cut", [100, 240])
    def test_resume_equals_cold_replay(self, detector, cut):
        cold = detector.stream()
        expected = np.array(
            [cold.update(v) for v in CHECKPOINT_VALUES]
        )

        warm = detector.stream()
        for value in CHECKPOINT_VALUES[:cut]:
            warm.update(value)
        # Through JSON: exactly what a persisted checkpoint goes through.
        state = json.loads(json.dumps(warm.snapshot()))
        resumed = detector.stream().restore(state)
        online = np.array(
            [resumed.update(v) for v in CHECKPOINT_VALUES[cut:]]
        )
        np.testing.assert_array_equal(online, expected[cut:])

    def test_snapshot_is_json_serializable(self, detector):
        stream = detector.stream()
        for value in CHECKPOINT_VALUES[:260]:
            stream.update(value)
        encoded = json.dumps(stream.snapshot())
        assert isinstance(json.loads(encoded), dict)


class TestStreamingDetectorCheckpoint:
    @pytest.fixture(scope="class")
    def fitted(self, labeled_kpi):
        series = labeled_kpi.series
        split = 3 * series.points_per_week
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series.slice(0, split))
        return opp, series, split

    def test_restore_resumes_decisions_exactly(self, fitted):
        opp, series, split = fitted
        tail = series.values[split: split + 80]

        reference = StreamingDetector(opp, history=series.slice(0, split))
        reference.push_many(tail[:40])
        checkpoint = json.loads(json.dumps(reference.snapshot()))
        expected = reference.push_many(tail[40:])

        resumed = StreamingDetector(opp, checkpoint=checkpoint)
        assert resumed.points_seen == split + 40
        decisions = resumed.push_many(tail[40:])
        np.testing.assert_array_equal(
            np.array([d.score for d in decisions]),
            np.array([d.score for d in expected]),
        )
        assert [d.index for d in decisions] == [d.index for d in expected]

    def test_history_and_checkpoint_are_exclusive(self, fitted):
        opp, series, split = fitted
        streaming = StreamingDetector(opp, history=series.slice(0, split))
        with pytest.raises(ValueError, match="not both"):
            StreamingDetector(
                opp,
                history=series.slice(0, split),
                checkpoint=streaming.snapshot(),
            )

    def test_bank_mismatch_rejected(self, fitted):
        opp, series, split = fitted
        checkpoint = StreamingDetector(
            opp, history=series.slice(0, split)
        ).snapshot()
        checkpoint["feature_names"] = list(
            reversed(checkpoint["feature_names"])
        )
        with pytest.raises(ValueError, match="bank mismatch"):
            StreamingDetector(opp, checkpoint=checkpoint)

    def test_unknown_version_rejected(self, fitted):
        opp, series, split = fitted
        checkpoint = StreamingDetector(
            opp, history=series.slice(0, split)
        ).snapshot()
        checkpoint["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            StreamingDetector(opp, checkpoint=checkpoint)

    def test_save_load_round_trip(self, fitted, tmp_path):
        opp, series, split = fitted
        tail = series.values[split: split + 60]
        reference = StreamingDetector(opp, history=series.slice(0, split))
        reference.push_many(tail[:30])
        path = tmp_path / "stream.ckpt.json"
        save_checkpoint(reference, path)
        expected = reference.push_many(tail[30:])

        resumed = load_checkpoint(path, opp)
        decisions = resumed.push_many(tail[30:])
        np.testing.assert_array_equal(
            np.array([d.score for d in decisions]),
            np.array([d.score for d in expected]),
        )

    def test_load_rejects_unknown_envelope_version(self, fitted, tmp_path):
        opp, series, split = fitted
        streaming = StreamingDetector(opp, history=series.slice(0, split))
        path = tmp_path / "stream.ckpt.json"
        save_checkpoint(streaming, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="checkpoint format"):
            load_checkpoint(path, opp)

    def test_buffered_points_stay_flat(self, fitted):
        opp, series, split = fitted
        streaming = StreamingDetector(opp, history=series.slice(0, split))
        after_replay = streaming.buffered_points()
        streaming.push_many(series.values[split: split + 2 * 7 * 24])
        assert streaming.buffered_points() <= after_replay


class TestFitIncremental:
    @pytest.fixture(scope="class")
    def fitted(self, labeled_kpi):
        series = labeled_kpi.series
        split = 3 * series.points_per_week
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series.slice(0, split))
        return opp, series, split

    def test_requires_prior_fit(self, labeled_kpi):
        opp = Opprentice(
            configs=small_bank(labeled_kpi.series.points_per_week),
            classifier_factory=fast_forest,
        )
        with pytest.raises(RuntimeError, match="fit\\(\\) must run"):
            opp.fit_incremental(
                labeled_kpi.series, np.zeros((1, 7))
            )

    def test_rejects_wrong_feature_width(self, fitted):
        opp, series, split = fitted
        extended = series.slice(0, split + 2)
        with pytest.raises(ValueError, match="do not match"):
            opp.fit_incremental(extended, np.zeros((2, 3)))

    def test_rejects_wrong_row_count(self, fitted):
        opp, series, split = fitted
        extended = series.slice(0, split + 5)
        with pytest.raises(ValueError, match="do not extend"):
            opp.fit_incremental(extended, np.zeros((2, 7)))

    def test_matches_full_fit(self, labeled_kpi):
        series = labeled_kpi.series
        ppw = series.points_per_week
        split = 3 * ppw
        extended = series.slice(0, split + 48)

        incremental = Opprentice(
            configs=small_bank(ppw), classifier_factory=fast_forest
        ).fit(series.slice(0, split))
        extractor = FeatureExtractor(small_bank(ppw))
        new_rows = extractor.extract(extended).values[split:]
        incremental.fit_incremental(extended, new_rows)

        full = Opprentice(
            configs=small_bank(ppw), classifier_factory=fast_forest
        ).fit(extended)
        np.testing.assert_array_equal(
            incremental._feature_values, full._feature_values
        )
        probe = series.slice(split + 48, split + 96)
        np.testing.assert_allclose(
            incremental.anomaly_scores(probe),
            full.anomaly_scores(probe),
            atol=1e-12,
        )
