"""Concept-drift monitoring tests."""

import numpy as np
import pytest

from repro.core import (
    cthld_drift,
    feature_drift,
    population_stability_index,
)
from repro.core.drift import PSI_MAJOR, PSI_MODERATE


class TestPSI:
    def test_same_distribution_near_zero(self, rng):
        reference = rng.normal(size=20_000)
        recent = rng.normal(size=20_000)
        assert population_stability_index(reference, recent) < 0.01

    def test_shifted_distribution_flags(self, rng):
        reference = rng.normal(0, 1, 10_000)
        recent = rng.normal(2, 1, 10_000)
        assert population_stability_index(reference, recent) > PSI_MAJOR

    def test_scale_change_flags(self, rng):
        reference = rng.normal(0, 1, 10_000)
        recent = rng.normal(0, 4, 10_000)
        assert population_stability_index(reference, recent) > PSI_MODERATE

    def test_nan_excluded(self, rng):
        reference = rng.normal(size=5000)
        recent = np.concatenate([rng.normal(size=5000), [np.nan] * 100])
        value = population_stability_index(reference, recent)
        assert np.isfinite(value)
        assert value < 0.02

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            population_stability_index(rng.normal(size=3), rng.normal(size=100))
        with pytest.raises(ValueError):
            population_stability_index(
                rng.normal(size=100), rng.normal(size=100), n_bins=1
            )


class TestFeatureDrift:
    def test_names_and_levels(self, rng):
        reference = np.column_stack(
            [rng.normal(0, 1, 5000), rng.normal(0, 1, 5000)]
        )
        recent = np.column_stack(
            [rng.normal(0, 1, 5000), rng.normal(3, 1, 5000)]
        )
        report = feature_drift(reference, recent, names=["stable", "moved"])
        by_name = {f.name: f for f in report.features}
        assert by_name["stable"].level == "stable"
        assert by_name["moved"].level == "major"
        assert report.top(1)[0].name == "moved"
        assert report.max_psi == by_name["moved"].psi
        assert report.drifted_fraction == pytest.approx(0.5)

    def test_all_nan_column_skipped(self, rng):
        reference = np.column_stack(
            [rng.normal(size=1000), np.full(1000, np.nan)]
        )
        recent = np.column_stack(
            [rng.normal(size=1000), np.full(1000, np.nan)]
        )
        report = feature_drift(reference, recent)
        assert len(report.features) == 1

    def test_render(self, rng):
        reference = rng.normal(size=(2000, 2))
        recent = rng.normal(size=(2000, 2))
        text = feature_drift(reference, recent, names=["a", "b"]).render()
        assert "max PSI" in text
        assert "a" in text or "b" in text

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            feature_drift(rng.normal(size=(10, 2)), rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            feature_drift(
                rng.normal(size=(10, 2)), rng.normal(size=(10, 2)), names=["x"]
            )

    def test_detects_kpi_regime_change(self):
        """End to end: a level-shifted KPI drifts its severity features."""
        from repro.core import FeatureExtractor
        from repro.data import SeasonalProfile, generate_kpi
        from test_opprentice import small_bank

        base = generate_kpi(
            weeks=4, interval=3600,
            profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                    noise_scale=0.02),
            seed=31,
        ).series
        shifted_values = base.values.copy()
        half = len(base) // 2
        shifted_values[half:] *= 2.0  # the service changed regime
        from repro.timeseries import TimeSeries

        shifted = TimeSeries(values=shifted_values, interval=3600)
        matrix = FeatureExtractor(
            small_bank(base.points_per_week)
        ).extract(shifted)
        report = feature_drift(
            matrix.values[:half], matrix.values[half:], names=matrix.names
        )
        assert report.max_psi > PSI_MAJOR


class TestCThldDrift:
    def test_stable_series_near_zero(self):
        assert cthld_drift([0.5, 0.52, 0.48, 0.5, 0.51, 0.49]) < 0.03

    def test_regime_change_detected(self):
        assert cthld_drift([0.3, 0.3, 0.3, 0.3, 0.8, 0.8, 0.8, 0.8]) > 0.3

    def test_needs_enough_weeks(self):
        with pytest.raises(ValueError):
            cthld_drift([0.5, 0.5], window=4)
