"""repro.obs core: registry, tracer, event log, provider switching."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullProvider,
    ObservabilityProvider,
    SPAN_SECONDS_METRIC,
    Tracer,
    disable,
    enable,
    get_provider,
    is_enabled,
    set_provider,
)


@pytest.fixture(autouse=True)
def _reset_provider():
    yield
    disable()


class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_gauge_up_down(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0

    def test_histogram_buckets(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(55.55)
        assert histogram.cumulative() == [
            ("0.1", 1), ("1", 2), ("10", 3), ("+Inf", 4),
        ]

    def test_histogram_bound_is_inclusive(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(0.1)
        assert histogram.cumulative()[0] == ("0.1", 1)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(MetricError):
            Histogram(buckets=(1.0, 0.1))

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_registry_same_labels_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", kpi="PV")
        b = registry.counter("repro_x_total", kpi="PV")
        c = registry.counter("repro_x_total", kpi="SR")
        assert a is b and a is not c

    def test_registry_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(MetricError):
            registry.gauge("repro_x_total")

    def test_registry_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("bad name")
        with pytest.raises(MetricError):
            registry.counter("repro_ok_total", **{"0bad": "x"})

    def test_registry_thread_safety(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.counter("repro_hits_total").inc()
                registry.histogram("repro_lat_seconds").observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("repro_hits_total").value == 8000
        assert registry.histogram("repro_lat_seconds").count == 8000

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "help a", kpi="PV").inc(2)
        registry.histogram("repro_b_seconds").observe(0.5)
        snap = registry.snapshot()
        assert snap["version"] == 1
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["repro_a_total"]["kind"] == "counter"
        assert by_name["repro_a_total"]["samples"][0] == {
            "labels": {"kpi": "PV"}, "value": 2.0,
        }
        histogram = by_name["repro_b_seconds"]["samples"][0]
        assert histogram["count"] == 1
        assert histogram["buckets"][-1][0] == "+Inf"


class TestTracer:
    def test_nesting_and_metadata(self):
        tracer = Tracer()
        with tracer.span("outer", kpi="PV") as outer:
            with tracer.span("inner"):
                pass
            outer.set("n_points", 7)
        inner, outer = tracer.finished
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1 and outer.depth == 0
        assert outer.meta == {"kpi": "PV", "n_points": 7}
        assert inner.duration <= outer.duration

    def test_durations_and_find(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        assert len(tracer.find("stage")) == 3
        assert all(d >= 0 for d in tracer.durations("stage"))

    def test_buffer_bound(self):
        tracer = Tracer(max_spans=5)
        for _ in range(8):
            with tracer.span("s"):
                pass
        assert len(tracer.finished) == 5
        assert tracer.dropped == 3
        # The *newest* records are retained.
        assert [r.span_id for r in tracer.finished] == [3, 4, 5, 6, 7]


class TestEventLog:
    def test_emit_and_find(self):
        log = EventLog(clock=lambda: 123.0)
        log.emit("alert_opened", begin=4, peak=0.9)
        log.emit("retrain", cthld=0.5)
        opened = log.find("alert_opened")
        assert opened == [
            {"event": "alert_opened", "seq": 0, "ts": 123.0,
             "begin": 4, "peak": 0.9},
        ]

    def test_jsonl_round_trip(self):
        import json

        log = EventLog(clock=lambda: 1.0)
        log.emit("a", x=1)
        log.emit("b", y="z")
        lines = log.to_jsonl().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_sink_receives_lines(self):
        lines = []
        log = EventLog(sink=lines.append, clock=lambda: 0.0)
        log.emit("a")
        assert len(lines) == 1 and lines[0].endswith("\n")

    def test_buffer_bound(self):
        log = EventLog(max_events=2, clock=lambda: 0.0)
        for i in range(5):
            log.emit("e", i=i)
        assert [e["i"] for e in log.events] == [3, 4]
        assert log.dropped == 3


class TestProvider:
    def test_default_is_noop(self):
        assert not is_enabled()
        assert isinstance(get_provider(), NullProvider)

    def test_null_provider_records_nothing(self):
        provider = get_provider()
        provider.counter("repro_x_total").inc(5)
        provider.gauge("repro_g").set(2)
        provider.histogram("repro_h_seconds").observe(0.1)
        with provider.span("stage", kpi="PV") as span:
            span.set("k", "v")
        with provider.timer("repro_t_seconds"):
            pass
        provider.emit("event", x=1)
        assert provider.snapshot() == {"version": 1, "metrics": []}
        assert provider.counter("repro_x_total").value == 0.0

    def test_null_handles_are_shared_singletons(self):
        provider = get_provider()
        assert provider.counter("a") is provider.counter("b")
        assert provider.span("a") is provider.span("b", k=1)

    def test_enable_disable_round_trip(self):
        live = enable()
        assert is_enabled() and get_provider() is live
        assert enable() is live  # idempotent
        disable()
        assert not is_enabled()

    def test_set_provider_returns_previous(self):
        first = ObservabilityProvider()
        previous = set_provider(first)
        assert isinstance(previous, NullProvider)
        assert set_provider(previous) is first

    def test_live_provider_records(self):
        provider = enable()
        provider.counter("repro_x_total", kpi="PV").inc(2)
        with provider.timer("repro_t_seconds"):
            pass
        names = {m["name"] for m in provider.snapshot()["metrics"]}
        assert {"repro_x_total", "repro_t_seconds"} <= names

    def test_spans_feed_latency_histogram(self):
        provider = enable()
        with provider.span("feature_matrix.extract", kpi="PV"):
            pass
        histogram = provider.registry.histogram(
            SPAN_SECONDS_METRIC, span="feature_matrix.extract"
        )
        assert histogram.count == 1
        assert provider.tracer.find("feature_matrix.extract")

    def test_enable_from_env(self, monkeypatch):
        from repro.obs import enable_from_env

        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert enable_from_env() is False
        monkeypatch.setenv("REPRO_OBS", "1")
        assert enable_from_env() is True


class TestServiceStats:
    def test_attribute_api_backwards_compatible(self):
        from repro.core import ServiceStats

        stats = ServiceStats()
        assert stats.points_ingested == 0
        stats.points_ingested += 1
        stats.points_ingested += 1
        stats.anomalous_points += 1
        stats.alerts_opened = 4
        stats.retrain_rounds += 1
        assert stats.points_ingested == 2
        assert stats.anomalous_points == 1
        assert stats.alerts_opened == 4
        assert stats.retrain_rounds == 1
        assert "points_ingested=2" in repr(stats)

    def test_backed_by_registry(self):
        from repro.core import ServiceStats

        stats = ServiceStats()
        stats.points_ingested += 3
        snap = stats.registry.snapshot()
        by_name = {m["name"]: m for m in snap["metrics"]}
        assert by_name["repro_points_ingested_total"]["samples"][0]["value"] == 3.0
