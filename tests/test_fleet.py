"""repro.fleet: sharded scheduling, fault isolation, crash recovery.

The expensive part of a fleet test is bootstrapping services (a full
bank extraction per KPI), so one template service is bootstrapped once
per module and cloned into N per-KPI services through the public
checkpoint path (save_model + MonitoringService.snapshot) — which also
keeps the clone path itself under test.
"""

import json

import numpy as np
import pytest

from repro.core import MonitoringService, load_model, save_model
from repro.fleet import (
    ACTIVE,
    DEGRADED,
    QUARANTINED,
    RECOVERED,
    BackpressureError,
    ConsistentHashRing,
    FleetManager,
    IngestQueue,
    Scheduler,
)
from repro.fleet.status import FleetStatus

from test_opprentice import fast_forest, small_bank


# ----------------------------------------------------------------------
# Scheduler units
# ----------------------------------------------------------------------
class TestConsistentHashRing:
    def test_assignment_is_stable_across_instances(self):
        ids = [f"kpi-{i:03d}" for i in range(64)]
        first = ConsistentHashRing(4)
        second = ConsistentHashRing(4)
        assert [first.shard_for(k) for k in ids] == [
            second.shard_for(k) for k in ids
        ]

    def test_assignment_spreads_over_shards(self):
        ids = [f"kpi-{i:03d}" for i in range(64)]
        ring = ConsistentHashRing(4)
        shards = {ring.shard_for(k) for k in ids}
        assert shards <= {0, 1, 2, 3}
        assert len(shards) >= 3  # 64 ids over 4 shards: no dead shards

    def test_resharding_moves_a_minority(self):
        ids = [f"kpi-{i:03d}" for i in range(64)]
        four = ConsistentHashRing(4)
        five = ConsistentHashRing(5)
        moved = sum(
            1 for k in ids if four.shard_for(k) != five.shard_for(k)
        )
        # Consistent hashing: adding a shard reassigns ~1/5 of the
        # keys, not almost all of them like `hash(k) % n` would.
        assert moved < len(ids) // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)
        with pytest.raises(ValueError):
            ConsistentHashRing(2, replicas=0)


class TestIngestQueue:
    def test_drop_oldest_keeps_freshest_window(self):
        queue = IngestQueue(3, "drop-oldest")
        reasons = [queue.offer(v) for v in [1.0, 2.0, 3.0, 4.0, 5.0]]
        assert reasons == [None, None, None, "drop-oldest", "drop-oldest"]
        assert queue.drain() == [3.0, 4.0, 5.0]

    def test_drop_newest_rejects_the_offered_point(self):
        queue = IngestQueue(2, "drop-newest")
        assert queue.offer(1.0) is None
        assert queue.offer(2.0) is None
        assert queue.offer(3.0) == "drop-newest"
        assert queue.drain() == [1.0, 2.0]

    def test_block_raises(self):
        queue = IngestQueue(1, "block")
        queue.offer(1.0)
        with pytest.raises(BackpressureError, match="pump"):
            queue.offer(2.0)

    def test_requeue_front_preserves_order(self):
        queue = IngestQueue(8)
        for value in [1.0, 2.0, 3.0, 4.0]:
            queue.offer(value)
        batch = queue.drain(3)
        assert batch == [1.0, 2.0, 3.0]
        queue.requeue_front(batch[1:])
        assert queue.drain() == [2.0, 3.0, 4.0]

    def test_drain_limit(self):
        queue = IngestQueue(8)
        for value in [1.0, 2.0, 3.0]:
            queue.offer(value)
        assert queue.drain(2) == [1.0, 2.0]
        assert len(queue) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="depth"):
            IngestQueue(0)
        with pytest.raises(ValueError, match="policy"):
            IngestQueue(4, "drop-random")


class TestScheduler:
    def test_register_routes_to_ring_shard(self):
        scheduler = Scheduler(n_shards=4)
        shard = scheduler.register("kpi-000")
        assert shard == scheduler.ring.shard_for("kpi-000")
        assert scheduler.shard_of("kpi-000") == shard
        assert "kpi-000" in scheduler.kpis_by_shard()[shard]

    def test_duplicate_registration_rejected(self):
        scheduler = Scheduler()
        scheduler.register("kpi-000")
        with pytest.raises(ValueError, match="already"):
            scheduler.register("kpi-000")

    def test_unregister(self):
        scheduler = Scheduler()
        shard = scheduler.register("kpi-000")
        scheduler.unregister("kpi-000")
        assert "kpi-000" not in scheduler.kpis_by_shard()[shard]
        scheduler.register("kpi-000")  # re-registration works


# ----------------------------------------------------------------------
# Fleet fixtures: one bootstrapped template, cloned per KPI.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_kpi():
    """3 weeks of hourly KPI: 2 bootstrap + 1 live."""
    from repro.data import SeasonalProfile, generate_kpi, inject_anomalies

    generated = generate_kpi(
        weeks=3,
        interval=3600,
        profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                noise_scale=0.02, trend=0.0),
        seed=77,
        name="template",
    )
    result = inject_anomalies(
        generated.series, target_fraction=0.06, seed=78, mean_window=4.0
    )
    series = result.series
    split = 2 * series.points_per_week
    return series, result.windows, split


@pytest.fixture(scope="module")
def template(fleet_kpi, tmp_path_factory):
    """A bootstrapped service snapshot + model artifact to clone from."""
    series, _, split = fleet_kpi
    service = MonitoringService(
        configs=small_bank(series.points_per_week),
        classifier_factory=fast_forest,
        min_duration_points=2,
    )
    service.bootstrap(series.slice(0, split))
    model_path = tmp_path_factory.mktemp("fleet-template") / "model.json"
    save_model(service.opprentice, model_path)
    return {
        "snapshot": service.snapshot(),
        "model_path": model_path,
        "ppw": series.points_per_week,
    }


def service_factory(template):
    """A FleetManager service_factory cloning the template per KPI."""

    def build(kpi_id: str) -> MonitoringService:
        service = MonitoringService(
            configs=small_bank(template["ppw"]),
            classifier_factory=fast_forest,
            min_duration_points=2,
        )
        load_model(template["model_path"], opprentice=service.opprentice)
        return service

    return build


def clone_service(template, kpi_id: str) -> MonitoringService:
    service = service_factory(template)(kpi_id)
    snapshot = template["snapshot"]
    snapshot["kpi"] = kpi_id
    snapshot["history"]["name"] = kpi_id
    service.restore_snapshot(snapshot)
    return service


def build_fleet(template, kpi_ids, **kwargs) -> FleetManager:
    kwargs.setdefault("n_shards", 4)
    kwargs.setdefault("batch_points", 8)
    fleet = FleetManager(service_factory=service_factory(template), **kwargs)
    for kpi_id in kpi_ids:
        fleet.add_kpi(kpi_id, service=clone_service(template, kpi_id))
    return fleet


def events_by_kpi(events):
    grouped = {}
    for event in events:
        grouped.setdefault(event.kpi, []).append(event)
    return grouped


def always_boom(service):
    """Make every subsequent ingest on ``service`` raise."""

    def boom(value):
        raise RuntimeError("detector exploded")

    service._streaming.push = boom


def boom_n_times(service, n):
    """Make the next ``n`` ingests raise, then recover."""
    original = service._streaming.push
    remaining = {"n": n}

    def flaky(value):
        if remaining["n"] > 0:
            remaining["n"] -= 1
            raise RuntimeError("transient detector fault")
        return original(value)

    service._streaming.push = flaky


# ----------------------------------------------------------------------
# Registration contract
# ----------------------------------------------------------------------
class TestAddKpi:
    def test_invalid_ids_rejected(self, template):
        fleet = FleetManager()
        clone = clone_service(template, "ok")
        for bad in ["", ".hidden", "a/b", "a\\b", "..", "x" * 200]:
            with pytest.raises(ValueError, match="invalid KPI id"):
                fleet.add_kpi(bad, service=clone)

    def test_unbootstrapped_service_rejected(self, template):
        fleet = FleetManager()
        bare = MonitoringService(configs=small_bank(template["ppw"]))
        with pytest.raises(ValueError, match="bootstrapped"):
            fleet.add_kpi("kpi-000", service=bare)

    def test_kpi_mismatch_rejected(self, template):
        fleet = FleetManager()
        with pytest.raises(ValueError, match="attribution"):
            fleet.add_kpi("kpi-001", service=clone_service(template, "kpi-000"))

    def test_duplicate_rejected(self, template):
        fleet = build_fleet(template, ["kpi-000"])
        with pytest.raises(ValueError, match="already managed"):
            fleet.add_kpi("kpi-000", service=clone_service(template, "kpi-000"))

    def test_bootstrap_series_renamed_to_kpi_id(self, fleet_kpi, template):
        series, _, split = fleet_kpi
        fleet = FleetManager(service_factory=service_factory(template))
        service = fleet.add_kpi("renamed", bootstrap=series.slice(0, split))
        assert service.kpi == "renamed"


# ----------------------------------------------------------------------
# Backpressure is counted, never silent
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_drop_newest_counted(self, template):
        fleet = build_fleet(
            template, ["kpi-000"], queue_depth=4, queue_policy="drop-newest"
        )
        accepted = fleet.offer_many("kpi-000", [float(i) for i in range(10)])
        assert accepted == 4
        status = fleet.status().kpis[0]
        assert status.queue_depth == 4
        assert status.dropped == {"drop-newest": 6}
        assert fleet.status().total_dropped == 6

    def test_drop_oldest_counted_and_keeps_freshest(self, template):
        fleet = build_fleet(
            template, ["kpi-000"], queue_depth=4, queue_policy="drop-oldest"
        )
        fleet.offer_many("kpi-000", [float(i) for i in range(10)])
        assert fleet.status().kpis[0].dropped == {"drop-oldest": 6}
        assert fleet._scheduler.queue("kpi-000").drain() == [
            6.0, 7.0, 8.0, 9.0,
        ]

    def test_block_policy_propagates(self, template):
        fleet = build_fleet(
            template, ["kpi-000"], queue_depth=2, queue_policy="block"
        )
        fleet.offer_many("kpi-000", [1.0, 2.0])
        with pytest.raises(BackpressureError):
            fleet.offer("kpi-000", 3.0)


# ----------------------------------------------------------------------
# Fault isolation
# ----------------------------------------------------------------------
class TestFaultIsolation:
    N_KPIS = 64
    LIVE_POINTS = 24

    def _run_fleet(self, template, live_values, faulty=None):
        ids = [f"kpi-{i:03d}" for i in range(self.N_KPIS)]
        fleet = build_fleet(
            template,
            ids,
            backoff_base=1,
            backoff_cap=4,
            max_retries=2,
        )
        if faulty is not None:
            always_boom(fleet.service(faulty))
        events = []
        for value in live_values:
            for kpi_id in ids:
                fleet.offer(kpi_id, float(value))
            events.extend(fleet.pump())
        events.extend(fleet.drain_all())
        return fleet, events

    def test_one_faulty_kpi_leaves_63_bit_identical(
        self, fleet_kpi, template
    ):
        series, _, split = fleet_kpi
        live = series.values[split:split + self.LIVE_POINTS]
        faulty = "kpi-005"

        clean_fleet, clean_events = self._run_fleet(template, live)
        faulty_fleet, faulty_events = self._run_fleet(
            template, live, faulty=faulty
        )

        clean_by_kpi = events_by_kpi(clean_events)
        faulty_by_kpi = events_by_kpi(faulty_events)
        for kpi_id in clean_fleet.kpi_ids:
            if kpi_id == faulty:
                continue
            # Bit-identical alert streams: same events, same order,
            # same scores (AlertEvent equality covers every field).
            assert faulty_by_kpi.get(kpi_id) == clean_by_kpi.get(kpi_id)
            assert faulty_fleet.state(kpi_id) in (ACTIVE, RECOVERED)
            assert (
                faulty_fleet.service(kpi_id).stats.points_ingested
                == len(live)
            )

        # The faulty KPI went quarantined -> degraded, visibly.
        assert faulty_fleet.state(faulty) == DEGRADED
        status = {k.kpi_id: k for k in faulty_fleet.status().kpis}[faulty]
        assert status.retries == 3  # max_retries=2 exhausted on the 3rd
        assert status.quarantines == 3
        assert status.dropped.get("error") == 3
        assert "exploded" in status.last_error
        assert faulty_by_kpi.get(faulty) is None

        # Degraded KPIs drop at offer time, counted under "degraded"
        # (offers made after the degradation mid-run already counted).
        before = status.dropped.get("degraded", 0)
        assert before > 0
        assert not faulty_fleet.offer(faulty, 1.0)
        assert faulty_fleet.status().states[DEGRADED] == 1
        dropped = {k.kpi_id: k.dropped for k in faulty_fleet.status().kpis}
        assert dropped[faulty].get("degraded") == before + 1

    def test_fleet_matches_standalone_service(self, fleet_kpi, template):
        """A fleet-managed KPI's alert stream equals the same service
        run standalone — the fleet layer adds zero detection drift."""
        series, _, split = fleet_kpi
        live = series.values[split:split + self.LIVE_POINTS]

        standalone = clone_service(template, "kpi-000")
        expected = []
        for value in live:
            expected.extend(standalone.ingest(float(value)))

        fleet = build_fleet(template, ["kpi-000"])
        fleet.offer_many("kpi-000", [float(v) for v in live])
        actual = fleet.drain_all()
        assert actual == expected

    def test_quarantine_backoff_and_recovery(self, fleet_kpi, template):
        series, _, split = fleet_kpi
        live = [float(v) for v in series.values[split:split + 8]]
        fleet = build_fleet(
            template,
            ["kpi-000"],
            batch_points=4,
            backoff_base=1,
            backoff_cap=8,
            max_retries=5,
        )
        boom_n_times(fleet.service("kpi-000"), 2)
        fleet.offer_many("kpi-000", live)

        assert fleet.pump() == []  # failure 1: quarantined, backoff 1
        assert fleet.state("kpi-000") == QUARANTINED
        handle_status = fleet.status().kpis[0]
        assert handle_status.retries == 1
        assert handle_status.backoff_remaining == 1

        assert fleet.pump() == []  # backoff tick
        fleet.pump()               # failure 2: backoff 2
        assert fleet.status().kpis[0].backoff_remaining == 2

        fleet.drain_all()          # backoff expires, retry succeeds
        assert fleet.state("kpi-000") == RECOVERED
        status = fleet.status().kpis[0]
        assert status.retries == 0
        assert status.dropped.get("error") == 2
        assert status.points_ingested == len(live) - 2

    def test_revive_restores_degraded_kpi(self, fleet_kpi, template):
        series, _, split = fleet_kpi
        fleet = build_fleet(
            template, ["kpi-000"], backoff_base=1, backoff_cap=2,
            max_retries=0,
        )
        always_boom(fleet.service("kpi-000"))
        fleet.offer("kpi-000", 1.0)
        fleet.drain_all()
        assert fleet.state("kpi-000") == DEGRADED

        fleet.revive("kpi-000")
        assert fleet.state("kpi-000") == ACTIVE
        # Heal the detector (swap in a fresh clone): points flow again.
        service = clone_service(template, "kpi-000")
        fleet._kpis["kpi-000"].service = service
        fleet.offer("kpi-000", float(series.values[split]))
        fleet.pump()
        assert service.stats.points_ingested == 1


# ----------------------------------------------------------------------
# Staggered retraining
# ----------------------------------------------------------------------
class TestRetrain:
    def test_waves_and_results(self, fleet_kpi, template):
        series, _, split = fleet_kpi
        live = [float(v) for v in series.values[split:split + 12]]
        ids = ["kpi-000", "kpi-001", "kpi-002"]
        fleet = build_fleet(template, ids, max_concurrent_retrains=2)
        for kpi_id in ids:
            fleet.offer_many(kpi_id, live)
        fleet.drain_all()

        results = fleet.retrain()
        assert sorted(results) == ids
        for kpi_id in ids:
            assert isinstance(results[kpi_id], float)
            assert fleet.service(kpi_id).stats.retrain_rounds == 1
            assert fleet.service(kpi_id).pending_points == 0

        # Nothing pending -> nothing retrained.
        assert fleet.retrain() == {}

    def test_retrain_failure_quarantines_only_that_kpi(
        self, fleet_kpi, template
    ):
        series, _, split = fleet_kpi
        live = [float(v) for v in series.values[split:split + 6]]
        ids = ["kpi-000", "kpi-001"]
        fleet = build_fleet(template, ids)
        for kpi_id in ids:
            fleet.offer_many(kpi_id, live)
        fleet.drain_all()

        def broken_retrain():
            raise RuntimeError("retrain exploded")

        fleet.service("kpi-001").retrain = broken_retrain
        results = fleet.retrain()
        assert isinstance(results["kpi-000"], float)
        assert results["kpi-001"] is None
        assert fleet.state("kpi-000") == ACTIVE
        assert fleet.state("kpi-001") == QUARANTINED


# ----------------------------------------------------------------------
# Crash recovery: save / restore mid-run
# ----------------------------------------------------------------------
class TestSaveRestore:
    def test_restore_resumes_bit_identical(
        self, fleet_kpi, template, tmp_path
    ):
        series, _, split = fleet_kpi
        live = [float(v) for v in series.values[split:]]
        ids = ["kpi-000", "kpi-001", "kpi-002"]

        def run_prefix():
            fleet = build_fleet(template, ids, queue_depth=512)
            for kpi_id in ids:
                fleet.offer_many(kpi_id, live[:24])
            fleet.drain_all()
            # Leave points *queued but unpumped* across the crash.
            for kpi_id in ids:
                fleet.offer_many(kpi_id, live[24:30])
            return fleet

        def run_suffix(fleet):
            events = list(fleet.drain_all())
            for kpi_id in ids:
                fleet.offer_many(kpi_id, live[30:60])
            events.extend(fleet.drain_all())
            fleet.retrain()
            for kpi_id in ids:
                fleet.offer_many(kpi_id, live[60:90])
            events.extend(fleet.drain_all())
            return events

        original = run_prefix()
        fleet_dir = tmp_path / "fleet"
        original.save(fleet_dir)
        expected = run_suffix(original)

        restored = FleetManager.restore(
            fleet_dir, service_factory=service_factory(template)
        )
        assert sorted(restored.kpi_ids) == ids
        actual = run_suffix(restored)

        # The remaining alert stream reproduces exactly — including
        # events from the points that were still queued at crash time
        # and everything after the post-restore retrain.
        assert actual == expected
        for kpi_id in ids:
            assert (
                restored.service(kpi_id).stats.as_dict()
                == original.service(kpi_id).stats.as_dict()
            )
            assert (
                restored.service(kpi_id).cthld
                == original.service(kpi_id).cthld
            )

    def test_save_is_a_pure_observer(self, fleet_kpi, template, tmp_path):
        series, _, split = fleet_kpi
        fleet = build_fleet(template, ["kpi-000"])
        fleet.offer_many(
            "kpi-000", [float(v) for v in series.values[split:split + 5]]
        )
        before = fleet._scheduler.depth("kpi-000")
        fleet.save(tmp_path / "fleet")
        assert fleet._scheduler.depth("kpi-000") == before
        events = fleet.drain_all()
        assert fleet.service("kpi-000").stats.points_ingested == 5

    def test_quarantine_state_survives_restore(
        self, fleet_kpi, template, tmp_path
    ):
        fleet = build_fleet(
            template, ["kpi-000", "kpi-001"], backoff_base=4,
            backoff_cap=8, max_retries=5,
        )
        always_boom(fleet.service("kpi-000"))
        fleet.offer("kpi-000", 1.0)
        fleet.pump()
        assert fleet.state("kpi-000") == QUARANTINED
        fleet.save(tmp_path / "fleet")

        restored = FleetManager.restore(
            tmp_path / "fleet", service_factory=service_factory(template)
        )
        assert restored.state("kpi-000") == QUARANTINED
        status = {k.kpi_id: k for k in restored.status().kpis}["kpi-000"]
        assert status.retries == 1
        assert status.backoff_remaining == 4
        assert status.dropped.get("error") == 1
        assert restored.state("kpi-001") == ACTIVE

    def test_manifest_version_checked(self, fleet_kpi, template, tmp_path):
        fleet = build_fleet(template, ["kpi-000"])
        fleet.save(tmp_path / "fleet")
        manifest_path = tmp_path / "fleet" / "fleet.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported fleet format"):
            FleetManager.restore(
                tmp_path / "fleet",
                service_factory=service_factory(template),
            )


# ----------------------------------------------------------------------
# Rollups
# ----------------------------------------------------------------------
class TestRollups:
    def test_status_snapshot(self, fleet_kpi, template):
        series, _, split = fleet_kpi
        fleet = build_fleet(template, ["kpi-000", "kpi-001"])
        fleet.offer_many(
            "kpi-000", [float(v) for v in series.values[split:split + 6]]
        )
        fleet.drain_all()
        status = fleet.status()
        assert status.n_kpis == 2
        assert status.states[ACTIVE] == 2
        assert status.total_points_ingested == 6
        as_dict = status.as_dict()
        assert {k["kpi_id"] for k in as_dict["kpis"]} == {
            "kpi-000", "kpi-001",
        }
        rendered = status.render()
        assert "kpi-000" in rendered and "active" in rendered

    def test_metrics_snapshot_tags_every_sample(self, fleet_kpi, template):
        series, _, split = fleet_kpi
        fleet = build_fleet(template, ["kpi-000", "kpi-001"])
        fleet.offer_many(
            "kpi-000", [float(v) for v in series.values[split:split + 4]]
        )
        fleet.drain_all()
        snapshot = fleet.metrics_snapshot()
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        ingested = by_name["repro_points_ingested_total"]
        samples = {
            s["labels"]["kpi"]: s["value"] for s in ingested["samples"]
        }
        assert samples == {"kpi-000": 4, "kpi-001": 0}

    def test_diagnosed_counts_roll_up_with_kpi_and_kind(
        self, fleet_kpi, template, tmp_path
    ):
        """Satellite of the diagnosis subsystem: per-KPI diagnosis
        counts surface in FleetStatus (DIAG column, kind totals), in
        the kpi-labelled metrics rollup, and survive save/restore."""
        from repro.diagnosis import fit_diagnoser

        series, _, split = fleet_kpi
        fleet = build_fleet(template, ["kpi-000", "kpi-001"], n_shards=1)
        diagnoser = fit_diagnoser(
            seed=0, n_estimators=8, weeks=1.0, repeats=1
        )
        for service in (fleet.service("kpi-000"), fleet.service("kpi-001")):
            service.diagnoser = diagnoser
        # The 100–160 live window straddles injected anomalies.
        fleet.offer_many(
            "kpi-000",
            [float(v) for v in series.values[split + 100:split + 160]],
        )
        fleet.drain_all()

        status = fleet.status()
        by_id = {k.kpi_id: k for k in status.kpis}
        assert by_id["kpi-000"].diagnosed_total > 0
        assert by_id["kpi-001"].diagnosed == {}
        assert status.total_alerts_diagnosed == \
            by_id["kpi-000"].diagnosed_total
        assert status.diagnosed_kinds == by_id["kpi-000"].diagnosed
        assert " DIAG" in status.render()
        rebuilt = FleetStatus.from_dict(status.as_dict())
        assert rebuilt.as_dict() == status.as_dict()

        snapshot = fleet.metrics_snapshot()
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        samples = {
            (s["labels"]["kpi"], s["labels"]["kind"]): s["value"]
            for s in by_name["repro_alerts_diagnosed_total"]["samples"]
        }
        assert samples == {
            ("kpi-000", kind): count
            for kind, count in by_id["kpi-000"].diagnosed.items()
        }

        fleet.save(tmp_path / "fleet")
        restored = FleetManager.restore(
            tmp_path / "fleet", service_factory=service_factory(template)
        )
        restored_status = {
            k.kpi_id: k for k in restored.status().kpis
        }
        assert restored_status["kpi-000"].diagnosed == \
            by_id["kpi-000"].diagnosed
        assert (
            restored.service("kpi-000").diagnoser.to_dict()
            == diagnoser.to_dict()
        )

    def test_fleet_metrics_reach_global_provider(self, fleet_kpi, template):
        from repro import obs

        series, _, split = fleet_kpi
        provider = obs.ObservabilityProvider()
        previous = obs.set_provider(provider)
        try:
            fleet = build_fleet(
                template, ["kpi-000"], queue_depth=2,
                queue_policy="drop-newest",
            )
            fleet.offer_many(
                "kpi-000",
                [float(v) for v in series.values[split:split + 5]],
            )
            fleet.pump()
            snapshot = provider.snapshot()
            names = {m["name"] for m in snapshot["metrics"]}
            assert "repro_fleet_kpis" in names
            assert "repro_fleet_queue_depth" in names
            assert "repro_fleet_dropped_points_total" in names
        finally:
            obs.set_provider(previous)


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------
class TestCli:
    def test_run_status_replay_roundtrip(self, tmp_path, capsys):
        from repro.fleet.cli import main
        from repro.timeseries import TimeSeries
        from repro.timeseries.io import write_csv

        fleet_dir = tmp_path / "fleet"
        code = main([
            "run", "--kpis", "2", "--weeks", "3",
            "--bootstrap-weeks", "2", "--trees", "10",
            "--save", str(fleet_dir),
            "--obs-out", str(tmp_path / "obs.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "kpi-000" in out and "2 KPIs" in out
        assert (fleet_dir / "fleet.json").exists()
        assert (fleet_dir / "kpis" / "kpi-000" / "service.json").exists()
        assert (tmp_path / "obs.json").exists()

        assert main(["status", str(fleet_dir)]) == 0
        assert "kpi-001" in capsys.readouterr().out

        tail = TimeSeries(
            values=np.linspace(100.0, 130.0, 24), interval=3600
        )
        csv_path = tmp_path / "kpi-000.csv"
        write_csv(tail, csv_path)
        assert main([
            "replay", str(fleet_dir), str(csv_path), "--trees", "10",
        ]) == 0
        assert "alert events" in capsys.readouterr().out

    def test_replay_unknown_kpi_rejected(self, tmp_path, capsys):
        from repro.fleet.cli import main
        from repro.timeseries import TimeSeries
        from repro.timeseries.io import write_csv

        fleet_dir = tmp_path / "fleet"
        assert main([
            "run", "--kpis", "1", "--weeks", "3",
            "--bootstrap-weeks", "2", "--trees", "10",
            "--save", str(fleet_dir),
        ]) == 0
        capsys.readouterr()
        stray = tmp_path / "not-a-kpi.csv"
        write_csv(
            TimeSeries(values=np.ones(4) * 100.0, interval=3600), stray
        )
        assert main(["replay", str(fleet_dir), str(stray)]) == 2
        assert "not in this fleet" in capsys.readouterr().err
