"""Logistic regression, linear SVM, Gaussian NB tests."""

import numpy as np
import pytest

from repro.ml import GaussianNB, LinearSVM, LogisticRegression


def linear_problem(rng, n=1000, d=4, margin=1.0):
    X = rng.normal(size=(n, d))
    y = (X[:, 0] - 0.5 * X[:, 1] + margin * 0.2 * rng.normal(size=n) > 0).astype(int)
    return X, y


class TestLogisticRegression:
    def test_learns_linear_boundary(self, rng):
        X, y = linear_problem(rng)
        model = LogisticRegression().fit(X[:700], y[:700])
        accuracy = (model.predict(X[700:]) == y[700:]).mean()
        assert accuracy > 0.9

    def test_probabilities_calibrated_direction(self, rng):
        X, y = linear_problem(rng)
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert proba[y == 1].mean() > proba[y == 0].mean()
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_regularization_shrinks_weights(self, rng):
        X, y = linear_problem(rng)
        loose = LogisticRegression(C=100.0).fit(X, y)
        tight = LogisticRegression(C=0.0001).fit(X, y)
        assert np.linalg.norm(tight.weights_) < np.linalg.norm(loose.weights_)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=0.0)

    def test_scale_invariant_after_standardization(self, rng):
        X, y = linear_problem(rng)
        a = LogisticRegression().fit(X, y).predict_proba(X)
        b = LogisticRegression().fit(X * 1000.0, y).predict_proba(X * 1000.0)
        np.testing.assert_allclose(a, b, atol=1e-4)


class TestLinearSVM:
    def test_learns_linear_boundary(self, rng):
        X, y = linear_problem(rng)
        model = LinearSVM().fit(X[:700], y[:700])
        accuracy = (model.predict(X[700:]) == y[700:]).mean()
        assert accuracy > 0.9

    def test_decision_function_sign_matches_prediction(self, rng):
        X, y = linear_problem(rng)
        model = LinearSVM().fit(X, y)
        margins = model.decision_function(X)
        np.testing.assert_array_equal(
            model.predict(X), (margins >= 0).astype(np.int8)
        )

    def test_proba_is_monotone_in_margin(self, rng):
        X, y = linear_problem(rng)
        model = LinearSVM().fit(X, y)
        margins = model.decision_function(X)
        proba = model.predict_proba(X)
        order = np.argsort(margins)
        assert (np.diff(proba[order]) >= -1e-12).all()


class TestGaussianNB:
    def test_learns_separated_gaussians(self, rng):
        n = 600
        X = np.vstack(
            [rng.normal(0, 1, (n // 2, 3)), rng.normal(3, 1, (n // 2, 3))]
        )
        y = np.array([0] * (n // 2) + [1] * (n // 2))
        model = GaussianNB().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_prior_shifts_probability(self, rng):
        # 90% negatives: ambiguous points should lean negative.
        X = rng.normal(0, 1, size=(1000, 2))
        y = (rng.random(1000) < 0.1).astype(int)
        model = GaussianNB().fit(X, y)
        assert model.predict_proba(X).mean() < 0.3

    def test_requires_both_classes(self, rng):
        X = rng.normal(size=(50, 2))
        with pytest.raises(ValueError, match="both classes"):
            GaussianNB().fit(X, np.zeros(50, dtype=int))

    def test_variance_floor_avoids_divide_by_zero(self, rng):
        X = np.zeros((100, 2))
        X[:, 1] = rng.normal(size=100)
        y = (X[:, 1] > 0).astype(int)
        model = GaussianNB().fit(X, y)
        proba = model.predict_proba(X)
        assert np.isfinite(proba).all()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=0.0)
