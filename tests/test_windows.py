"""Window <-> point label conversion, including property-based tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries import (
    AnomalyWindow,
    jitter_window,
    merge_windows,
    points_to_windows,
    subtract_window,
    windows_to_points,
)


class TestAnomalyWindow:
    def test_length(self):
        assert len(AnomalyWindow(2, 7)) == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AnomalyWindow(3, 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AnomalyWindow(-1, 3)

    def test_overlaps(self):
        a, b, c = AnomalyWindow(0, 5), AnomalyWindow(4, 8), AnomalyWindow(5, 9)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open: touching is not overlap

    def test_contains(self):
        w = AnomalyWindow(2, 5)
        assert w.contains(2) and w.contains(4)
        assert not w.contains(5)

    def test_ordering(self):
        assert AnomalyWindow(1, 3) < AnomalyWindow(2, 3)


class TestConversions:
    def test_windows_to_points(self):
        labels = windows_to_points([AnomalyWindow(1, 3)], 5)
        assert labels.tolist() == [0, 1, 1, 0, 0]

    def test_windows_clip_to_length(self):
        labels = windows_to_points([AnomalyWindow(3, 10)], 5)
        assert labels.tolist() == [0, 0, 0, 1, 1]

    def test_window_beyond_length_ignored(self):
        labels = windows_to_points([AnomalyWindow(7, 10)], 5)
        assert labels.sum() == 0

    def test_points_to_windows(self):
        windows = points_to_windows([0, 1, 1, 0, 1])
        assert windows == [AnomalyWindow(1, 3), AnomalyWindow(4, 5)]

    def test_points_to_windows_empty(self):
        assert points_to_windows([]) == []
        assert points_to_windows([0, 0]) == []

    def test_points_to_windows_all_anomalous(self):
        assert points_to_windows([1, 1, 1]) == [AnomalyWindow(0, 3)]

    def test_points_to_windows_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            points_to_windows(np.zeros((2, 2)))

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=200)
    )
    def test_roundtrip_points_windows_points(self, labels):
        windows = points_to_windows(labels)
        restored = windows_to_points(windows, len(labels))
        assert restored.tolist() == labels

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=1, max_value=20),
            ),
            max_size=10,
        )
    )
    def test_windows_points_windows_is_minimal_merge(self, raw):
        windows = [AnomalyWindow(b, b + length) for b, length in raw]
        labels = windows_to_points(windows, 80)
        recovered = points_to_windows(labels)
        # Recovered windows are disjoint, sorted, non-touching.
        for first, second in zip(recovered, recovered[1:]):
            assert first.end < second.begin
        # And they cover exactly the same points.
        assert windows_to_points(recovered, 80).tolist() == labels.tolist()


class TestMergeSubtract:
    def test_merge_overlapping(self):
        merged = merge_windows(
            [AnomalyWindow(0, 5), AnomalyWindow(3, 8), AnomalyWindow(10, 12)]
        )
        assert merged == [AnomalyWindow(0, 8), AnomalyWindow(10, 12)]

    def test_merge_touching(self):
        assert merge_windows([AnomalyWindow(0, 5), AnomalyWindow(5, 8)]) == [
            AnomalyWindow(0, 8)
        ]

    def test_subtract_middle_splits(self):
        remaining = subtract_window([AnomalyWindow(0, 10)], AnomalyWindow(3, 6))
        assert remaining == [AnomalyWindow(0, 3), AnomalyWindow(6, 10)]

    def test_subtract_whole_window(self):
        assert subtract_window([AnomalyWindow(2, 4)], AnomalyWindow(0, 10)) == []

    def test_subtract_edge_overlap(self):
        remaining = subtract_window([AnomalyWindow(0, 10)], AnomalyWindow(5, 15))
        assert remaining == [AnomalyWindow(0, 5)]

    def test_subtract_disjoint_is_noop(self):
        windows = [AnomalyWindow(0, 3)]
        assert subtract_window(windows, AnomalyWindow(5, 8)) == windows

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=1, max_value=15),
            ),
            max_size=8,
        ),
        st.tuples(
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=1, max_value=15),
        ),
    )
    def test_subtract_equals_pointwise_clearing(self, raw, cancel_raw):
        windows = merge_windows(
            AnomalyWindow(b, b + n) for b, n in raw
        )
        cancel = AnomalyWindow(cancel_raw[0], cancel_raw[0] + cancel_raw[1])
        length = 80
        expected = windows_to_points(windows, length)
        expected[cancel.begin: min(cancel.end, length)] = 0
        result = windows_to_points(subtract_window(windows, cancel), length)
        assert result.tolist() == expected.tolist()


class TestJitter:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30)
    def test_jitter_stays_valid(self, seed):
        rng = np.random.default_rng(seed)
        window = AnomalyWindow(10, 20)
        jittered = jitter_window(window, rng, max_shift=5, length=50)
        assert 0 <= jittered.begin < jittered.end <= 50

    def test_zero_shift_is_identity(self, rng):
        window = AnomalyWindow(10, 20)
        assert jitter_window(window, rng, 0, 50) == window

    def test_negative_shift_rejected(self, rng):
        with pytest.raises(ValueError):
            jitter_window(AnomalyWindow(0, 5), rng, -1, 50)
