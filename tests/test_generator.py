"""Synthetic KPI generator tests."""

import numpy as np
import pytest

from repro.data import GeneratedKPI, SeasonalProfile, generate_kpi
from repro.data.generator import _ar1_noise, _daily_shape


class TestDailyShape:
    def test_zero_mean_unit_peak(self, rng):
        shape = _daily_shape(rng, harmonics=4, points=144)
        assert shape.mean() == pytest.approx(0.0, abs=1e-12)
        assert np.abs(shape).max() == pytest.approx(1.0)

    def test_deterministic_per_seed(self):
        a = _daily_shape(np.random.default_rng(5), 3, 100)
        b = _daily_shape(np.random.default_rng(5), 3, 100)
        np.testing.assert_array_equal(a, b)


class TestAR1Noise:
    def test_stationary_scale(self, rng):
        noise = _ar1_noise(rng, 100_000, scale=0.1, ar=0.7)
        assert noise.std() == pytest.approx(0.1, rel=0.05)

    def test_autocorrelation_matches_ar(self, rng):
        noise = _ar1_noise(rng, 100_000, scale=1.0, ar=0.6)
        lag1 = np.corrcoef(noise[:-1], noise[1:])[0, 1]
        assert lag1 == pytest.approx(0.6, abs=0.03)

    def test_rejects_bad_ar(self, rng):
        with pytest.raises(ValueError):
            _ar1_noise(rng, 10, 1.0, 1.0)


class TestGenerateKPI:
    def test_length_and_interval(self):
        out = generate_kpi(weeks=2, interval=3600, seed=0)
        assert isinstance(out, GeneratedKPI)
        assert len(out.series) == 2 * 7 * 24
        assert out.series.interval == 3600

    def test_reproducible(self):
        a = generate_kpi(weeks=1, interval=3600, seed=9).series
        b = generate_kpi(weeks=1, interval=3600, seed=9).series
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = generate_kpi(weeks=1, interval=3600, seed=1).series
        b = generate_kpi(weeks=1, interval=3600, seed=2).series
        assert not np.array_equal(a.values, b.values)

    def test_non_negative_by_default(self):
        profile = SeasonalProfile(base_level=1.0, noise_scale=2.0, noise_ar=0.0)
        out = generate_kpi(weeks=1, interval=3600, profile=profile, seed=3)
        assert (out.series.values >= 0).all()

    def test_weekend_factor_lowers_weekends(self):
        profile = SeasonalProfile(
            weekend_factor=0.5, noise_scale=0.0, daily_amplitude=0.0, trend=0.0
        )
        out = generate_kpi(weeks=2, interval=3600, profile=profile, seed=0)
        ppd = out.series.points_per_day
        weekday_mean = out.series.values[:5 * ppd].mean()
        weekend_mean = out.series.values[5 * ppd:7 * ppd].mean()
        assert weekend_mean == pytest.approx(0.5 * weekday_mean, rel=1e-6)

    def test_trend_raises_level(self):
        profile = SeasonalProfile(
            trend=0.5, noise_scale=0.0, daily_amplitude=0.0, weekend_factor=1.0
        )
        out = generate_kpi(weeks=2, interval=3600, profile=profile, seed=0)
        assert out.series.values[-1] == pytest.approx(
            1.5 * out.series.values[0], rel=1e-9
        )

    def test_bursts_add_positive_spikes(self):
        quiet = SeasonalProfile(noise_scale=0.0, daily_amplitude=0.0, trend=0.0)
        bursty = SeasonalProfile(
            noise_scale=0.0, daily_amplitude=0.0, trend=0.0,
            burst_rate=0.05, burst_scale=5.0,
        )
        base = generate_kpi(weeks=2, interval=3600, profile=quiet, seed=4).series
        spiked = generate_kpi(weeks=2, interval=3600, profile=bursty, seed=4).series
        assert spiked.values.max() > base.values.max() + 1000.0
        assert (spiked.values >= base.values - 1e-9).all()

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="divide"):
            generate_kpi(weeks=1, interval=7000)

    def test_rejects_bad_weeks(self):
        with pytest.raises(ValueError, match="weeks"):
            generate_kpi(weeks=0, interval=3600)
