"""Gradient boosting tests."""

import numpy as np
import pytest

from repro.ml import GradientBoosting, RandomForest


def make_problem(rng, n=1500, noise_features=0):
    d = 3 + noise_features
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.6 * X[:, 1] - 0.4 * X[:, 2]
         + 0.4 * rng.normal(size=n) > 0.5).astype(int)
    return X, y


class TestGradientBoosting:
    def test_learns_signal(self, rng):
        X, y = make_problem(rng)
        split = 1000
        model = GradientBoosting(n_estimators=60, seed=0).fit(
            X[:split], y[:split]
        )
        accuracy = (model.predict(X[split:]) == y[split:]).mean()
        assert accuracy > 0.85

    def test_probabilities_in_unit_interval(self, rng):
        X, y = make_problem(rng, n=400)
        model = GradientBoosting(n_estimators=20, seed=0).fit(X, y)
        proba = model.predict_proba(X)
        assert ((proba > 0) & (proba < 1)).all()

    def test_more_rounds_fit_training_better(self, rng):
        X, y = make_problem(rng, n=600)
        few = GradientBoosting(n_estimators=5, seed=0).fit(X, y)
        many = GradientBoosting(n_estimators=100, seed=0).fit(X, y)
        from repro.evaluation import brier_score

        assert brier_score(many.predict_proba(X), y) < brier_score(
            few.predict_proba(X), y
        )

    def test_base_score_is_log_odds_of_rate(self, rng):
        X = rng.normal(size=(500, 2))
        y = (rng.random(500) < 0.2).astype(int)
        model = GradientBoosting(n_estimators=1, seed=0).fit(X, y)
        rate = y.mean()
        assert model.base_score_ == pytest.approx(
            np.log(rate / (1 - rate)), rel=1e-6
        )

    def test_reproducible_with_subsample(self, rng):
        X, y = make_problem(rng, n=500)
        a = GradientBoosting(n_estimators=20, subsample=0.7, seed=3).fit(X, y)
        b = GradientBoosting(n_estimators=20, subsample=0.7, seed=3).fit(X, y)
        np.testing.assert_array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_robust_to_redundant_features(self, rng):
        """Tree-based boosting shares the forest's Fig 10 robustness."""
        X, y = make_problem(rng, n=2000, noise_features=40)
        redundant = X[:, :3].repeat(4, axis=1)
        X_noisy = np.hstack([X, redundant])
        split = 1400
        model = GradientBoosting(n_estimators=60, seed=0).fit(
            X_noisy[:split], y[:split]
        )
        accuracy = (model.predict(X_noisy[split:]) == y[split:]).mean()
        assert accuracy > 0.8

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoosting(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoosting(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoosting(subsample=1.5)

    def test_competitive_with_forest_on_kpi_features(self, labeled_kpi):
        from repro.core import FeatureExtractor
        from repro.evaluation import aucpr
        from repro.ml import Imputer
        from test_opprentice import small_bank

        series = labeled_kpi.series
        matrix = FeatureExtractor(
            small_bank(series.points_per_week)
        ).extract(series)
        split = 3 * series.points_per_week
        imputer = Imputer().fit(matrix.values[:split])
        X = imputer.transform(matrix.values)
        y = series.labels
        gbm = GradientBoosting(n_estimators=60, seed=0).fit(X[:split], y[:split])
        forest = RandomForest(n_estimators=25, seed=0).fit(X[:split], y[:split])
        gbm_auc = aucpr(gbm.predict_proba(X[split:]), y[split:])
        rf_auc = aucpr(forest.predict_proba(X[split:]), y[split:])
        assert gbm_auc > 0.5
        assert abs(gbm_auc - rf_auc) < 0.35  # same ballpark
