"""§5.8 latency ordering, measured from recorded spans.

The paper reports per-point feature extraction around 0.15 s while
classifying one point takes under 0.0001 s — classification is orders
of magnitude cheaper than running the detector bank. This tier-1 test
re-derives that ordering from the observability spans on a small KPI:

    per-point classification  <  per-point feature extraction  <  interval

The margins are deliberately generous (the real gap is 100x+; we only
assert strict ordering) so the test is not flaky on slow CI runners.
"""

import pytest

from repro.core import EWMAPredictor, Opprentice
from repro.detectors import default_configs
from repro.obs import ObservabilityProvider, set_provider
from repro.evaluation import MODERATE_PREFERENCE
from repro.ml import RandomForest


@pytest.fixture()
def provider():
    """A fresh live provider installed for the duration of one test."""
    provider = ObservabilityProvider()
    previous = set_provider(provider)
    yield provider
    set_provider(previous)


def _per_point_seconds(provider, span_name):
    """Total wall time over total points for every span of a name."""
    spans = provider.tracer.find(span_name)
    assert spans, f"no {span_name!r} spans recorded"
    total = sum(span.duration for span in spans)
    points = sum(span.meta["n_points"] for span in spans)
    assert points > 0
    return total / points


def test_classification_much_cheaper_than_extraction(provider, labeled_kpi):
    series = labeled_kpi.series
    ppw = series.points_per_week
    train = series.slice(0, 3 * ppw)

    # Pre-seed the EWMA predictor so fit() skips the 5-fold CV round:
    # the test times extraction vs classification, not cThld search.
    predictor = EWMAPredictor(MODERATE_PREFERENCE)
    predictor.observe_best(0.5)

    opp = Opprentice(
        configs=default_configs(series.interval),
        classifier_factory=lambda: RandomForest(n_estimators=15, seed=0),
        cthld_predictor=predictor,
    )
    opp.fit(train)
    result = opp.detect(series.slice(3 * ppw, 4 * ppw))
    assert len(result.predictions) == ppw

    extract_pp = _per_point_seconds(provider, "feature_matrix.extract")
    classify_pp = _per_point_seconds(provider, "classify.score_features")

    # §5.8 ordering. Extraction runs the full Table 3 bank per point;
    # classification is one forest predict_proba. Even on a loaded CI
    # box the bank costs far more than the forest, and both must beat
    # the data interval or the detector cannot keep up with the stream.
    assert classify_pp < extract_pp, (
        f"classification ({classify_pp:.2e}s/pt) should be cheaper than "
        f"feature extraction ({extract_pp:.2e}s/pt)"
    )
    assert extract_pp < series.interval

    # The spans also fed the Prometheus-side latency histograms.
    snapshot = provider.snapshot()
    names = {m["name"] for m in snapshot["metrics"]}
    assert "repro_span_seconds" in names
