"""Label triage tests."""

import numpy as np
import pytest

from repro.labeling import suggest_windows, triage_queue_minutes
from repro.timeseries import AnomalyWindow


class TestSuggestWindows:
    def test_high_score_runs_suggested(self):
        scores = np.array([0.1, 0.1, 0.9, 0.95, 0.9, 0.1, 0.1])
        candidates = suggest_windows(scores, context_points=0)
        assert len(candidates) == 1
        assert candidates[0].window == AnomalyWindow(2, 5)
        assert candidates[0].peak_score == pytest.approx(0.95)
        assert candidates[0].mean_score == pytest.approx(
            np.mean([0.9, 0.95, 0.9])
        )

    def test_context_padding(self):
        scores = np.array([0.1, 0.1, 0.9, 0.1, 0.1])
        candidates = suggest_windows(scores, context_points=2)
        assert candidates[0].window == AnomalyWindow(0, 5)

    def test_labeled_regions_excluded(self):
        scores = np.array([0.9, 0.9, 0.1, 0.9, 0.9])
        labeled = np.array([True, True, False, False, False])
        candidates = suggest_windows(
            scores, labeled_mask=labeled, context_points=0
        )
        assert len(candidates) == 1
        assert candidates[0].window.begin == 3

    def test_sorted_by_peak_descending(self):
        scores = np.array([0.5, 0.0, 0.99, 0.0, 0.7])
        candidates = suggest_windows(scores, context_points=0)
        peaks = [c.peak_score for c in candidates]
        assert peaks == sorted(peaks, reverse=True)

    def test_max_candidates_cap(self):
        scores = np.array([0.9, 0.0] * 20)
        candidates = suggest_windows(
            scores, max_candidates=3, context_points=0
        )
        assert len(candidates) == 3

    def test_nearby_runs_merge(self):
        scores = np.array([0.9, 0.0, 0.9, 0.0, 0.0, 0.9])
        merged = suggest_windows(scores, min_gap=2, context_points=0)
        # Runs at 0 and 2 merge (gap 1 < 2); the run at 5 stays apart.
        assert len(merged) == 2
        assert merged[0].window.begin in (0, 5)

    def test_nan_scores_never_suggested(self):
        scores = np.array([np.nan, np.nan, 0.9, np.nan])
        candidates = suggest_windows(scores, context_points=0)
        assert len(candidates) == 1
        assert candidates[0].window == AnomalyWindow(2, 3)

    def test_empty_and_validation(self):
        assert suggest_windows(np.array([])) == []
        with pytest.raises(ValueError):
            suggest_windows(np.array([0.5]), score_threshold=2.0)
        with pytest.raises(ValueError):
            suggest_windows(
                np.array([0.5, 0.5]), labeled_mask=np.array([True])
            )

    def test_triage_finds_the_real_anomalies(self, labeled_kpi):
        """End to end: a trained forest's triage queue points at the
        injected anomalies."""
        from repro.core import Opprentice
        from test_opprentice import fast_forest, small_bank

        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series)
        scores = opp.anomaly_scores(series)
        candidates = suggest_windows(scores, score_threshold=0.5)
        assert candidates
        labels = series.labels.astype(bool)
        hits = sum(
            1 for c in candidates
            if labels[c.window.begin: c.window.end].any()
        )
        assert hits / len(candidates) > 0.7


class TestQueueMinutes:
    def test_linear_in_candidates(self):
        scores = np.array([0.9, 0.0] * 5)
        candidates = suggest_windows(scores, context_points=0)
        minutes = triage_queue_minutes(candidates, seconds_per_window=12.0)
        assert minutes == pytest.approx(len(candidates) * 0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            triage_queue_minutes([], seconds_per_window=0.0)
