"""Anomaly injection tests: exact ground truth, target fractions."""

import numpy as np
import pytest

from repro.data import (
    drop_points,
    inject_anomalies,
    inject_dip,
    inject_jitter,
    inject_level_shift,
    inject_ramp,
    inject_spike,
)
from repro.timeseries import windows_to_points


class TestInjectors:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_spike_raises_values(self):
        values = np.full(10, 100.0)
        inject_spike(values, self.rng, level=1.0)
        assert values[0] > 150.0
        assert (values >= 100.0).all()

    def test_spike_decays(self):
        values = np.full(10, 100.0)
        inject_spike(values, self.rng, level=1.0)
        assert values[0] > values[-1]

    def test_dip_scales_with_level(self):
        mild, severe = np.full(5, 100.0), np.full(5, 100.0)
        inject_dip(mild, self.rng, level=0.2)
        inject_dip(severe, self.rng, level=2.0)
        assert severe[0] < mild[0] < 100.0

    def test_dip_never_exceeds_90_percent(self):
        values = np.full(5, 100.0)
        inject_dip(values, self.rng, level=100.0)
        assert values[0] == pytest.approx(10.0)

    def test_ramp_is_monotone_increase(self):
        values = np.full(10, 100.0)
        inject_ramp(values, self.rng, level=1.0)
        assert values[0] == pytest.approx(100.0)
        assert (np.diff(values) > 0).all()

    def test_jitter_alternates(self):
        values = np.full(10, 100.0)
        inject_jitter(values, self.rng, level=1.0)
        deltas = values - 100.0
        assert (deltas[::2] > 0).all()
        assert (deltas[1::2] < 0).all()

    def test_level_shift_is_constant(self):
        values = np.full(10, 100.0)
        inject_level_shift(values, self.rng, level=1.0)
        shifts = values - 100.0
        assert np.allclose(shifts, shifts[0])
        assert abs(shifts[0]) > 10.0


class TestInjectAnomalies:
    def test_target_fraction_hit(self, hourly_kpi):
        result = inject_anomalies(hourly_kpi, target_fraction=0.05, seed=1)
        assert result.series.anomaly_fraction() == pytest.approx(0.05, abs=0.01)

    def test_labels_match_windows(self, hourly_kpi):
        result = inject_anomalies(hourly_kpi, target_fraction=0.05, seed=1)
        expected = windows_to_points(result.windows, len(hourly_kpi))
        np.testing.assert_array_equal(result.series.labels, expected)

    def test_windows_are_disjoint_and_sorted(self, hourly_kpi):
        result = inject_anomalies(hourly_kpi, target_fraction=0.08, seed=2)
        for a, b in zip(result.windows, result.windows[1:]):
            assert a.end < b.begin

    def test_values_change_only_inside_windows(self, hourly_kpi):
        result = inject_anomalies(hourly_kpi, target_fraction=0.05, seed=3)
        labels = result.series.labels.astype(bool)
        np.testing.assert_array_equal(
            result.series.values[~labels], hourly_kpi.values[~labels]
        )
        assert not np.allclose(
            result.series.values[labels], hourly_kpi.values[labels]
        )

    def test_kinds_recorded(self, hourly_kpi):
        result = inject_anomalies(hourly_kpi, target_fraction=0.08, seed=4)
        assert len(result.kinds) >= len(result.windows) > 0
        assert set(result.kinds) <= {
            "spike", "dip", "ramp", "jitter", "level_shift"
        }

    def test_reproducible(self, hourly_kpi):
        a = inject_anomalies(hourly_kpi, target_fraction=0.05, seed=5)
        b = inject_anomalies(hourly_kpi, target_fraction=0.05, seed=5)
        np.testing.assert_array_equal(a.series.values, b.series.values)
        assert a.windows == b.windows

    def test_rejects_bad_fraction(self, hourly_kpi):
        with pytest.raises(ValueError):
            inject_anomalies(hourly_kpi, target_fraction=0.0)
        with pytest.raises(ValueError):
            inject_anomalies(hourly_kpi, target_fraction=0.6)

    def test_preserves_missing_points(self, hourly_kpi):
        dirty = drop_points(hourly_kpi, fraction=0.1, seed=6)
        result = inject_anomalies(dirty, target_fraction=0.05, seed=6)
        assert result.series.n_missing == dirty.n_missing


class TestDropPoints:
    def test_fraction_dropped(self, hourly_kpi):
        dirty = drop_points(hourly_kpi, fraction=0.2, seed=0)
        assert dirty.n_missing == round(0.2 * len(hourly_kpi))

    def test_zero_fraction_is_identity(self, hourly_kpi):
        clean = drop_points(hourly_kpi, fraction=0.0)
        np.testing.assert_array_equal(clean.values, hourly_kpi.values)

    def test_rejects_bad_fraction(self, hourly_kpi):
        with pytest.raises(ValueError):
            drop_points(hourly_kpi, fraction=1.0)

    def test_labels_preserved(self, labeled_kpi):
        dirty = drop_points(labeled_kpi.series, fraction=0.1, seed=1)
        np.testing.assert_array_equal(dirty.labels, labeled_kpi.series.labels)
