"""Detection-delay metric tests."""

import numpy as np
import pytest

from repro.evaluation import DelayReport, detection_delays


class TestDetectionDelays:
    def test_immediate_detection(self):
        labels = np.array([0, 1, 1, 1, 0])
        preds = np.array([0, 1, 0, 0, 0])
        report = detection_delays(preds, labels)
        assert report.n_windows == 1
        assert report.window_recall == 1.0
        assert report.mean_delay() == 0.0

    def test_delayed_detection(self):
        labels = np.array([0, 1, 1, 1, 1, 0])
        preds = np.array([0, 0, 0, 1, 1, 0])
        report = detection_delays(preds, labels)
        assert report.mean_delay() == 2.0

    def test_missed_window(self):
        labels = np.array([1, 1, 0, 1, 1])
        preds = np.array([1, 0, 0, 0, 0])
        report = detection_delays(preds, labels)
        assert report.window_recall == pytest.approx(0.5)
        assert report.detections[1].delay_points is None

    def test_detection_outside_windows_ignored(self):
        labels = np.array([0, 0, 1, 1, 0])
        preds = np.array([1, 1, 0, 0, 1])
        report = detection_delays(preds, labels)
        assert report.window_recall == 0.0

    def test_negative_placeholders_not_detections(self):
        labels = np.array([1, 1, 1])
        preds = np.array([-1, -1, 1])
        report = detection_delays(preds, labels)
        assert report.mean_delay() == 2.0

    def test_caught_within(self):
        labels = np.array([1, 1, 1, 0, 1, 1, 1, 0, 1, 1])
        preds = np.array([0, 1, 0, 0, 0, 0, 1, 0, 0, 0])
        report = detection_delays(preds, labels)
        # Delays: 1, 2, missed.
        assert report.caught_within(1) == pytest.approx(1 / 3)
        assert report.caught_within(2) == pytest.approx(2 / 3)

    def test_percentiles(self):
        labels = np.tile([1, 1, 1, 1, 0], 4)
        preds = np.zeros(20, dtype=int)
        preds[[0, 6, 12, 18]] = 1  # delays 0, 1, 2, 3
        report = detection_delays(preds, labels)
        assert report.delay_percentile(50) == pytest.approx(1.5)

    def test_empty_and_error_paths(self):
        report = detection_delays(np.zeros(5, int), np.zeros(5, int))
        assert report.n_windows == 0
        with pytest.raises(ValueError):
            _ = report.window_recall
        with pytest.raises(ValueError):
            report.mean_delay()
        with pytest.raises(ValueError):
            detection_delays(np.zeros(4, int), np.zeros(5, int))

    def test_end_to_end_with_forest(self, labeled_kpi):
        """Opprentice catches most windows within a few points."""
        from repro.core import Opprentice
        from test_opprentice import fast_forest, small_bank

        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series)
        result = opp.detect(series)
        report = detection_delays(result.predictions, series.labels)
        assert report.window_recall > 0.6
        assert report.delay_percentile(50) <= 2.0
