"""TSD / TSD MAD / historical average / historical MAD tests.

These detectors compare each point with the same phase in previous
periods, so the tests build series with exactly known periodic
structure (tiny periods keep the arithmetic checkable by hand).
"""

import numpy as np
import pytest

from repro.detectors import (
    DetectorError,
    HistoricalAverage,
    HistoricalMad,
    TSD,
    TSDMad,
)
from repro.timeseries import TimeSeries


def ts(values, interval=60):
    return TimeSeries(values=np.asarray(values, dtype=float), interval=interval)


class TestTSD:
    def test_residual_from_phase_mean(self):
        # "Week" of 3 points, window 2 weeks.
        values = [1.0, 2.0, 3.0,   3.0, 4.0, 5.0,   2.0, 9.0, 4.0]
        detector = TSD(window_weeks=2, points_per_week=3)
        out = detector.severities(ts(values))
        assert np.isnan(out[:6]).all()
        assert out[6] == pytest.approx(abs(2.0 - (1.0 + 3.0) / 2))
        assert out[7] == pytest.approx(abs(9.0 - (2.0 + 4.0) / 2))
        assert out[8] == pytest.approx(abs(4.0 - (3.0 + 5.0) / 2))

    def test_warmup_length(self):
        assert TSD(3, 10).warmup() == 30

    def test_periodic_series_scores_zero(self):
        pattern = [5.0, 8.0, 2.0, 6.0]
        values = pattern * 6
        out = TSD(window_weeks=2, points_per_week=4).severities(ts(values))
        assert np.nanmax(out) == pytest.approx(0.0)

    def test_anomaly_scores_high(self):
        pattern = [5.0, 8.0, 2.0, 6.0]
        values = np.array(pattern * 6, dtype=float)
        values[18] += 50.0
        out = TSD(window_weeks=2, points_per_week=4).severities(ts(values))
        assert out[18] == pytest.approx(50.0)

    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            TSD(0, 10)
        with pytest.raises(DetectorError):
            TSD(2, 0)


class TestTSDMad:
    def test_median_baseline_resists_past_anomaly(self):
        # Phase history (10, 10, 100): mean is polluted, median is not.
        week = [10.0, 0.0, 0.0]
        values = np.array(week * 4, dtype=float)
        values[3] = 100.0  # an old anomaly at phase 0 in week 2
        mean_detector = TSD(window_weeks=3, points_per_week=3)
        median_detector = TSDMad(window_weeks=3, points_per_week=3)
        mean_out = mean_detector.severities(ts(values))
        median_out = median_detector.severities(ts(values))
        # Point 9 (phase 0, value 10) is normal; the contaminated mean
        # baseline flags it, the median baseline does not.
        assert median_out[9] == pytest.approx(0.0)
        assert mean_out[9] == pytest.approx(30.0)

    def test_equals_tsd_for_window_one(self, rng):
        values = rng.normal(50.0, 5.0, size=30)
        a = TSD(1, 5).severities(ts(values))
        b = TSDMad(1, 5).severities(ts(values))
        np.testing.assert_allclose(a, b, equal_nan=True)


class TestHistoricalAverage:
    def _daily(self, daily_values):
        """Build a series from consecutive 'days' of 2 points each."""
        return ts(np.concatenate(daily_values))

    def test_zscore_semantics(self):
        # 7 days of history per phase needed for win=1 week, ppd=2.
        days = [[10.0, 20.0]] * 7 + [[16.0, 20.0]]
        values = np.concatenate(days)
        # Add variation so the std is nonzero: perturb day values.
        values[::2] += np.arange(8.0)  # phase-0 values: 10..17
        detector = HistoricalAverage(window_weeks=1, points_per_day=2)
        out = detector.severities(ts(values))
        phase0_history = values[0:14:2]
        expected = abs(values[14] - phase0_history.mean()) / phase0_history.std()
        assert out[14] == pytest.approx(expected)

    def test_warmup(self):
        assert HistoricalAverage(2, 24).warmup() == 14 * 24

    def test_constant_history_uses_floor_not_inf(self):
        values = [10.0, 20.0] * 7 + [15.0, 20.0]
        out = HistoricalAverage(1, 2).severities(ts(values))
        assert np.isfinite(out[14])
        assert out[14] > 1e3  # tiny floor -> very large severity

    def test_spike_scores_higher_than_normal(self, rng):
        base = np.tile(rng.normal(100.0, 3.0, size=4), 20)
        values = base + rng.normal(0, 1.0, size=80)
        values[70] += 60.0
        # 4-point "days", window 1 week = 7 days of history.
        out = HistoricalAverage(1, 4).severities(ts(values))
        normal = np.nanmedian(out)
        assert out[70] > 5 * normal


class TestHistoricalMad:
    def test_robust_to_outlier_history(self):
        # Phase-0 history: six 10s and one 1000 (an old anomaly).
        values = np.array([10.0, 5.0] * 7 + [12.0, 5.0])
        values[::2] += np.linspace(0, 1, 8)  # break exact ties
        values[6] = 1000.0
        mad_detector = HistoricalMad(1, 2)
        avg_detector = HistoricalAverage(1, 2)
        mad_out = mad_detector.severities(ts(values))
        avg_out = avg_detector.severities(ts(values))
        # The outlier inflates the average detector's std so much that
        # it underweights the current deviation relative to MAD.
        assert np.isfinite(mad_out[14]) and np.isfinite(avg_out[14])
        assert mad_out[14] > avg_out[14]

    def test_missing_history_ignored(self):
        values = np.array([10.0, 5.0] * 7 + [12.0, 5.0])
        values[::2] += np.linspace(0, 1, 8)
        clean = HistoricalMad(1, 2).severities(ts(values.copy()))
        values[2] = np.nan  # knock out one history point
        dirty = HistoricalMad(1, 2).severities(ts(values))
        assert np.isfinite(dirty[14])
        # Severity changes but stays in the same ballpark.
        assert dirty[14] == pytest.approx(clean[14], rel=2.0)

    def test_nan_current_point_gives_nan(self):
        values = np.array([10.0, 5.0] * 8)
        values[14] = np.nan
        out = HistoricalMad(1, 2).severities(ts(values))
        assert np.isnan(out[14])
