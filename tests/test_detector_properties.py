"""Property-based tests over the whole detector bank.

Three invariants every configuration must satisfy (§4.3):

1. **Causality** — the severity of point t must not change when future
   points are appended (online detection requirement, §4.3.2).
2. **Stream/batch agreement** — the online stream must produce exactly
   the batch severities.
3. **Severity model** — severities are non-negative where defined, and
   the warm-up prefix is NaN.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import (
    ARIMA,
    Diff,
    EWMA,
    HistoricalAverage,
    HistoricalMad,
    HoltWinters,
    MAOfDiff,
    SVDDetector,
    SimpleMA,
    SimpleThreshold,
    TSD,
    TSDMad,
    WaveletDetector,
    WeightedMA,
)
from repro.timeseries import TimeSeries

#: Small-window instances of all 14 detector kinds, sized so that a
#: ~60-point series exercises them past warm-up. ARIMA is excluded from
#: the quick bank (needs >= 50 fit points) and tested separately.
QUICK_BANK = [
    SimpleThreshold(),
    Diff("last-slot", 1),
    Diff("last-day", 6),
    Diff("last-week", 12),
    SimpleMA(5),
    WeightedMA(5),
    MAOfDiff(4),
    EWMA(0.3),
    TSD(2, 12),
    TSDMad(2, 12),
    HistoricalAverage(1, 2),  # 2-point "days": 14-point warm-up
    HistoricalMad(1, 2),
    HoltWinters(0.4, 0.4, 0.4, 6),
    SVDDetector(5, 3),
    WaveletDetector(1, "high", 12),
]

BANK_IDS = [d.feature_name for d in QUICK_BANK]


def ts(values):
    return TimeSeries(values=np.asarray(values, dtype=float), interval=60)


values_strategy = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    min_size=40,
    max_size=70,
)


@pytest.mark.parametrize("detector", QUICK_BANK, ids=BANK_IDS)
class TestBankInvariants:
    @given(values=values_strategy)
    @settings(max_examples=15, deadline=None)
    def test_causality(self, detector, values):
        """Appending future data never changes past severities."""
        full = detector.severities(ts(values + [9e3, -9e3, 0.0]))
        prefix = detector.severities(ts(values))
        np.testing.assert_allclose(
            full[: len(values)], prefix, equal_nan=True, atol=1e-9,
            err_msg=detector.feature_name,
        )

    @given(values=values_strategy)
    @settings(max_examples=10, deadline=None)
    def test_severities_non_negative(self, detector, values):
        out = detector.severities(ts(values))
        finite = out[np.isfinite(out)]
        if detector.feature_name == "simple threshold":
            return  # raw value can be negative by design
        assert (finite >= 0).all(), detector.feature_name

    @given(values=values_strategy)
    @settings(max_examples=10, deadline=None)
    def test_warmup_prefix_is_nan(self, detector, values):
        out = detector.severities(ts(values))
        warmup = min(detector.warmup(), len(values))
        assert np.isnan(out[:warmup]).all(), detector.feature_name

    @given(values=values_strategy)
    @settings(max_examples=5, deadline=None)
    def test_output_length(self, detector, values):
        assert len(detector.severities(ts(values))) == len(values)


@pytest.mark.parametrize("detector", QUICK_BANK, ids=BANK_IDS)
def test_stream_matches_batch(detector, rng):
    values = rng.normal(100.0, 15.0, size=60)
    batch = detector.severities(ts(values))
    stream = detector.stream()
    online = np.array([stream.update(v) for v in values])
    np.testing.assert_allclose(
        online, batch, equal_nan=True, atol=1e-9, err_msg=detector.feature_name
    )


def test_arima_causality(rng):
    values = rng.normal(50.0, 5.0, size=150)
    detector = ARIMA(fit_points=100)
    prefix = detector.severities(ts(values))
    extended = detector.severities(ts(np.concatenate([values, [500.0, 0.0]])))
    np.testing.assert_allclose(
        extended[:150], prefix, equal_nan=True, atol=1e-9
    )


def test_arima_stream_matches_batch(rng):
    values = rng.normal(50.0, 5.0, size=120)
    detector = ARIMA(fit_points=100)
    batch = detector.severities(ts(values))
    stream = detector.stream()
    online = np.array([stream.update(v) for v in values])
    np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)


def test_feature_names_unique_across_bank():
    names = [d.feature_name for d in QUICK_BANK]
    assert len(names) == len(set(names))


@pytest.mark.parametrize("detector", QUICK_BANK, ids=BANK_IDS)
def test_constant_series_severity_is_zero_or_nan(detector):
    """A perfectly flat series contains no anomalies: every defined
    severity must be 0 (simple threshold reports the constant itself)."""
    out = detector.severities(ts([42.0] * 60))
    finite = out[np.isfinite(out)]
    if detector.feature_name == "simple threshold":
        assert (finite == 42.0).all()
    else:
        assert np.allclose(finite, 0.0, atol=1e-9), detector.feature_name
