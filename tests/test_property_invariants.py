"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* input, spanning evaluation, cThld
selection, resampling, triage and persistence — the contracts the rest
of the system builds on.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    AccuracyPreference,
    DefaultCThld,
    FScoreSelector,
    PCScoreSelector,
    SDSelector,
    aucpr,
    evaluate_threshold,
    pc_score,
    pr_curve,
)
from repro.labeling import suggest_windows
from repro.timeseries import TimeSeries, downsample


def scores_and_labels(draw, min_size=5, max_size=120):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    scores = rng.random(n)
    labels = (rng.random(n) < draw(
        st.floats(min_value=0.05, max_value=0.6)
    )).astype(int)
    if labels.sum() == 0:
        labels[int(rng.integers(0, n))] = 1
    return scores, labels


@st.composite
def score_label_pairs(draw):
    return scores_and_labels(draw)


class TestPRCurveInvariants:
    @given(data=score_label_pairs())
    @settings(max_examples=40, deadline=None)
    def test_every_curve_point_is_achievable(self, data):
        """Each PR-curve point must be reproducible by thresholding at
        the point's own threshold — the contract the cThld selectors
        rely on."""
        scores, labels = data
        curve = pr_curve(scores, labels)
        for i in range(0, len(curve), max(1, len(curve) // 5)):
            recall, precision = evaluate_threshold(
                scores, labels, curve.thresholds[i]
            )
            assert recall == pytest.approx(curve.recalls[i])
            assert precision == pytest.approx(curve.precisions[i])

    @given(data=score_label_pairs())
    @settings(max_examples=40, deadline=None)
    def test_aucpr_bounded_by_curve_extremes(self, data):
        scores, labels = data
        curve = pr_curve(scores, labels)
        value = aucpr(scores, labels)
        assert curve.precisions.min() - 1e-12 <= value
        assert value <= curve.precisions.max() + 1e-12

    @given(data=score_label_pairs())
    @settings(max_examples=40, deadline=None)
    def test_final_curve_point_is_full_recall(self, data):
        scores, labels = data
        curve = pr_curve(scores, labels)
        assert curve.recalls[-1] == pytest.approx(1.0)
        # Precision at full recall equals base rate among scored points.
        assert curve.precisions[-1] == pytest.approx(labels.mean())


class TestSelectorInvariants:
    @given(data=score_label_pairs(),
           r=st.floats(min_value=0.1, max_value=0.9),
           p=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_pcscore_selection_is_argmax(self, data, r, p):
        """No curve point may have a higher PC-Score than the selected
        one — the §4.5.1 definition."""
        scores, labels = data
        preference = AccuracyPreference(r, p)
        curve = pr_curve(scores, labels)
        choice = PCScoreSelector(preference).select_from_curve(curve)
        best = max(
            pc_score(rr, pp, preference)
            for rr, pp in zip(curve.recalls, curve.precisions)
        )
        assert pc_score(
            choice.recall, choice.precision, preference
        ) == pytest.approx(best)

    @given(data=score_label_pairs())
    @settings(max_examples=30, deadline=None)
    def test_all_selectors_return_curve_points(self, data):
        scores, labels = data
        curve = pr_curve(scores, labels)
        points = set(zip(curve.recalls.round(12), curve.precisions.round(12)))
        for selector in (
            PCScoreSelector(AccuracyPreference(0.5, 0.5)),
            FScoreSelector(),
            SDSelector(),
        ):
            choice = selector.select_from_curve(curve)
            assert (round(choice.recall, 12), round(choice.precision, 12)) in points


class TestResampleInvariants:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                 min_size=4, max_size=60),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_downsample_preserves_global_mean(self, values, factor):
        assume(len(values) >= factor)
        ts = TimeSeries(values=np.asarray(values), interval=60)
        out = downsample(ts, factor)
        n_used = (len(values) // factor) * factor
        assert out.values.mean() == pytest.approx(
            np.mean(values[:n_used]), rel=1e-9, abs=1e-9
        )

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=4,
                 max_size=60),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_label_any_semantics(self, labels, factor):
        assume(len(labels) >= factor)
        ts = TimeSeries(
            values=np.zeros(len(labels)), interval=60,
            labels=np.asarray(labels, dtype=np.int8),
        )
        out = downsample(ts, factor)
        n_blocks = len(labels) // factor
        for b in range(n_blocks):
            block = labels[b * factor: (b + 1) * factor]
            assert out.labels[b] == int(any(block))


class TestTriageInvariants:
    @given(data=score_label_pairs())
    @settings(max_examples=30, deadline=None)
    def test_suggestions_cover_every_hot_point(self, data):
        """Every unlabelled above-threshold point falls inside some
        suggested window (given no candidate cap)."""
        scores, _ = data
        candidates = suggest_windows(
            scores, score_threshold=0.7, max_candidates=10_000,
            context_points=0,
        )
        hot = np.flatnonzero(scores >= 0.7)
        for index in hot:
            assert any(
                c.window.begin <= index < c.window.end for c in candidates
            )

    @given(data=score_label_pairs())
    @settings(max_examples=30, deadline=None)
    def test_no_suggestion_without_hot_points(self, data):
        scores, _ = data
        assume(scores.max() < 1.0)  # rng.random() is always < 1
        candidates = suggest_windows(scores, score_threshold=1.0)
        assert candidates == []


class TestForestSerializationProperty:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_identity_for_random_forests(self, seed):
        from repro.ml import RandomForest

        rng = np.random.default_rng(seed)
        X = rng.normal(size=(120, 4))
        y = (X[:, 0] + 0.5 * rng.normal(size=120) > 0).astype(int)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        forest = RandomForest(n_estimators=5, seed=seed).fit(X, y)
        clone = RandomForest.from_dict(forest.to_dict())
        probe = rng.normal(size=(40, 4))
        np.testing.assert_array_equal(
            clone.predict_proba(probe), forest.predict_proba(probe)
        )


class TestDefaultCThldInvariant:
    @given(data=score_label_pairs())
    @settings(max_examples=30, deadline=None)
    def test_default_selector_equals_direct_thresholding(self, data):
        scores, labels = data
        choice = DefaultCThld().select(scores, labels)
        recall, precision = evaluate_threshold(scores, labels, 0.5)
        assert choice.recall == pytest.approx(recall)
        assert choice.precision == pytest.approx(precision)
