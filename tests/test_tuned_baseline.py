"""TunedBasicDetector baseline tests."""

import numpy as np
import pytest

from repro.combiners import TunedBasicDetector
from repro.evaluation import AccuracyPreference, precision_recall


def tuned_problem(rng, n=600):
    """Column 1 is a clean detector; 0 and 2 are noise."""
    labels = (rng.random(n) < 0.15).astype(int)
    good = labels * 8.0 + rng.normal(0, 0.5, n)
    features = np.column_stack(
        [np.abs(rng.normal(0, 1, n)), good, np.abs(rng.normal(0, 1, n))]
    )
    return features, labels


class TestTunedBasicDetector:
    def test_selects_best_configuration(self, rng):
        features, labels = tuned_problem(rng)
        baseline = TunedBasicDetector(
            feature_names=["junk-a", "good", "junk-b"]
        ).fit(features, labels)
        assert baseline.selected_column_ == 1
        assert baseline.selected_name == "good"

    def test_tuned_threshold_separates(self, rng):
        features, labels = tuned_problem(rng)
        baseline = TunedBasicDetector().fit(features, labels)
        test_features, test_labels = tuned_problem(rng)
        predictions = baseline.predict(test_features)
        recall, precision = precision_recall(
            predictions.astype(float), test_labels
        )
        assert recall > 0.9 and precision > 0.9

    def test_preference_steers_threshold(self, rng):
        """A recall-hungry preference tunes a lower sThld than a
        precision-hungry one (on an imperfect detector)."""
        n = 2000
        labels = (rng.random(n) < 0.2).astype(int)
        noisy = labels * 2.0 + rng.normal(0, 1.0, n)
        features = noisy[:, None]
        low = TunedBasicDetector(AccuracyPreference(0.9, 0.1)).fit(
            features, labels
        )
        high = TunedBasicDetector(AccuracyPreference(0.1, 0.9)).fit(
            features, labels
        )
        assert low.sthld_ < high.sthld_

    def test_nan_severities_become_missing_predictions(self, rng):
        features, labels = tuned_problem(rng)
        baseline = TunedBasicDetector().fit(features, labels)
        dirty = features.copy()
        dirty[0, baseline.selected_column_] = np.nan
        predictions = baseline.predict(dirty)
        assert predictions[0] == -1

    def test_all_nan_columns_skipped(self, rng):
        features, labels = tuned_problem(rng)
        features[:, 0] = np.nan
        baseline = TunedBasicDetector().fit(features, labels)
        assert baseline.selected_column_ != 0

    def test_validation(self, rng):
        features, labels = tuned_problem(rng)
        baseline = TunedBasicDetector()
        with pytest.raises(RuntimeError):
            baseline.score(features)
        with pytest.raises(ValueError, match="anomalies"):
            baseline.fit(features, np.zeros(len(labels), dtype=int))
        with pytest.raises(ValueError):
            baseline.fit(features, labels[:-1])
        fitted = TunedBasicDetector().fit(features, labels)
        with pytest.raises(ValueError):
            fitted.score(features[:, :1])

    def test_generalization_gap_vs_training_pick(self, rng):
        """The manual-tuning pitfall: the configuration that looked best
        on training may not be best on test. We only check the baseline
        reports its training-time choice faithfully."""
        features, labels = tuned_problem(rng)
        baseline = TunedBasicDetector().fit(features, labels)
        from repro.evaluation import aucpr

        train_aucs = [
            aucpr(features[:, j], labels) for j in range(features.shape[1])
        ]
        assert baseline.selected_column_ == int(np.argmax(train_aucs))
