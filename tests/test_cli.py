"""CLI tests: the full operator workflow through `repro.cli.main`."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.timeseries import read_csv


@pytest.fixture(scope="module")
def workflow(tmp_path_factory):
    """Shared artifacts: a generated KPI CSV and a trained model."""
    root = tmp_path_factory.mktemp("cli")
    kpi_csv = root / "srt.csv"
    model = root / "model.json"
    assert main([
        "generate", "--kpi", "SRT", "--weeks", "4", "--out", str(kpi_csv),
    ]) == 0
    assert main([
        "train", str(kpi_csv), "--model", str(model), "--trees", "10",
    ]) == 0
    return kpi_csv, model


class TestGenerate:
    def test_writes_labelled_csv(self, tmp_path):
        out = tmp_path / "pv.csv"
        assert main([
            "generate", "--kpi", "PV", "--weeks", "1", "--out", str(out),
        ]) == 0
        series = read_csv(out)
        assert series.is_labeled
        assert len(series) == 7 * 144  # 10-minute grid

    def test_no_labels_flag(self, tmp_path):
        out = tmp_path / "pv.csv"
        assert main([
            "generate", "--kpi", "PV", "--weeks", "1", "--no-labels",
            "--out", str(out),
        ]) == 0
        assert not read_csv(out).is_labeled

    def test_seed_offset_changes_data(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "--kpi", "SRT", "--weeks", "1", "--out", str(a)])
        main(["generate", "--kpi", "SRT", "--weeks", "1",
              "--seed-offset", "5", "--out", str(b)])
        assert not np.array_equal(read_csv(a).values, read_csv(b).values)


class TestSummarize:
    def test_prints_table1_row(self, workflow, capsys):
        kpi_csv, _ = workflow
        assert main(["summarize", str(kpi_csv)]) == 0
        out = capsys.readouterr().out
        assert "Cv=" in out
        assert "interval=60min" in out


class TestLabel:
    def test_scripted_labeling(self, workflow, tmp_path, capsys):
        kpi_csv, _ = workflow
        out = tmp_path / "labeled.csv"
        assert main([
            "label", str(kpi_csv), "--out", str(out),
            "--commands", "l 10 20; l 50 55; c 12 14; q",
        ]) == 0
        series = read_csv(out)
        assert series.labels.sum() == (20 - 10) - 2 + 5
        assert "windows" in capsys.readouterr().out


class TestTrainDetectEvaluate:
    def test_model_file_is_json(self, workflow):
        _, model = workflow
        payload = json.loads(model.read_text())
        assert payload["format_version"] == 1
        assert len(payload["feature_names"]) == 133

    def test_detect_prints_alerts(self, workflow, tmp_path, capsys):
        kpi_csv, model = workflow
        out = tmp_path / "detections.csv"
        assert main([
            "detect", str(kpi_csv), "--model", str(model),
            "--out", str(out), "--min-duration", "2",
        ]) == 0
        console = capsys.readouterr().out
        assert "anomalous points" in console
        detections = read_csv(out)
        assert detections.is_labeled

    def test_evaluate_reports_accuracy(self, workflow, capsys):
        kpi_csv, model = workflow
        assert main(["evaluate", str(kpi_csv), "--model", str(model)]) == 0
        console = capsys.readouterr().out
        assert "AUCPR" in console
        assert "recall" in console
        # In-sample evaluation of the model on its own training data
        # should satisfy the preference.
        assert "satisfied" in console

    def test_train_rejects_unlabeled(self, tmp_path, capsys):
        raw = tmp_path / "raw.csv"
        main(["generate", "--kpi", "SRT", "--weeks", "1", "--no-labels",
              "--out", str(raw)])
        model = tmp_path / "m.json"
        assert main(["train", str(raw), "--model", str(model)]) == 2

    def test_evaluate_rejects_unlabeled(self, workflow, tmp_path):
        _, model = workflow
        raw = tmp_path / "raw.csv"
        main(["generate", "--kpi", "SRT", "--weeks", "1", "--no-labels",
              "--out", str(raw)])
        assert main(["evaluate", str(raw), "--model", str(model)]) == 2


class TestReport:
    def test_report_runs_full_evaluation(self, tmp_path, capsys):
        kpi_csv = tmp_path / "srt10.csv"
        assert main([
            "generate", "--kpi", "SRT", "--weeks", "10", "--out", str(kpi_csv),
        ]) == 0
        assert main([
            "report", str(kpi_csv), "--trees", "10", "--top", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "KPI evaluation" in out
        assert "AUCPR ranking" in out
        assert "random forest" in out

    def test_report_rejects_unlabeled(self, tmp_path):
        raw = tmp_path / "raw.csv"
        main(["generate", "--kpi", "SRT", "--weeks", "10", "--no-labels",
              "--out", str(raw)])
        assert main(["report", str(raw)]) == 2


class TestDriftCommand:
    def test_drift_between_generations(self, tmp_path, capsys):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "--kpi", "SRT", "--weeks", "3", "--out", str(a)])
        main(["generate", "--kpi", "SRT", "--weeks", "3",
              "--seed-offset", "9", "--out", str(b)])
        assert main(["drift", str(a), str(b), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "max PSI" in out

    def test_interval_mismatch_rejected(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["generate", "--kpi", "SRT", "--weeks", "2", "--out", str(a)])
        main(["generate", "--kpi", "PV", "--weeks", "2", "--out", str(b)])
        assert main(["drift", str(a), str(b)]) == 2


class TestTriageCommand:
    def test_triage_lists_windows(self, workflow, tmp_path, capsys):
        kpi_csv, model = workflow
        raw = tmp_path / "raw.csv"
        # Strip labels so everything is triage-eligible.
        main(["generate", "--kpi", "SRT", "--weeks", "4", "--no-labels",
              "--out", str(raw)])
        assert main([
            "triage", str(raw), "--model", str(model), "--threshold", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "review" in out or "nothing to triage" in out


class TestResampleCommand:
    def test_resample_to_coarser_grid(self, tmp_path, capsys):
        fine = tmp_path / "fine.csv"
        coarse = tmp_path / "coarse.csv"
        main(["generate", "--kpi", "SRT", "--weeks", "1", "--out", str(fine)])
        assert main([
            "resample", str(fine), "--to", "7200", "--out", str(coarse),
        ]) == 0
        out = read_csv(coarse)
        assert out.interval == 7200
        assert len(out) == 7 * 12
        assert "->" in capsys.readouterr().out

    def test_max_aggregate_flag(self, tmp_path):
        fine = tmp_path / "fine.csv"
        coarse = tmp_path / "coarse.csv"
        main(["generate", "--kpi", "SRT", "--weeks", "1", "--out", str(fine)])
        assert main([
            "resample", str(fine), "--to", "7200", "--aggregate", "max",
            "--out", str(coarse),
        ]) == 0
        fine_series = read_csv(fine)
        coarse_series = read_csv(coarse)
        assert coarse_series.values[0] == pytest.approx(
            fine_series.values[:2].max()
        )


class TestDetectExplain:
    def test_explain_flag_prints_contributors(self, workflow, capsys):
        kpi_csv, model = workflow
        assert main([
            "detect", str(kpi_csv), "--model", str(model),
            "--min-duration", "2", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        if "0 anomalous points" not in out.splitlines()[0]:
            # At least one contributor line with a signed contribution.
            assert any(
                line.strip().startswith(("+", "-")) for line in out.splitlines()
            )
