"""Alert review session tests."""

import numpy as np
import pytest

from repro.labeling import CONFIRMED, PENDING, REJECTED, ReviewSession
from repro.timeseries import AnomalyWindow


class _FakeAlert:
    def __init__(self, begin, end, peak):
        self.begin_index = begin
        self.end_index = end
        self.peak_score = peak


@pytest.fixture()
def session():
    alerts = [
        _FakeAlert(10, 15, 0.7),
        _FakeAlert(40, 42, 0.95),
        _FakeAlert(80, 90, 0.5),
    ]
    return ReviewSession(alerts, length=100)


class TestReviewSession:
    def test_initial_state(self, session):
        assert len(session) == 3
        assert session.verdicts() == {PENDING: 3, CONFIRMED: 0, REJECTED: 0}
        assert not session.is_complete()

    def test_pending_sorted_by_peak(self, session):
        assert session.pending() == [1, 0, 2]

    def test_confirm_and_reject(self, session):
        session.confirm(1)
        session.reject(2)
        verdicts = session.verdicts()
        assert verdicts[CONFIRMED] == 1
        assert verdicts[REJECTED] == 1
        assert session.pending() == [0]

    def test_confirm_with_adjusted_window(self, session):
        session.confirm(0, begin=8, end=20)
        assert session.anomaly_windows() == [AnomalyWindow(8, 20)]

    def test_adjustment_bounds_validated(self, session):
        with pytest.raises(ValueError):
            session.confirm(0, end=200)
        with pytest.raises(ValueError):
            session.confirm(0, begin=-1)

    def test_hard_negative_mask(self, session):
        session.reject(0)
        mask = session.hard_negative_mask()
        assert mask[10:15].all()
        assert mask.sum() == 5

    def test_complete_after_all_verdicts(self, session):
        for i in range(3):
            session.confirm(i)
        assert session.is_complete()
        assert len(session.anomaly_windows()) == 3

    def test_index_validated(self, session):
        with pytest.raises(IndexError):
            session.confirm(9)

    def test_length_validated(self):
        with pytest.raises(ValueError):
            ReviewSession([], length=0)

    def test_feeds_monitoring_service(self):
        """The full loop: alerts -> review -> submit_labels -> retrain."""
        from repro.core import MonitoringService
        from repro.data import SeasonalProfile, generate_kpi, inject_anomalies
        from test_opprentice import fast_forest, small_bank

        generated = generate_kpi(
            weeks=5, interval=3600,
            profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                    noise_scale=0.02),
            seed=61,
        )
        result = inject_anomalies(
            generated.series, target_fraction=0.06, seed=62, mean_window=4.0
        )
        series = result.series
        split = 4 * series.points_per_week
        service = MonitoringService(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
            min_duration_points=2,
        )
        service.bootstrap(series.slice(0, split))
        events = []
        for value in series.values[split:]:
            events.extend(service.ingest(value))
        opened = [e for e in events if e.kind == "opened"]
        review = ReviewSession(
            [
                _FakeAlert(e.begin_index, e.end_index, e.peak_score)
                for e in opened
            ],
            length=service.history_length,
        )
        truth = series.labels
        for i, item in enumerate(review.items):
            window = item.window
            if truth[window.begin: min(window.end + 5, len(truth))].any():
                review.confirm(i)
            else:
                review.reject(i)
        service.submit_labels(review.anomaly_windows())
        new_cthld = service.retrain()
        assert 0.0 <= new_cthld <= 1.0
        assert service.stats.retrain_rounds == 1
