"""repro.corpus: the pluggable dataset layer and its built-ins."""

import json

import numpy as np
import pytest

from repro.corpus import (
    KNOWN_KINDS,
    CorpusError,
    Dataset,
    DatasetItem,
    DirectoryDataset,
    dataset_names,
    get_dataset,
    materialize,
    phase_kind,
    register,
)
from repro.corpus.base import _REGISTRY
from repro.corpus.files import MANIFEST_NAME
from repro.loadgen import ScenarioSpec, build_scenario

BUILTINS = ("table1", "isp", "telecom", "hpc", "web-incidents")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(BUILTINS) <= set(dataset_names())

    def test_unknown_dataset_names_the_alternatives(self):
        with pytest.raises(CorpusError, match="registered.*table1"):
            get_dataset("nope")

    def test_duplicate_registration_requires_replace(self):
        dataset = get_dataset("hpc")
        with pytest.raises(CorpusError, match="already registered"):
            register(dataset)
        assert register(dataset, replace=True) is dataset

    def test_nameless_dataset_rejected(self):
        class Nameless(Dataset):
            def kpi_names(self):
                return []

            def kpi_interval(self, kpi):
                raise CorpusError(kpi)

            def load(self, kpi, *, weeks=None, seed_offset=0):
                raise CorpusError(kpi)

        with pytest.raises(CorpusError, match="no name"):
            register(Nameless())

    def test_plugin_registration_round_trip(self):
        hpc = get_dataset("hpc")

        class Renamed(type(hpc)):
            pass

        plugin = Renamed("test-plugin", "a test plugin", "test", hpc.profiles)
        try:
            register(plugin)
            assert get_dataset("test-plugin") is plugin
        finally:
            _REGISTRY.pop("test-plugin", None)


class TestBuiltinContract:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_validates_clean_on_a_short_slice(self, name):
        assert get_dataset(name).validate(weeks=1.0) == []

    @pytest.mark.parametrize("name", BUILTINS)
    def test_declares_intervals_without_loading(self, name):
        dataset = get_dataset(name)
        for kpi in dataset.kpi_names():
            assert dataset.kpi_interval(kpi) > 0

    def test_seed_offset_draws_a_replica(self):
        dataset = get_dataset("telecom")
        base = dataset.load("rtt_latency", weeks=1.0)
        replica = dataset.load("rtt_latency", weeks=1.0, seed_offset=1)
        assert len(base.series) == len(replica.series)
        assert not np.array_equal(
            base.series.values, replica.series.values, equal_nan=True
        )

    def test_weeks_scales_the_span(self):
        dataset = get_dataset("hpc")
        assert len(dataset.load("node_power", weeks=2.0).series) == 2 * len(
            dataset.load("node_power", weeks=1.0).series
        )

    def test_unknown_kpi_raises(self):
        with pytest.raises(CorpusError, match="unknown KPI"):
            get_dataset("telecom").load("nope")
        with pytest.raises(CorpusError, match="unknown KPI"):
            get_dataset("web-incidents").kpi_interval("nope")

    def test_item_labels_follow_the_windows(self):
        item = get_dataset("table1").load("PV", weeks=1.0)
        assert set(item.kinds) <= set(KNOWN_KINDS)
        assert np.array_equal(item.series.labels, item.labels)

    def test_web_incident_kinds_follow_the_phases(self):
        item = get_dataset("web-incidents").load("web-outage")
        assert item.kinds == ["dip", "ramp"]
        assert item.metadata["phases"] == ["outage", "recovery ramp"]
        cascade = get_dataset("web-incidents").load("web-cascade")
        assert set(cascade.kinds) == {"spike"}


class TestPhaseKinds:
    def test_known_phases(self):
        assert phase_kind("outage") == "dip"
        assert phase_kind("degraded plateau") == "level_shift"
        assert phase_kind("cascade stage 3") == "spike"

    def test_unknown_phase_raises(self):
        with pytest.raises(CorpusError, match="no kind mapping"):
            phase_kind("meteor strike")


class TestMaterialize:
    @pytest.fixture(scope="class")
    def source(self):
        return get_dataset("web-incidents")

    @pytest.mark.parametrize("fmt", ["csv", "csv.gz", "ndjson"])
    def test_directory_round_trip_is_exact(self, source, tmp_path, fmt):
        manifest = materialize(source, tmp_path / fmt, fmt=fmt, weeks=1.0)
        assert manifest.name == MANIFEST_NAME
        stored = DirectoryDataset(tmp_path / fmt)
        assert stored.name == source.name
        assert stored.kpi_names() == source.kpi_names()
        assert stored.validate() == []
        for kpi in source.kpi_names():
            item = stored.load(kpi)
            original = source.load(kpi, weeks=1.0)
            np.testing.assert_array_equal(
                item.series.values, original.series.values
            )
            assert item.series.interval == original.series.interval
            assert item.windows == original.windows
            assert item.kinds == original.kinds
            assert item.metadata == original.metadata

    def test_file_backed_cannot_reparameterize(self, source, tmp_path):
        materialize(source, tmp_path, weeks=1.0)
        stored = DirectoryDataset(tmp_path)
        with pytest.raises(CorpusError, match="file-backed"):
            stored.load(stored.kpi_names()[0], weeks=2.0)
        with pytest.raises(CorpusError, match="file-backed"):
            stored.load(stored.kpi_names()[0], seed_offset=1)

    def test_unsupported_format_raises(self, source, tmp_path):
        with pytest.raises(CorpusError, match="unsupported format"):
            materialize(source, tmp_path, fmt="parquet")

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(CorpusError, match=MANIFEST_NAME):
            DirectoryDataset(tmp_path)

    def test_wrong_manifest_version_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format_version": 99, "name": "x", "kpis": []})
        )
        with pytest.raises(CorpusError, match="unsupported corpus format"):
            DirectoryDataset(tmp_path)

    def test_nan_gaps_survive_materialization(self, tmp_path):
        from repro.timeseries import TimeSeries

        values = np.array([1.0, np.nan, 3.0, 4.0])

        class Gappy(Dataset):
            name = "gappy"
            description = "one KPI with a missing point"
            domain = "test"

            def kpi_names(self):
                return ["g"]

            def kpi_interval(self, kpi):
                return 60

            def load(self, kpi, *, weeks=None, seed_offset=0):
                series = TimeSeries(
                    values=values,
                    interval=60,
                    start=0,
                    labels=np.array([0, 0, 1, 0], dtype=np.int8),
                    name="g",
                )
                from repro.timeseries import AnomalyWindow

                return DatasetItem(
                    kpi="g", series=series,
                    windows=[AnomalyWindow(2, 3)], kinds=["spike"],
                )

        materialize(Gappy(), tmp_path, fmt="ndjson")
        stored = DirectoryDataset(tmp_path)
        item = stored.load("g")
        np.testing.assert_array_equal(item.series.values, values)
        assert stored.validate() == []


class TestScenarioDatasetMode:
    def test_kpi_ids_cycle_the_dataset(self):
        spec = ScenarioSpec(n_kpis=5, dataset="telecom")
        ids = spec.kpi_ids()
        assert len(ids) == 5
        assert ids[0].startswith("dl_throughput-")
        assert ids[4].startswith("dl_throughput-")  # 4 KPIs, 5th cycles
        assert set(spec.intervals().values()) == {300}

    def test_unknown_dataset_fails_validation(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            ScenarioSpec(dataset="nope").validate()

    def test_profiles_are_not_consulted_in_dataset_mode(self):
        spec = ScenarioSpec(
            n_kpis=2, dataset="hpc", profiles=("not-a-profile",)
        )
        spec.validate()  # bad profiles tuple is ignored
        with pytest.raises(ValueError, match="dataset"):
            spec.profile_of(0)

    def test_build_scenario_is_deterministic(self):
        spec = ScenarioSpec(
            n_kpis=2, weeks=0.1, bootstrap_weeks=0.4,
            dataset="web-incidents",
        )
        first = build_scenario(spec)
        second = build_scenario(spec)
        assert [k.kpi_id for k in first] == spec.kpi_ids()
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.series.values, b.series.values)
            assert a.windows == b.windows
            assert a.bootstrap.is_labeled
            assert len(a.live_values) > 0
