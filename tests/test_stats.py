"""Series statistics (Table 1 quantities)."""

import numpy as np
import pytest

from repro.timeseries import (
    TimeSeries,
    classify_seasonality,
    coefficient_of_variation,
    seasonal_autocorrelation,
    seasonality_strength,
    summarize,
)


def hourly(values):
    return TimeSeries(values=np.asarray(values, dtype=float), interval=3600)


class TestCv:
    def test_constant_series_has_zero_cv(self):
        assert coefficient_of_variation(hourly([5.0] * 48)) == 0.0

    def test_known_value(self):
        ts = hourly([1.0, 3.0])  # mean 2, std 1
        assert coefficient_of_variation(ts) == pytest.approx(0.5)

    def test_ignores_missing(self):
        ts = hourly([1.0, 3.0, np.nan])
        assert coefficient_of_variation(ts) == pytest.approx(0.5)

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError, match="zero-mean"):
            coefficient_of_variation(hourly([-1.0, 1.0]))

    def test_all_missing_rejected(self):
        with pytest.raises(ValueError, match="no observed"):
            coefficient_of_variation(hourly([np.nan, np.nan]))


class TestSeasonalAutocorrelation:
    def test_perfect_periodicity(self):
        # The biased ACF estimator scales by (n - lag) / n, so use
        # enough periods for the bias to be negligible.
        pattern = np.tile(np.sin(np.linspace(0, 2 * np.pi, 24, endpoint=False)), 40)
        assert seasonal_autocorrelation(hourly(pattern), 24) > 0.95

    def test_white_noise_is_near_zero(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=2000)
        assert abs(seasonal_autocorrelation(hourly(noise), 24)) < 0.1

    def test_period_bounds(self):
        with pytest.raises(ValueError):
            seasonal_autocorrelation(hourly(np.ones(10)), 0)
        with pytest.raises(ValueError, match="too short"):
            seasonal_autocorrelation(hourly(np.ones(10)), 10)


class TestSeasonalityStrength:
    def test_pure_seasonal_is_near_one(self):
        pattern = np.tile(np.sin(np.linspace(0, 2 * np.pi, 24, endpoint=False)), 5)
        strength = seasonality_strength(hourly(10 + pattern), period=24)
        assert strength > 0.95

    def test_white_noise_is_weak(self):
        rng = np.random.default_rng(1)
        strength = seasonality_strength(hourly(rng.normal(size=480)), period=24)
        assert strength < 0.2

    def test_trend_removed_before_estimation(self):
        # A pure linear trend has no seasonality at all.
        strength = seasonality_strength(
            hourly(np.linspace(0, 100, 480)), period=24
        )
        assert strength < 0.05

    def test_requires_two_periods(self):
        with pytest.raises(ValueError, match="two periods"):
            seasonality_strength(hourly(np.ones(30)), period=24)


class TestClassification:
    def test_labels(self):
        assert classify_seasonality(0.95) == "strong"
        assert classify_seasonality(0.6) == "moderate"
        assert classify_seasonality(0.1) == "weak"


class TestSummarize:
    def test_summary_row_fields(self, labeled_kpi):
        summary = summarize(labeled_kpi.series)
        assert summary.interval_minutes == 60.0
        assert summary.length_weeks == pytest.approx(4.0)
        assert summary.anomaly_fraction == pytest.approx(0.06, abs=0.01)
        assert summary.name == "unit-kpi"
        assert "Cv=" in summary.row()

    def test_summary_without_labels(self, hourly_kpi):
        assert summarize(hourly_kpi).anomaly_fraction is None


@pytest.mark.slow
class TestTable1Profiles:
    """The synthetic datasets must match the published Table 1 rows."""

    def test_pv_profile(self):
        from repro.data import make_pv

        summary = summarize(make_pv().series)
        assert summary.seasonality_label == "strong"
        assert summary.cv == pytest.approx(0.48, abs=0.12)
        assert summary.anomaly_fraction == pytest.approx(0.078, abs=0.004)
        assert summary.length_weeks == pytest.approx(25.0)

    def test_sr_profile(self):
        from repro.data import make_sr

        summary = summarize(make_sr().series)
        assert summary.seasonality_label == "weak"
        assert summary.cv == pytest.approx(2.1, abs=0.6)
        assert summary.anomaly_fraction == pytest.approx(0.028, abs=0.004)
        assert summary.length_weeks == pytest.approx(19.0)

    def test_srt_profile(self):
        from repro.data import make_srt

        summary = summarize(make_srt().series)
        assert summary.seasonality_label == "moderate"
        assert summary.cv == pytest.approx(0.07, abs=0.04)
        assert summary.anomaly_fraction == pytest.approx(0.074, abs=0.004)
        assert summary.length_weeks == pytest.approx(16.0)
        assert summary.interval_minutes == 60.0
