"""Streaming detection tests: push-one-point decisions must equal the
batch pipeline, and the true detector streams must handle dirty data."""

import numpy as np
import pytest

from repro.core import FeatureExtractor, Opprentice, StreamingDetector
from repro.detectors import (
    ARIMA,
    HistoricalAverage,
    HistoricalMad,
    SVDDetector,
    TSD,
    TSDMad,
    WaveletDetector,
)
from repro.timeseries import TimeSeries

from test_opprentice import fast_forest, small_bank


def ts(values, interval=3600):
    return TimeSeries(values=np.asarray(values, dtype=float), interval=interval)


#: Detector instances with true (non-buffered) streams, sized for
#: ~400-point tests past warm-up, including NaN handling.
TRUE_STREAM_DETECTORS = [
    TSD(2, 24),
    TSDMad(3, 24),
    HistoricalAverage(1, 4),
    HistoricalMad(1, 4),
    SVDDetector(10, 3),
    WaveletDetector(1, "high", 48),
    WaveletDetector(1, "mid", 48),
]


@pytest.mark.parametrize(
    "detector", TRUE_STREAM_DETECTORS, ids=lambda d: d.feature_name
)
class TestTrueStreams:
    def test_stream_equals_batch_clean(self, detector, rng):
        values = rng.normal(100.0, 10.0, size=400)
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_stream_equals_batch_with_missing_data(self, detector, rng):
        values = rng.normal(100.0, 10.0, size=400)
        values[rng.choice(400, size=25, replace=False)] = np.nan
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_stream_is_not_buffered_fallback(self, detector):
        from repro.detectors.base import _BufferedStream

        assert not isinstance(detector.stream(), _BufferedStream)


class TestARIMAStream:
    def test_matches_batch_clean(self, rng):
        values = rng.normal(50.0, 5.0, size=300)
        detector = ARIMA(fit_points=150)
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_matches_batch_with_missing(self, rng):
        values = np.cumsum(rng.normal(0, 1.0, size=300)) + 100.0
        values[200] = np.nan
        values[250:253] = np.nan
        detector = ARIMA(fit_points=150)
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_not_buffered(self):
        from repro.detectors.base import _BufferedStream

        assert not isinstance(ARIMA(fit_points=100).stream(), _BufferedStream)


class TestStreamingDetector:
    @pytest.fixture(scope="class")
    def fitted(self, labeled_kpi):
        series = labeled_kpi.series
        split = 3 * series.points_per_week
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series.slice(0, split))
        return opp, series, split

    def test_requires_fitted_model(self):
        with pytest.raises(ValueError, match="fitted"):
            StreamingDetector(Opprentice())

    def test_decisions_match_batch_detection(self, fitted):
        opp, series, split = fitted
        tail = series.slice(split, split + 60)
        batch_scores = opp.anomaly_scores(tail)

        streaming = StreamingDetector(opp, history=series.slice(0, split))
        decisions = streaming.push_many(tail.values)
        online_scores = np.array([d.score for d in decisions])
        np.testing.assert_allclose(online_scores, batch_scores, atol=1e-12)

    def test_decision_thresholding(self, fitted):
        opp, series, split = fitted
        streaming = StreamingDetector(opp, history=series.slice(0, split))
        decisions = streaming.push_many(series.values[split: split + 40])
        for decision in decisions:
            assert decision.is_anomaly == (decision.score >= opp.cthld_)
            assert len(decision.severities) == streaming.n_configs

    def test_indices_count_from_replay(self, fitted):
        opp, series, split = fitted
        streaming = StreamingDetector(opp, history=series.slice(0, split))
        assert streaming.points_seen == split
        decision = streaming.push(series.values[split])
        assert decision.index == split
