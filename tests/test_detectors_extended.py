"""Brutlag and CUSUM — the "emerging detectors" of §5.2 — plus the
dirty-data fixes for the moving-average family."""

import numpy as np
import pytest

from repro.detectors import (
    Brutlag,
    CUSUM,
    DetectorError,
    EWMA,
    MAOfDiff,
    SimpleMA,
    extended_detectors,
    rolling_mean,
    rolling_std,
)
from repro.timeseries import TimeSeries


def ts(values, interval=3600):
    return TimeSeries(values=np.asarray(values, dtype=float), interval=interval)


def seasonal_series(rng, periods=15, period=24, noise=0.5):
    pattern = 100.0 + 20.0 * np.sin(
        np.linspace(0, 2 * np.pi, period, endpoint=False)
    )
    return np.tile(pattern, periods) + rng.normal(0, noise, periods * period)


class TestBrutlag:
    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            Brutlag(0.0, 0.4, 0.4, 24)
        with pytest.raises(DetectorError):
            Brutlag(0.4, 0.4, 0.4, 1)

    def test_warmup_is_two_seasons(self, rng):
        values = seasonal_series(rng, periods=4)
        out = Brutlag(0.5, 0.4, 0.5, 24).severities(ts(values))
        assert np.isnan(out[:48]).all()
        assert np.isfinite(out[48:]).all()

    def test_severity_is_band_relative(self, rng):
        """A spike of k band-widths scores ~k regardless of KPI scale."""
        values = seasonal_series(rng)
        spiked = values.copy()
        spiked[300] += 60.0
        detector = Brutlag(0.5, 0.3, 0.5, 24)
        base = detector.severities(ts(values))
        hit = detector.severities(ts(spiked))
        assert hit[300] > 5 * np.nanmedian(base)

    def test_scale_free(self, rng):
        """Band-relative severities barely change when the KPI scales."""
        values = seasonal_series(rng)
        detector = Brutlag(0.5, 0.3, 0.5, 24)
        small = detector.severities(ts(values))
        large = detector.severities(ts(values * 100.0))
        np.testing.assert_allclose(small, large, equal_nan=True, rtol=1e-6)

    def test_stream_matches_batch(self, rng):
        values = seasonal_series(rng, periods=6)
        detector = Brutlag(0.4, 0.4, 0.6, 24)
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_missing_points_freeze_state(self, rng):
        values = seasonal_series(rng, periods=6)
        values[90] = np.nan
        out = Brutlag(0.4, 0.4, 0.6, 24).severities(ts(values))
        assert np.isnan(out[90])
        assert np.isfinite(out[91])

    def test_causality(self, rng):
        values = seasonal_series(rng, periods=5)
        detector = Brutlag(0.4, 0.4, 0.6, 24)
        prefix = detector.severities(ts(values))
        extended = detector.severities(
            ts(np.concatenate([values, [1e6, 0.0]]))
        )
        np.testing.assert_allclose(
            extended[: len(values)], prefix, equal_nan=True, atol=1e-9
        )


class TestCUSUM:
    def test_parameter_validation(self):
        with pytest.raises(DetectorError):
            CUSUM(1, 0.5)
        with pytest.raises(DetectorError):
            CUSUM(20, -0.1)

    def test_sustained_shift_accumulates(self, rng):
        values = np.concatenate(
            [rng.normal(100, 1.0, 300), rng.normal(103, 1.0, 50)]
        )
        out = CUSUM(50, 0.5).severities(ts(values))
        # The shift accumulates: severity keeps growing over the run.
        assert out[340] > out[310] > np.nanmedian(out[:300])

    def test_isolated_wiggle_decays(self, rng):
        values = rng.normal(100, 1.0, 400)
        values[200] += 5.0
        out = CUSUM(30, 0.5).severities(ts(values))
        # A single outlier bumps the statistic, which then decays.
        assert out[200] > out[215]

    def test_two_sided(self, rng):
        values = np.concatenate(
            [rng.normal(100, 1.0, 300), rng.normal(96, 1.0, 40)]
        )
        out = CUSUM(50, 0.5).severities(ts(values))
        assert out[335] > 3.0  # downward shift detected too

    def test_stream_matches_batch(self, rng):
        values = rng.normal(100, 5.0, 300)
        detector = CUSUM(20, 0.25)
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_stream_matches_batch_with_missing(self, rng):
        values = rng.normal(100, 5.0, 300)
        values[rng.choice(300, 20, replace=False)] = np.nan
        detector = CUSUM(20, 0.25)
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_causality(self, rng):
        values = rng.normal(100, 5.0, 200)
        detector = CUSUM(20, 0.5)
        prefix = detector.severities(ts(values))
        extended = detector.severities(ts(np.concatenate([values, [1e5]])))
        np.testing.assert_allclose(
            extended[:200], prefix, equal_nan=True, atol=1e-9
        )


class TestExtendedRegistry:
    def test_counts_and_kinds(self):
        detectors = extended_detectors(600)
        kinds = {d.kind for d in detectors}
        assert kinds == {"brutlag", "cusum", "s-h-esd"}
        assert len(detectors) == 17  # 9 Brutlag + 6 CUSUM + 2 S-H-ESD

    def test_names_unique_and_disjoint_from_table3(self):
        from repro.detectors import default_detectors

        base = {d.feature_name for d in default_detectors(600)}
        extra = {d.feature_name for d in extended_detectors(600)}
        assert len(extra) == 17
        assert not base & extra

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            extended_detectors(7 * 60)


class TestDirtyDataMAFamily:
    """The NaN-localisation fixes: a missing point must only affect
    windows containing it, for both batch and stream."""

    @pytest.mark.parametrize(
        "detector", [SimpleMA(5), MAOfDiff(4), EWMA(0.4)],
        ids=lambda d: d.feature_name,
    )
    def test_batch_recovers_after_missing_point(self, detector, rng):
        values = rng.normal(100, 5.0, 100)
        values[40] = np.nan
        out = detector.severities(ts(values))
        assert np.isnan(out[40])
        # Severities become finite again once the NaN leaves the window.
        assert np.isfinite(out[60:]).all()

    @pytest.mark.parametrize(
        "detector", [SimpleMA(5), MAOfDiff(4), EWMA(0.4)],
        ids=lambda d: d.feature_name,
    )
    def test_stream_matches_batch_with_missing(self, detector, rng):
        values = rng.normal(100, 5.0, 120)
        values[rng.choice(120, 10, replace=False)] = np.nan
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_rolling_helpers_localize_nan(self):
        values = np.arange(20, dtype=float)
        values[8] = np.nan
        mean = rolling_mean(values, 3)
        std = rolling_std(values, 3)
        # Windows containing index 8: outputs 9, 10, 11.
        assert np.isnan(mean[9:12]).all()
        assert np.isfinite(mean[12:]).all()
        assert np.isnan(std[9:12]).all()
        assert np.isfinite(std[12:]).all()


class TestSHESD:
    def _seasonal(self, rng, periods=10, period=14):
        pattern = 50.0 + 10.0 * np.sin(
            np.linspace(0, 2 * np.pi, period, endpoint=False)
        )
        return np.tile(pattern, periods) + rng.normal(0, 0.5, periods * period)

    def test_parameter_validation(self):
        from repro.detectors import SHESD

        with pytest.raises(DetectorError):
            SHESD(0, 14)
        with pytest.raises(DetectorError):
            SHESD(2, 0)

    def test_warmup_is_two_windows(self, rng):
        from repro.detectors import SHESD

        values = self._seasonal(rng)
        out = SHESD(2, 14).severities(ts(values))
        assert np.isnan(out[:56]).all()
        assert np.isfinite(out[56:]).all()

    def test_flags_spike_in_mad_units(self, rng):
        from repro.detectors import SHESD

        values = self._seasonal(rng)
        values[100] += 20.0
        out = SHESD(2, 14).severities(ts(values))
        assert out[100] > 10.0  # ~20 / (1.4826 * mad of ~0.5-noise)

    def test_robust_to_past_anomalies_in_window(self, rng):
        """The hybrid (median/MAD) part: a huge past anomaly inside the
        window barely moves the scale estimate."""
        from repro.detectors import SHESD

        values = self._seasonal(rng)
        polluted = values.copy()
        polluted[80] += 500.0
        detector = SHESD(2, 14)
        clean_out = detector.severities(ts(values))
        polluted_out = detector.severities(ts(polluted))
        # Severities 1+ window after the pollution are nearly unchanged.
        tail = slice(120, 140)
        np.testing.assert_allclose(
            polluted_out[tail], clean_out[tail], rtol=0.5
        )

    def test_stream_matches_batch(self, rng):
        from repro.detectors import SHESD

        values = self._seasonal(rng)
        detector = SHESD(2, 14)
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_stream_matches_batch_with_missing(self, rng):
        from repro.detectors import SHESD

        values = self._seasonal(rng)
        values[rng.choice(len(values), 10, replace=False)] = np.nan
        detector = SHESD(2, 14)
        batch = detector.severities(ts(values))
        stream = detector.stream()
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True, atol=1e-9)

    def test_causality(self, rng):
        from repro.detectors import SHESD

        values = self._seasonal(rng)
        detector = SHESD(2, 14)
        prefix = detector.severities(ts(values))
        extended = detector.severities(ts(np.concatenate([values, [1e6]])))
        np.testing.assert_allclose(
            extended[: len(values)], prefix, equal_nan=True, atol=1e-9
        )
