"""Model persistence tests (save/load trained Opprentice)."""

import json

import numpy as np
import pytest

from repro.core import Opprentice, load_model, save_model
from repro.ml import DecisionTree, RandomForest

from test_opprentice import fast_forest, small_bank


class TestTreeSerialization:
    def test_roundtrip_predictions(self, rng):
        X = rng.normal(size=(300, 4))
        y = (X[:, 1] > 0.2).astype(int)
        tree = DecisionTree(seed=1).fit(X, y)
        restored = DecisionTree.from_dict(tree.to_dict())
        np.testing.assert_array_equal(
            restored.predict_proba(X), tree.predict_proba(X)
        )

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            DecisionTree().to_dict()

    def test_inconsistent_payload_rejected(self, rng):
        X = rng.normal(size=(50, 2))
        y = (X[:, 0] > 0).astype(int)
        payload = DecisionTree().fit(X, y).to_dict()
        payload["left"] = payload["left"][:-1]
        with pytest.raises(ValueError):
            DecisionTree.from_dict(payload)


class TestForestSerialization:
    def test_roundtrip_predictions(self, rng):
        X = rng.normal(size=(400, 5))
        y = (X[:, 0] + X[:, 2] > 0.5).astype(int)
        forest = RandomForest(n_estimators=12, seed=2).fit(X, y)
        restored = RandomForest.from_dict(forest.to_dict())
        np.testing.assert_array_equal(
            restored.predict_proba(X), forest.predict_proba(X)
        )

    def test_payload_is_json_safe(self, rng):
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        forest = RandomForest(n_estimators=3, seed=0).fit(X, y)
        text = json.dumps(forest.to_dict())
        restored = RandomForest.from_dict(json.loads(text))
        np.testing.assert_array_equal(
            restored.predict_proba(X), forest.predict_proba(X)
        )

    def test_tree_count_validated(self, rng):
        X = rng.normal(size=(50, 2))
        y = (X[:, 0] > 0).astype(int)
        payload = RandomForest(n_estimators=3, seed=0).fit(X, y).to_dict()
        payload["trees"].pop()
        with pytest.raises(ValueError, match="trees"):
            RandomForest.from_dict(payload)


class TestOpprenticePersistence:
    @pytest.fixture()
    def fitted(self, labeled_kpi):
        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        )
        return opp.fit(series), series

    def test_save_load_roundtrip(self, fitted, tmp_path, labeled_kpi):
        opp, series = fitted
        path = tmp_path / "model.json"
        save_model(opp, path)

        fresh = Opprentice(configs=small_bank(series.points_per_week))
        load_model(path, opprentice=fresh)
        assert fresh.cthld_ == opp.cthld_

        original = opp.detect(series)
        restored = fresh.detect(series)
        np.testing.assert_array_equal(
            restored.predictions, original.predictions
        )

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_model(Opprentice(), tmp_path / "m.json")

    def test_bank_mismatch_rejected(self, fitted, tmp_path):
        opp, series = fitted
        path = tmp_path / "model.json"
        save_model(opp, path)
        from repro.detectors import SimpleThreshold, build_configs

        other = Opprentice(configs=build_configs([SimpleThreshold()]))
        with pytest.raises(ValueError, match="bank mismatch"):
            load_model(path, opprentice=other)

    def test_version_check(self, fitted, tmp_path):
        opp, _ = fitted
        path = tmp_path / "model.json"
        save_model(opp, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format"):
            load_model(path)

    def test_preference_restored(self, labeled_kpi, tmp_path):
        from repro.evaluation import AccuracyPreference

        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            preference=AccuracyPreference(0.8, 0.6),
            classifier_factory=fast_forest,
        ).fit(series)
        path = tmp_path / "model.json"
        save_model(opp, path)
        fresh = Opprentice(configs=small_bank(series.points_per_week))
        load_model(path, opprentice=fresh)
        assert fresh.preference == AccuracyPreference(0.8, 0.6)
