"""Incident scenario builder tests."""

import numpy as np
import pytest

from repro.data import (
    SCENARIOS,
    cascading_failure,
    flash_crowd,
    gradual_degradation,
    outage_and_recovery,
)


class TestOutageAndRecovery:
    def test_phases(self, hourly_kpi):
        incident = outage_and_recovery(hourly_kpi, at=100)
        assert incident.phases == ["outage", "recovery ramp"]
        assert len(incident.windows) == 2

    def test_outage_depth(self, hourly_kpi):
        incident = outage_and_recovery(
            hourly_kpi, at=100, outage_points=10, depth=0.9
        )
        np.testing.assert_allclose(
            incident.series.values[100:110],
            hourly_kpi.values[100:110] * 0.1,
        )

    def test_recovery_is_monotone_toward_normal(self, hourly_kpi):
        incident = outage_and_recovery(
            hourly_kpi, at=100, outage_points=10, recovery_points=20
        )
        ratio = incident.series.values[110:130] / hourly_kpi.values[110:130]
        assert (np.diff(ratio) > 0).all()
        assert ratio[-1] < 1.0

    def test_labels_cover_both_phases(self, hourly_kpi):
        incident = outage_and_recovery(hourly_kpi, at=100)
        assert incident.labels[100] == 1
        assert incident.labels[99] == 0

    def test_bounds_validated(self, hourly_kpi):
        with pytest.raises(ValueError):
            outage_and_recovery(hourly_kpi, at=len(hourly_kpi) - 5)
        with pytest.raises(ValueError):
            outage_and_recovery(hourly_kpi, at=10, depth=0.0)


class TestGradualDegradation:
    def test_builds_then_plateaus(self, hourly_kpi):
        incident = gradual_degradation(
            hourly_kpi, at=50, build_points=20, plateau_points=10,
            magnitude=0.5,
        )
        ratio = incident.series.values / hourly_kpi.values
        assert ratio[49] == pytest.approx(1.0)
        assert (np.diff(ratio[50:70]) > 0).all()
        np.testing.assert_allclose(ratio[70:80], 1.5)

    def test_outside_incident_untouched(self, hourly_kpi):
        incident = gradual_degradation(hourly_kpi, at=50)
        labels = incident.labels.astype(bool)
        np.testing.assert_array_equal(
            incident.series.values[~labels], hourly_kpi.values[~labels]
        )


class TestFlashCrowd:
    def test_surge_then_decay(self, hourly_kpi):
        incident = flash_crowd(
            hourly_kpi, at=200, surge_points=5, tail_points=10, magnitude=2.0
        )
        ratio = incident.series.values / hourly_kpi.values
        np.testing.assert_allclose(ratio[200:205], 3.0)
        tail = ratio[205:215]
        assert (np.diff(tail) < 0).all()
        assert tail[0] < 3.0


class TestCascadingFailure:
    def test_stages_worsen(self, hourly_kpi):
        incident = cascading_failure(
            hourly_kpi, at=100, stages=3, stage_points=5, gap_points=10,
            magnitude=1.0,
        )
        assert len(incident.windows) == 3
        ratio = incident.series.values / hourly_kpi.values
        stage_peaks = [
            ratio[w.begin: w.end].mean() for w in incident.windows
        ]
        assert stage_peaks == sorted(stage_peaks)

    def test_gaps_are_normal(self, hourly_kpi):
        incident = cascading_failure(hourly_kpi, at=100, gap_points=10)
        first, second = incident.windows[0], incident.windows[1]
        gap = incident.labels[first.end: second.begin]
        assert gap.sum() == 0

    def test_validation(self, hourly_kpi):
        with pytest.raises(ValueError, match="stages"):
            cascading_failure(hourly_kpi, at=100, stages=1)


class TestIncidentInvariants:
    """The contract the corpus and diagnosis layers consume: labels are
    exactly the window rasterisation, phases are parallel to windows,
    and a scripted incident is a pure function of its base series."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_labels_are_the_window_rasterisation(self, hourly_kpi, name):
        from repro.timeseries import windows_to_points

        incident = SCENARIOS[name](hourly_kpi, at=150)
        np.testing.assert_array_equal(
            incident.labels,
            windows_to_points(incident.windows, len(incident.series)),
        )
        np.testing.assert_array_equal(
            incident.series.labels, incident.labels
        )

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_phases_are_parallel_to_windows(self, hourly_kpi, name):
        incident = SCENARIOS[name](hourly_kpi, at=150)
        assert len(incident.phases) == len(incident.windows)
        assert len(set(incident.phases)) == len(incident.phases)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_windows_sorted_and_in_bounds(self, hourly_kpi, name):
        incident = SCENARIOS[name](hourly_kpi, at=150)
        assert incident.windows == sorted(incident.windows)
        for window in incident.windows:
            assert 0 <= window.begin < window.end <= len(incident.series)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seeded_base_gives_identical_incident(self, name):
        from repro.data import SeasonalProfile, generate_kpi

        def build():
            base = generate_kpi(
                weeks=2,
                interval=3600,
                profile=SeasonalProfile(base_level=90.0,
                                        daily_amplitude=0.4,
                                        noise_scale=0.03, trend=0.0),
                seed=321,
                name="determinism-kpi",
            ).series
            return SCENARIOS[name](base, at=120)

        first, second = build(), build()
        np.testing.assert_array_equal(
            first.series.values, second.series.values
        )
        assert first.windows == second.windows
        assert first.phases == second.phases

    def test_adjacent_phases_stay_distinct_windows(self, hourly_kpi):
        """outage/recovery touch (recovery begins where the outage
        ends) but _finalize must not merge them: the corpus maps each
        phase to its own anomaly kind."""
        incident = outage_and_recovery(
            hourly_kpi, at=100, outage_points=12, recovery_points=24
        )
        outage, recovery = incident.windows
        assert outage.end == recovery.begin
        assert (outage.end - outage.begin, recovery.end - recovery.begin) \
            == (12, 24)


class TestRegistry:
    def test_all_scenarios_runnable(self, hourly_kpi):
        for name, scenario in SCENARIOS.items():
            incident = scenario(hourly_kpi, at=150)
            assert incident.labels.sum() > 0, name
            assert len(incident.phases) == len(incident.windows) or (
                name == "cascading_failure"
            )

    def test_detectors_see_the_incidents(self, hourly_kpi):
        """Sanity: an outage lights up the Table-3-style detectors."""
        from repro.detectors import TSDMad
        from repro.evaluation import aucpr

        incident = outage_and_recovery(hourly_kpi, at=400, depth=0.8)
        detector = TSDMad(1, hourly_kpi.points_per_week)
        severities = detector.severities(incident.series)
        assert aucpr(severities, incident.labels) > 0.5
