"""Edge-case coverage across modules: degenerate inputs, fallback
paths, and API corners not exercised by the main suites."""

import numpy as np
import pytest

from repro.core import I4, Opprentice, run_online
from repro.detectors import Detector
from repro.detectors.base import _BufferedStream
from repro.timeseries import TimeSeries

from test_opprentice import fast_forest, online_kpi, small_bank


class _MinimalDetector(Detector):
    """A custom detector relying on every base-class default."""

    kind = "minimal"

    def __init__(self, lag: int = 1):
        self.lag = lag

    def params(self):
        return {"lag": self.lag}

    def warmup(self):
        return self.lag

    def severities(self, series):
        values = self._validate(series)
        out = np.full(len(values), np.nan)
        out[self.lag:] = np.abs(values[self.lag:] - values[:-self.lag])
        return out


class TestBufferedStreamFallback:
    """Custom detectors without a stream() override still get a correct
    (if O(n^2)) online mode through the buffered fallback."""

    def test_default_stream_matches_batch(self, rng):
        detector = _MinimalDetector(lag=3)
        values = rng.normal(10, 2, 50)
        series = TimeSeries(values=values, interval=60)
        batch = detector.severities(series)
        stream = detector.stream()
        assert isinstance(stream, _BufferedStream)
        online = np.array([stream.update(v) for v in values])
        np.testing.assert_allclose(online, batch, equal_nan=True)

    def test_feature_name_formatting(self):
        assert _MinimalDetector(lag=7).feature_name == "minimal(lag=7)"

    def test_validate_rejects_2d(self):
        detector = _MinimalDetector()
        bad = TimeSeries(values=np.zeros(4), interval=60)
        bad.values = np.zeros((2, 2))  # simulate corruption
        from repro.detectors import DetectorError

        with pytest.raises(DetectorError):
            detector.severities(bad)


class TestRunOnlineCorners:
    def test_alternative_strategy(self):
        """run_online accepts any Table 2 strategy, not just I1."""
        from repro.data import SeasonalProfile, generate_kpi, inject_anomalies

        generated = generate_kpi(
            weeks=13, interval=3600,
            profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                    noise_scale=0.02),
            seed=21,
        )
        series = inject_anomalies(
            generated.series, target_fraction=0.06, seed=22
        ).series
        run = run_online(
            series,
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
            strategy=I4,
        )
        # 13 weeks: 4-week windows starting at weeks 9 and 10.
        assert [o.week for o in run.outcomes] == [9, 10]
        ppw = series.points_per_week
        assert run.outcomes[0].test_end - run.outcomes[0].test_begin == 4 * ppw

    def test_i4_too_short_raises(self, labeled_kpi):
        with pytest.raises(ValueError, match="too short"):
            run_online(
                labeled_kpi.series,
                configs=small_bank(labeled_kpi.series.points_per_week),
                classifier_factory=fast_forest,
                strategy=I4,
            )

    def test_degenerate_training_week_skipped(self):
        """Weeks whose training history has no labelled anomalies are
        skipped rather than crashing the loop."""
        from repro.data import SeasonalProfile, generate_kpi

        generated = generate_kpi(
            weeks=10, interval=3600,
            profile=SeasonalProfile(base_level=100.0, noise_scale=0.02),
            seed=5,
        )
        series = generated.series
        labels = np.zeros(len(series), dtype=np.int8)
        # Anomalies exist only in week 9, so the first test week (week
        # 9) trains on anomaly-free data and must be skipped; week 10
        # trains on data that includes week 9's anomalies.
        ppw = series.points_per_week
        labels[8 * ppw + 10: 8 * ppw + 30] = 1
        series = series.with_labels(labels)
        series.values[8 * ppw + 10: 8 * ppw + 30] *= 3.0
        run = run_online(
            series,
            configs=small_bank(ppw),
            classifier_factory=fast_forest,
        )
        assert [o.week for o in run.outcomes] == [10]


class TestOpprenticeCorners:
    def test_retrain_alias(self, labeled_kpi):
        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        )
        opp.retrain(series)  # same as fit
        assert opp.classifier_ is not None

    def test_observe_best_cthld_updates_predictor(self, labeled_kpi, rng):
        series = labeled_kpi.series
        opp = Opprentice(
            configs=small_bank(series.points_per_week),
            classifier_factory=fast_forest,
        ).fit(series)
        scores = rng.random(200)
        labels = (rng.random(200) < 0.2).astype(np.int8)
        best = opp.observe_best_cthld(scores, labels)
        assert 0.0 <= best <= 1.0
        assert opp.cthld_predictor.current is not None

    def test_score_features_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            Opprentice().score_features(rng.random((5, 3)))


class TestTimeSeriesCorners:
    def test_timestamps_cache_refreshes_after_resize(self):
        ts = TimeSeries(values=np.zeros(5), interval=60)
        first = ts.timestamps
        ts.values = np.zeros(8)
        assert len(ts.timestamps) == 8

    def test_week_negative_index(self):
        ts = TimeSeries(values=np.zeros(168), interval=3600)
        from repro.timeseries import TimeSeriesError

        with pytest.raises(TimeSeriesError):
            ts.week(-1)

    def test_month_negative_index(self):
        ts = TimeSeries(values=np.zeros(24 * 40), interval=3600)
        from repro.timeseries import TimeSeriesError

        with pytest.raises(TimeSeriesError):
            ts.month(-1)


class TestServiceStatsDefaults:
    def test_fresh_counters(self):
        from repro.core import ServiceStats

        stats = ServiceStats()
        assert stats.points_ingested == 0
        assert stats.alerts_opened == 0
        assert stats.retrain_rounds == 0
