"""k-fold cThld cross-validation tests (§4.5.2)."""

import numpy as np
import pytest

from repro.evaluation import (
    AccuracyPreference,
    contiguous_folds,
    cross_validate_cthld,
)


class TestContiguousFolds:
    def test_partition_covers_everything(self):
        folds = contiguous_folds(103, 5)
        joined = np.concatenate(folds)
        np.testing.assert_array_equal(joined, np.arange(103))

    def test_fold_sizes_near_equal(self):
        folds = contiguous_folds(103, 5)
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_folds_are_contiguous(self):
        for fold in contiguous_folds(50, 5):
            assert (np.diff(fold) == 1).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            contiguous_folds(10, 1)
        with pytest.raises(ValueError):
            contiguous_folds(3, 5)


class _OracleClassifier:
    """Scores equal to a hidden signal: perfect separation at 0.7."""

    def fit(self, X, y):
        return self

    def predict_proba(self, X):
        return X[:, 0]


class TestCrossValidateCThld:
    def _data(self, rng, n=500):
        """Feature 0 is the anomaly probability itself; anomalies have
        scores >= 0.8, normals <= 0.6."""
        y = (rng.random(n) < 0.2).astype(int)
        scores = np.where(
            y == 1, rng.uniform(0.8, 1.0, n), rng.uniform(0.0, 0.6, n)
        )
        return scores[:, None], y

    def test_finds_separating_threshold(self, rng):
        X, y = self._data(rng)
        cthld = cross_validate_cthld(
            _OracleClassifier, X, y, AccuracyPreference(0.66, 0.66)
        )
        # The chosen threshold must separate the classes perfectly.
        max_normal = X[y == 0, 0].max()
        min_anomaly = X[y == 1, 0].min()
        assert max_normal < cthld <= min_anomaly

    def test_respects_candidate_grid(self, rng):
        X, y = self._data(rng)
        cthld = cross_validate_cthld(
            _OracleClassifier,
            X,
            y,
            AccuracyPreference(0.66, 0.66),
            candidates=[0.3, 0.7],
        )
        assert cthld == 0.7

    def test_no_anomalies_falls_back_to_default(self):
        X = np.random.default_rng(0).random((100, 1))
        y = np.zeros(100, dtype=int)
        cthld = cross_validate_cthld(
            _OracleClassifier, X, y, AccuracyPreference()
        )
        assert cthld == 0.5

    def test_validation(self, rng):
        X, y = self._data(rng, n=50)
        with pytest.raises(ValueError):
            cross_validate_cthld(
                _OracleClassifier, X, y[:-1], AccuracyPreference()
            )
        with pytest.raises(ValueError):
            cross_validate_cthld(
                _OracleClassifier, X, y, AccuracyPreference(), candidates=[]
            )
