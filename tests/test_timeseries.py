"""Unit tests for the TimeSeries container."""

import numpy as np
import pytest

from repro.timeseries import DAY, WEEK, TimeSeries, TimeSeriesError


def series(n=100, interval=3600, **kwargs):
    return TimeSeries(values=np.arange(n, dtype=float), interval=interval, **kwargs)


class TestConstruction:
    def test_basic(self):
        ts = series(10)
        assert len(ts) == 10
        assert ts.interval == 3600
        assert not ts.is_labeled

    def test_values_coerced_to_float(self):
        ts = TimeSeries(values=np.array([1, 2, 3]), interval=60)
        assert ts.values.dtype == np.float64

    def test_rejects_2d_values(self):
        with pytest.raises(TimeSeriesError, match="1-D"):
            TimeSeries(values=np.zeros((3, 3)), interval=60)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(TimeSeriesError, match="interval"):
            TimeSeries(values=np.zeros(3), interval=0)

    def test_rejects_mismatched_labels(self):
        with pytest.raises(TimeSeriesError, match="labels shape"):
            TimeSeries(values=np.zeros(3), interval=60, labels=np.zeros(4))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(TimeSeriesError, match="0/1"):
            TimeSeries(
                values=np.zeros(3), interval=60, labels=np.array([0, 1, 2])
            )

    def test_iteration(self):
        assert list(series(3)) == [0.0, 1.0, 2.0]


class TestGrid:
    def test_timestamps(self):
        ts = series(4, interval=60, start=1000)
        assert ts.timestamps.tolist() == [1000, 1060, 1120, 1180]

    def test_points_per_day_hourly(self):
        assert series(10, interval=3600).points_per_day == 24

    def test_points_per_day_minutely(self):
        assert series(10, interval=60).points_per_day == 1440

    def test_points_per_day_requires_divisor(self):
        ts = series(10, interval=7000)
        with pytest.raises(TimeSeriesError, match="does not divide"):
            _ = ts.points_per_day

    def test_points_per_week(self):
        assert series(10, interval=3600).points_per_week == 168

    def test_n_weeks_fractional(self):
        ts = series(168 + 84, interval=3600)
        assert ts.n_weeks == pytest.approx(1.5)

    def test_index_at(self):
        ts = series(10, interval=60, start=500)
        assert ts.index_at(500) == 0
        assert ts.index_at(560) == 1

    def test_index_at_off_grid(self):
        ts = series(10, interval=60)
        with pytest.raises(TimeSeriesError, match="not on the grid"):
            ts.index_at(30)

    def test_index_at_out_of_range(self):
        ts = series(10, interval=60)
        with pytest.raises(TimeSeriesError, match="outside"):
            ts.index_at(60 * 100)


class TestMissing:
    def test_missing_mask(self):
        ts = TimeSeries(values=np.array([1.0, np.nan, 3.0]), interval=60)
        assert ts.missing_mask.tolist() == [False, True, False]
        assert ts.n_missing == 1


class TestSlicing:
    def test_slice_values_and_start(self):
        ts = series(10, interval=60, start=0)
        sub = ts.slice(2, 5)
        assert sub.values.tolist() == [2.0, 3.0, 4.0]
        assert sub.start == 120
        assert len(sub) == 3

    def test_slice_carries_labels(self):
        labels = np.zeros(10, dtype=np.int8)
        labels[3] = 1
        ts = series(10).with_labels(labels)
        assert ts.slice(2, 5).labels.tolist() == [0, 1, 0]

    def test_slice_bounds_checked(self):
        with pytest.raises(TimeSeriesError):
            series(10).slice(5, 20)
        with pytest.raises(TimeSeriesError):
            series(10).slice(-1, 5)

    def test_week_view(self):
        ts = series(168 * 2, interval=3600)
        week1 = ts.week(1)
        assert len(week1) == 168
        assert week1.values[0] == 168.0

    def test_week_out_of_range(self):
        with pytest.raises(TimeSeriesError, match="week"):
            series(168, interval=3600).week(2)

    def test_weeks_iterates_partial_final(self):
        ts = series(168 + 10, interval=3600)
        weeks = list(ts.weeks())
        assert len(weeks) == 2
        assert len(weeks[1]) == 10

    def test_month_blocks(self):
        ts = series(24 * 45, interval=3600)  # 45 days
        assert ts.n_months() == 2
        assert len(ts.month(0)) == 24 * 30
        assert len(ts.month(1)) == 24 * 15


class TestLabels:
    def test_with_labels_roundtrip(self):
        ts = series(5).with_labels([0, 1, 0, 1, 1])
        assert ts.is_labeled
        assert ts.anomaly_fraction() == pytest.approx(0.6)

    def test_anomaly_fraction_requires_labels(self):
        with pytest.raises(TimeSeriesError, match="no labels"):
            series(5).anomaly_fraction()

    def test_copy_is_independent(self):
        ts = series(5).with_labels([0, 0, 1, 0, 0])
        clone = ts.copy()
        clone.values[0] = 99.0
        clone.labels[0] = 1
        assert ts.values[0] == 0.0
        assert ts.labels[0] == 0


class TestConcat:
    def test_concat_continues_grid(self):
        a = series(5, interval=60, start=0)
        b = series(3, interval=60, start=300)
        joined = a.concat(b)
        assert len(joined) == 8
        assert joined.timestamps[-1] == 420

    def test_concat_rejects_gap(self):
        a = series(5, interval=60, start=0)
        b = series(3, interval=60, start=360)
        with pytest.raises(TimeSeriesError, match="expected 300"):
            a.concat(b)

    def test_concat_rejects_interval_mismatch(self):
        a = series(5, interval=60)
        b = series(3, interval=120, start=300)
        with pytest.raises(TimeSeriesError, match="interval mismatch"):
            a.concat(b)

    def test_concat_rejects_mixed_labeling(self):
        a = series(5, interval=60).with_labels([0] * 5)
        b = series(3, interval=60, start=300)
        with pytest.raises(TimeSeriesError, match="labelled"):
            a.concat(b)

    def test_concat_joins_labels(self):
        a = series(2, interval=60).with_labels([0, 1])
        b = TimeSeries(
            values=np.zeros(2), interval=60, start=120,
            labels=np.array([1, 0]),
        )
        assert a.concat(b).labels.tolist() == [0, 1, 1, 0]


def test_constants_consistent():
    assert WEEK == 7 * DAY
    assert DAY == 86400
