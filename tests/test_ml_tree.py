"""Decision tree tests: split search, purity, prediction."""

import numpy as np
import pytest

from repro.ml import Binner, DecisionTree
from repro.ml.base import NotFittedError
from repro.ml.tree import _gini_best_split


class TestBinner:
    def test_transform_monotone(self, rng):
        features = rng.normal(size=(500, 3))
        binner = Binner().fit(features)
        binned = binner.transform(features)
        col = features[:, 0]
        codes = binned[:, 0]
        order = np.argsort(col)
        assert (np.diff(codes[order].astype(int)) >= 0).all()

    def test_max_bins_respected(self, rng):
        features = rng.normal(size=(10_000, 1))
        binner = Binner(max_bins=16).fit(features)
        codes = binner.transform(features)
        assert codes.max() <= 16

    def test_constant_feature_single_bin(self):
        features = np.ones((100, 1))
        binner = Binner().fit(features)
        assert (binner.transform(features) == binner.transform(features)[0]).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            Binner(max_bins=1)
        with pytest.raises(RuntimeError):
            Binner().transform(np.ones((2, 2)))


class TestGiniSplit:
    def test_perfect_split(self):
        # Bin 0: 10 negatives; bin 1: 10 positives.
        counts0 = np.array([10, 0])
        counts1 = np.array([0, 10])
        decrease, split_bin = _gini_best_split(counts0, counts1)
        assert split_bin == 0
        assert decrease == pytest.approx(0.5)  # parent gini 0.5 -> 0

    def test_pure_node_no_split(self):
        decrease, split_bin = _gini_best_split(
            np.array([5, 5]), np.array([0, 0])
        )
        assert split_bin == -1

    def test_uninformative_split_rejected(self):
        # Identical class ratio in both bins: no impurity decrease.
        decrease, split_bin = _gini_best_split(
            np.array([5, 5]), np.array([5, 5])
        )
        assert split_bin == -1


class TestDecisionTree:
    def test_fits_separable_data_perfectly(self, rng):
        X = rng.normal(size=(400, 5))
        y = (X[:, 2] > 0.3).astype(int)
        tree = DecisionTree().fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_fully_grown_leaves_are_pure(self, rng):
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] + 0.2 * rng.normal(size=300) > 0).astype(int)
        tree = DecisionTree().fit(X, y)
        probabilities = {n.probability for n in tree.nodes_ if n.is_leaf}
        assert probabilities <= {0.0, 1.0}

    def test_max_depth_limits_depth(self, rng):
        X = rng.normal(size=(500, 4))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        tree = DecisionTree(max_depth=3).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTree(min_samples_leaf=20).fit(X, y)
        # Count samples routed to each leaf.
        proba = tree.predict_proba(X)
        assert tree.n_leaves <= 10

    def test_probability_semantics(self, rng):
        X = rng.normal(size=(100, 2))
        y = rng.integers(0, 2, 100)
        tree = DecisionTree(max_depth=1).fit(X, y)
        proba = tree.predict_proba(X)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_most_informative_feature_at_root(self, rng):
        X = rng.normal(size=(500, 6))
        y = (X[:, 4] > 0).astype(int)
        tree = DecisionTree().fit(X, y)
        assert tree.nodes_[0].feature == 4

    def test_reproducible_with_seed(self, rng):
        X = rng.normal(size=(200, 8))
        y = (X[:, 0] > 0).astype(int)
        a = DecisionTree(max_features="sqrt", seed=3).fit(X, y)
        b = DecisionTree(max_features="sqrt", seed=3).fit(X, y)
        np.testing.assert_array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_feature_importances_sum_to_one(self, rng):
        X = rng.normal(size=(300, 5))
        y = (X[:, 1] + X[:, 2] > 0).astype(int)
        tree = DecisionTree().fit(X, y)
        importances = tree.feature_importances()
        assert importances.sum() == pytest.approx(1.0)
        assert importances[1] + importances[2] > 0.5

    def test_input_validation(self, rng):
        X = rng.normal(size=(50, 3))
        y = (X[:, 0] > 0).astype(int)
        with pytest.raises(ValueError, match="NaN"):
            bad = X.copy()
            bad[0, 0] = np.nan
            DecisionTree().fit(bad, y)
        with pytest.raises(ValueError, match="0/1"):
            DecisionTree().fit(X, y + 5)
        with pytest.raises(ValueError, match="labels shape"):
            DecisionTree().fit(X, y[:-1])
        with pytest.raises(NotFittedError):
            DecisionTree().predict_proba(X)
        tree = DecisionTree().fit(X, y)
        with pytest.raises(ValueError, match="expected"):
            tree.predict_proba(X[:, :2])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTree(min_samples_split=1)

    def test_all_one_class_is_single_leaf(self, rng):
        X = rng.normal(size=(50, 3))
        tree = DecisionTree().fit(X, np.zeros(50, dtype=int))
        assert tree.n_leaves == 1
        assert (tree.predict_proba(X) == 0.0).all()
