"""SLO engine: spec parsing, percentile math, burn-rate windows, CLI."""

import json

import pytest

from repro.obs import MetricsRegistry, estimate_cdf, estimate_percentile
from repro.obs.cli import main as obs_main
from repro.obs.slo import (
    SLOSpec,
    SLOSpecError,
    evaluate_slo,
    evaluate_slos,
    load_slo_specs,
    load_snapshot_series,
    parse_slo_spec,
    parse_slo_specs,
    parse_window,
)


def _spec(**overrides) -> SLOSpec:
    raw = {
        "name": "ingest-p99",
        "objective": "p99_latency",
        "metric": "repro_ingest_seconds",
        "target": 0.1,
    }
    raw.update(overrides)
    return parse_slo_spec(raw)


def _snapshot_with_latencies(values, buckets=(0.01, 0.1, 1.0)):
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_ingest_seconds", "Ingest latency", buckets=buckets
    )
    for value in values:
        histogram.observe(value)
    return registry.snapshot()


class TestParseWindow:
    def test_units(self):
        assert parse_window("30s") == 30.0
        assert parse_window("5m") == 300.0
        assert parse_window("1h") == 3600.0
        assert parse_window("2d") == 2 * 86400.0
        assert parse_window("1w") == 604800.0

    @pytest.mark.parametrize("bad", ["", "5", "m5", "5 minutes", "-5m"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(SLOSpecError):
            parse_window(bad)


class TestSpecParsing:
    def test_p99_sugar_normalises(self):
        spec = _spec()
        assert spec.objective == "latency_quantile"
        assert spec.quantile == pytest.approx(0.99)
        assert spec.budget == pytest.approx(0.01)

    def test_ratio_budget_is_the_target(self):
        spec = _spec(
            objective="drop_ratio",
            metric="repro_fleet_dropped_points_total",
            denominator="repro_loadgen_points_offered_total",
            target=0.05,
        )
        assert spec.budget == pytest.approx(0.05)

    def test_availability_budget_is_one_minus_target(self):
        spec = _spec(
            objective="availability",
            metric="bad_total",
            denominator="all_total",
            target=0.999,
        )
        assert spec.budget == pytest.approx(0.001)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"objective": "p99_tail"},  # unknown objective
            {"name": ""},  # empty name
            {"metric": None},  # missing metric
            {"target": "fast"},  # non-numeric target
            {"target": True},  # bool is not a number
            {"target": -0.1},  # latency target must be positive
            {"quantile": 0.5},  # p99 sugar forbids explicit quantile
            {"objective": "latency_quantile", "quantile": 1.5},
            {"objective": "latency_quantile"},  # quantile required
            {"objective": "error_ratio"},  # denominator required
            {"objective": "error_ratio", "denominator": "d", "target": 1.5},
            {"denominator": "d"},  # denominator on a latency SLO
            {"windows": []},
            {"windows": ["5 minutes"]},
            {"burn_rate_limit": 0},
            {"nonsense_key": 1},
        ],
    )
    def test_rejects_bad_specs(self, overrides):
        with pytest.raises(SLOSpecError):
            _spec(**overrides)

    def test_duplicate_names_rejected(self):
        raw = {
            "name": "x",
            "objective": "p99_latency",
            "metric": "m",
            "target": 1.0,
        }
        with pytest.raises(SLOSpecError, match="duplicate"):
            parse_slo_specs({"slo": [raw, dict(raw)]})

    def test_document_without_tables_rejected(self):
        with pytest.raises(SLOSpecError):
            parse_slo_specs({})

    def test_load_toml_and_json(self, tmp_path):
        toml_path = tmp_path / "targets.toml"
        toml_path.write_text(
            '[[slo]]\nname = "a"\nobjective = "p99_latency"\n'
            'metric = "m"\ntarget = 0.5\n'
        )
        json_path = tmp_path / "targets.json"
        json_path.write_text(json.dumps({
            "slo": [{"name": "a", "objective": "p99_latency",
                     "metric": "m", "target": 0.5}],
        }))
        for path in (toml_path, json_path):
            (spec,) = load_slo_specs(path)
            assert spec.name == "a"
            assert spec.quantile == pytest.approx(0.99)

    def test_load_invalid_toml_is_spec_error(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[[slo\n")
        with pytest.raises(SLOSpecError, match="invalid TOML"):
            load_slo_specs(path)


class TestPercentileEstimation:
    BOUNDS = [1.0, 2.0, 4.0]

    def test_interpolates_inside_bucket(self):
        # 10 observations uniformly in (1, 2]: cumulative [0, 10, 10, 10]
        value = estimate_percentile(self.BOUNDS, [0, 10, 10, 10], 0.5)
        assert value == pytest.approx(1.5)

    def test_rank_exactly_on_bucket_boundary(self):
        # 4 in (0,1], 4 in (1,2]: the 0.5 rank (4 of 8) sits exactly on
        # the first bound.
        value = estimate_percentile(self.BOUNDS, [4, 8, 8, 8], 0.5)
        assert value == pytest.approx(1.0)

    def test_first_bucket_lower_edge_is_zero(self):
        value = estimate_percentile(self.BOUNDS, [10, 10, 10, 10], 0.5)
        assert value == pytest.approx(0.5)

    def test_overflow_bucket_clamps_to_highest_bound(self):
        # Everything beyond the last finite bound.
        value = estimate_percentile(self.BOUNDS, [0, 0, 0, 10], 0.99)
        assert value == pytest.approx(4.0)

    def test_q_one_in_overflow(self):
        value = estimate_percentile(self.BOUNDS, [5, 5, 5, 10], 1.0)
        assert value == pytest.approx(4.0)

    def test_empty_histogram_is_none(self):
        assert estimate_percentile(self.BOUNDS, [0, 0, 0, 0], 0.99) is None

    def test_cdf_inverse_view(self):
        cumulative = [0, 10, 10, 10]
        assert estimate_cdf(self.BOUNDS, cumulative, 1.5) == pytest.approx(0.5)
        assert estimate_cdf(self.BOUNDS, cumulative, 2.0) == pytest.approx(1.0)

    def test_cdf_beyond_last_bound_counts_overflow_as_violations(self):
        # 5 below 4.0, 5 in overflow: fraction <= anything >= 4.0 stays
        # 0.5 — the overflow observations count against the target.
        assert estimate_cdf(self.BOUNDS, [5, 5, 5, 10], 9.0) == pytest.approx(0.5)


def _checkpoint_series(latencies_by_time, buckets=(0.01, 0.1, 1.0)):
    """Build a soak-style series: cumulative histograms at each time."""
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_ingest_seconds", "Ingest latency", buckets=buckets
    )
    series = []
    for sim_seconds, latencies in latencies_by_time:
        for value in latencies:
            histogram.observe(value)
        series.append((float(sim_seconds), registry.snapshot()))
    return series


class TestBurnRateWindows:
    def test_plain_snapshot_evaluates_total_window(self):
        snapshot = _snapshot_with_latencies([0.005] * 99 + [0.5])
        result = evaluate_slo(_spec(target=0.6), [(None, snapshot)])
        assert [w.window for w in result.windows] == ["total"]
        assert not result.violated

    def test_all_windows_breached_violates(self):
        # Slow from the start: both the fast and slow window burn hot.
        series = _checkpoint_series([
            (0, [0.5] * 50),
            (3300, [0.5] * 50),
            (3600, [0.5] * 50),
        ])
        result = evaluate_slo(_spec(windows=["5m", "1h"]), series)
        assert result.violated
        assert all(w.breached for w in result.windows)
        assert "every" in result.reason

    def test_fast_spike_slow_ok_is_transient_not_violated(self):
        # 1000 fast points early, then a burst of slow ones at the end:
        # the 5m window burns, the 1h window has absorbed it.
        series = _checkpoint_series([
            (0, [0.005] * 1000),
            (3300, [0.005] * 1000),
            (3600, [0.5] * 5),
        ])
        spec = _spec(windows=["5m", "1h"])
        result = evaluate_slo(spec, series)
        by_window = {w.window: w for w in result.windows}
        assert by_window["5m"].breached is True
        assert by_window["1h"].breached is False
        assert not result.violated
        assert "transient" in result.reason

    def test_windows_within_budget(self):
        series = _checkpoint_series([
            (0, [0.005] * 1000),
            (3300, [0.005] * 1000),
            (3600, [0.005] * 995 + [0.5] * 5),
        ])
        result = evaluate_slo(_spec(windows=["5m", "1h"]), series)
        assert not result.violated
        for window in result.windows:
            assert window.breached is False
            assert window.burn_rate is not None

    def test_no_data_is_a_violation(self):
        snapshot = MetricsRegistry().snapshot()
        result = evaluate_slo(_spec(), [(None, snapshot)])
        assert result.violated
        assert "no data" in result.reason

    def test_window_with_no_new_points_is_not_evaluated(self):
        # Nothing lands between the last two checkpoints: the fast
        # window has no delta, so only the slow window decides.
        series = _checkpoint_series([
            (0, [0.005] * 100),
            (3300, [0.005] * 100),
            (3600, []),
        ])
        result = evaluate_slo(_spec(windows=["5m", "1h"]), series)
        by_window = {w.window: w for w in result.windows}
        assert by_window["5m"].breached is None
        assert by_window["1h"].breached is False
        assert not result.violated

    def test_drop_ratio_burn_rate(self):
        registry = MetricsRegistry()
        dropped = registry.counter("dropped_total", "d")
        offered = registry.counter("offered_total", "o")
        series = []
        offered.inc(1000)
        dropped.inc(10)  # 1% over the first hour
        series.append((3600.0, registry.snapshot()))
        offered.inc(1000)
        dropped.inc(100)  # 10% over the second hour: 2x the budget
        series.append((7200.0, registry.snapshot()))
        spec = parse_slo_spec({
            "name": "drops",
            "objective": "drop_ratio",
            "metric": "dropped_total",
            "denominator": "offered_total",
            "target": 0.05,
            "windows": ["1h"],
        })
        result = evaluate_slo(spec, series)
        (window,) = result.windows
        assert window.error_ratio == pytest.approx(0.1)
        assert window.burn_rate == pytest.approx(2.0)
        assert result.violated

    def test_label_selector_aggregates_matching_series_only(self):
        registry = MetricsRegistry()
        registry.histogram(
            "m", "h", buckets=(1.0,), kpi="a"
        ).observe(0.5)
        registry.histogram(
            "m", "h", buckets=(1.0,), kpi="b"
        ).observe(10.0)
        snapshot = registry.snapshot()
        spec_a = parse_slo_spec({
            "name": "a", "objective": "p99_latency", "metric": "m",
            "target": 2.0, "labels": {"kpi": "a"},
        })
        result = evaluate_slo(spec_a, [(None, snapshot)])
        assert not result.violated
        spec_b = parse_slo_spec({
            "name": "b", "objective": "p99_latency", "metric": "m",
            "target": 2.0, "labels": {"kpi": "b"},
        })
        assert evaluate_slo(spec_b, [(None, snapshot)]).violated

    def test_report_shape_and_render(self):
        snapshot = _snapshot_with_latencies([0.005] * 10)
        report = evaluate_slos(
            [_spec(), _spec(name="other", target=0.001)],
            [(None, snapshot)],
        )
        data = report.as_dict()
        assert data["ok"] is False
        assert data["violations"] == ["other"]
        text = report.render()
        assert "ingest-p99" in text
        assert "VIOLATED" in text
        assert "2 SLOs, 1 violated" in text


class TestSnapshotSeriesLoading:
    def test_soak_document(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total", "c").inc()
        path = tmp_path / "soak.json"
        path.write_text(json.dumps({
            "checkpoints": [
                {"sim_seconds": 60, "snapshot": registry.snapshot()},
                {"sim_seconds": 120, "snapshot": registry.snapshot()},
            ],
        }))
        series = load_snapshot_series(path)
        assert [sim for sim, _ in series] == [60.0, 120.0]

    def test_non_increasing_checkpoints_rejected(self, tmp_path):
        snapshot = MetricsRegistry().snapshot()
        path = tmp_path / "soak.json"
        path.write_text(json.dumps({
            "checkpoints": [
                {"sim_seconds": 120, "snapshot": snapshot},
                {"sim_seconds": 60, "snapshot": snapshot},
            ],
        }))
        with pytest.raises(ValueError, match="increasing"):
            load_snapshot_series(path)

    def test_plain_snapshot_is_a_single_entry(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(MetricsRegistry().snapshot()))
        ((sim, _),) = load_snapshot_series(path)
        assert sim is None


class TestSloCli:
    @pytest.fixture()
    def soak_path(self, tmp_path):
        series = _checkpoint_series([
            (0, [0.005] * 100),
            (3300, [0.005] * 100),
            (3600, [0.005] * 100),
        ])
        path = tmp_path / "soak.json"
        path.write_text(json.dumps({
            "checkpoints": [
                {"sim_seconds": sim, "snapshot": snapshot}
                for sim, snapshot in series
            ],
        }))
        return str(path)

    def _targets(self, tmp_path, target):
        path = tmp_path / "targets.toml"
        path.write_text(
            '[[slo]]\nname = "ingest-p99"\nobjective = "p99_latency"\n'
            f'metric = "repro_ingest_seconds"\ntarget = {target}\n'
            'windows = ["5m", "1h"]\n'
        )
        return str(path)

    def test_meeting_targets_exits_zero(self, tmp_path, soak_path, capsys):
        code = obs_main([
            "slo", "--targets", self._targets(tmp_path, 0.5),
            "--snapshot", soak_path,
        ])
        assert code == 0
        assert "0 violated" in capsys.readouterr().out

    def test_violation_exits_one_with_table(
        self, tmp_path, soak_path, capsys
    ):
        code = obs_main([
            "slo", "--targets", self._targets(tmp_path, 0.000001),
            "--snapshot", soak_path,
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "BREACH" in out

    def test_json_out_writes_full_report(self, tmp_path, soak_path, capsys):
        report_path = tmp_path / "report.json"
        code = obs_main([
            "slo", "--targets", self._targets(tmp_path, 0.000001),
            "--snapshot", soak_path, "--format", "json",
            "--json-out", str(report_path),
        ])
        assert code == 1
        on_disk = json.loads(report_path.read_text())
        printed = json.loads(capsys.readouterr().out)
        assert on_disk == printed
        assert on_disk["ok"] is False
        assert on_disk["violations"] == ["ingest-p99"]

    def test_bad_spec_exits_two(self, tmp_path, soak_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[[slo]]\nname = "x"\nobjective = "nope"\n')
        code = obs_main([
            "slo", "--targets", str(bad), "--snapshot", soak_path,
        ])
        assert code == 2
        assert "invalid SLO spec" in capsys.readouterr().err

    def test_committed_targets_parse(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent / "slo"
        specs = load_slo_specs(root / "targets.toml")
        assert {spec.name for spec in specs} == {
            "fleet-ingest-p99", "alert-delay-p90", "ingest-drop-ratio"
        }
        (impossible,) = load_slo_specs(root / "impossible.toml")
        assert impossible.target == pytest.approx(1e-9)
