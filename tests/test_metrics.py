"""PC-Score and cThld selection metric tests (§4.5.1, Fig 6/12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    AccuracyPreference,
    DefaultCThld,
    FScoreSelector,
    PCScoreSelector,
    SDSelector,
    evaluate_threshold,
    f_score,
    pc_score,
    pr_curve,
)

unit = st.floats(min_value=0.0, max_value=1.0)


class TestAccuracyPreference:
    def test_satisfaction(self):
        pref = AccuracyPreference(0.66, 0.66)
        assert pref.satisfied_by(0.7, 0.66)
        assert not pref.satisfied_by(0.65, 0.9)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            AccuracyPreference(1.2, 0.5)

    def test_scaling_lowers_bounds(self):
        pref = AccuracyPreference(0.8, 0.6).scaled(2.0)
        assert pref.recall == pytest.approx(0.4)
        assert pref.precision == pytest.approx(0.3)

    def test_scaling_below_one_rejected(self):
        with pytest.raises(ValueError):
            AccuracyPreference().scaled(0.5)


class TestPCScore:
    @given(r=unit, p=unit)
    def test_satisfying_point_beats_any_non_satisfying(self, r, p):
        """The incentive constant guarantees this ordering (§4.5.1)."""
        pref = AccuracyPreference(0.66, 0.66)
        satisfying = pc_score(0.66, 0.66, pref)
        score = pc_score(r, p, pref)
        if not pref.satisfied_by(r, p):
            assert score < satisfying

    @given(r=unit, p=unit)
    def test_equals_fscore_plus_indicator(self, r, p):
        pref = AccuracyPreference(0.5, 0.5)
        expected = f_score(r, p) + (1.0 if pref.satisfied_by(r, p) else 0.0)
        assert pc_score(r, p, pref) == pytest.approx(expected)


def curve_from(scores, labels):
    return pr_curve(np.asarray(scores, float), np.asarray(labels))


class TestSelectors:
    def setup_method(self):
        # A curve with a high-precision/low-recall end and a
        # low-precision/high-recall end.
        self.scores = np.array(
            [0.95, 0.9, 0.85, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2]
        )
        self.labels = np.array([1, 1, 1, 0, 1, 0, 1, 0, 0, 1])

    def test_fscore_selector_maximizes_f1(self):
        choice = FScoreSelector().select(self.scores, self.labels)
        curve = curve_from(self.scores, self.labels)
        best = max(
            f_score(r, p) for r, p in zip(curve.recalls, curve.precisions)
        )
        assert f_score(choice.recall, choice.precision) == pytest.approx(best)

    def test_sd_selector_minimizes_distance(self):
        choice = SDSelector().select(self.scores, self.labels)
        curve = curve_from(self.scores, self.labels)
        best = min(
            np.hypot(1 - r, 1 - p)
            for r, p in zip(curve.recalls, curve.precisions)
        )
        assert np.hypot(
            1 - choice.recall, 1 - choice.precision
        ) == pytest.approx(best)

    def test_default_selector_uses_half(self):
        choice = DefaultCThld().select(self.scores, self.labels)
        recall, precision = evaluate_threshold(self.scores, self.labels, 0.5)
        assert choice.threshold == 0.5
        assert (choice.recall, choice.precision) == (recall, precision)

    def test_default_selector_all_below_threshold(self):
        choice = DefaultCThld().select(
            np.array([0.1, 0.2, 0.3]), np.array([1, 0, 1])
        )
        assert choice.recall == 0.0
        assert choice.precision == 1.0

    def test_pcscore_adapts_to_preference(self):
        """The Fig 6 behaviour: different preferences pick different
        curve points; the fixed metrics cannot."""
        recall_pref = AccuracyPreference(recall=0.8, precision=0.2)
        precision_pref = AccuracyPreference(recall=0.2, precision=0.9)
        high_recall = PCScoreSelector(recall_pref).select(self.scores, self.labels)
        high_precision = PCScoreSelector(precision_pref).select(
            self.scores, self.labels
        )
        assert high_recall.recall >= 0.8
        assert high_precision.precision >= 0.9
        assert high_recall.threshold < high_precision.threshold

    def test_pcscore_picks_satisfying_point_when_one_exists(self):
        pref = AccuracyPreference(0.6, 0.6)
        choice = PCScoreSelector(pref).select(self.scores, self.labels)
        curve = curve_from(self.scores, self.labels)
        if any(
            pref.satisfied_by(r, p)
            for r, p in zip(curve.recalls, curve.precisions)
        ):
            assert pref.satisfied_by(choice.recall, choice.precision)

    def test_pcscore_degrades_to_fscore_without_satisfying_points(self):
        """"the PC-Score cannot find the desired points, but it can
        still choose approximate recall and precision" (§4.5.1)."""
        impossible = AccuracyPreference(recall=1.0, precision=1.0)
        pc_choice = PCScoreSelector(impossible).select(self.scores, self.labels)
        f_choice = FScoreSelector().select(self.scores, self.labels)
        assert pc_choice.threshold == f_choice.threshold


class TestEvaluateThreshold:
    def test_matches_manual_thresholding(self):
        scores = np.array([0.9, 0.4, 0.6, np.nan])
        labels = np.array([1, 1, 0, 1])
        recall, precision = evaluate_threshold(scores, labels, 0.5)
        # Detected: {0, 2}; positives among finite: {0, 1}.
        assert recall == pytest.approx(0.5)
        assert precision == pytest.approx(0.5)

    @given(threshold=unit)
    @settings(max_examples=20)
    def test_selected_point_reproducible_by_threshold(self, threshold):
        rng = np.random.default_rng(int(threshold * 1e6))
        scores = rng.random(100)
        labels = (rng.random(100) < 0.3).astype(int)
        if labels.sum() == 0:
            labels[0] = 1
        recall, precision = evaluate_threshold(scores, labels, threshold)
        assert 0.0 <= recall <= 1.0
        assert 0.0 <= precision <= 1.0
