"""Grid resampling tests."""

import numpy as np
import pytest

from repro.timeseries import TimeSeries, TimeSeriesError, downsample, to_interval


def series(values, interval=60, labels=None):
    return TimeSeries(
        values=np.asarray(values, dtype=float),
        interval=interval,
        labels=None if labels is None else np.asarray(labels, dtype=np.int8),
        name="resample-kpi",
    )


class TestDownsample:
    def test_mean_aggregation(self):
        ts = series([1.0, 3.0, 5.0, 7.0])
        out = downsample(ts, 2)
        assert out.values.tolist() == [2.0, 6.0]
        assert out.interval == 120
        assert out.name == "resample-kpi"

    def test_max_preserves_spikes(self):
        ts = series([1.0, 100.0, 1.0, 1.0])
        assert downsample(ts, 2, aggregate="max").values.tolist() == [100.0, 1.0]

    def test_sum_aggregation(self):
        ts = series([1.0, 2.0, 3.0, 4.0])
        assert downsample(ts, 2, aggregate="sum").values.tolist() == [3.0, 7.0]

    def test_trailing_partial_block_dropped(self):
        ts = series([1.0, 2.0, 3.0, 4.0, 5.0])
        assert len(downsample(ts, 2)) == 2

    def test_labels_use_any_semantics(self):
        ts = series([0.0] * 6, labels=[0, 1, 0, 0, 0, 0])
        out = downsample(ts, 3)
        assert out.labels.tolist() == [1, 0]

    def test_missing_points_ignored_in_aggregate(self):
        ts = series([1.0, np.nan, 3.0, 5.0])
        out = downsample(ts, 2)
        assert out.values.tolist() == [1.0, 4.0]

    def test_all_missing_block_stays_missing(self):
        ts = series([np.nan, np.nan, 1.0, 3.0])
        out = downsample(ts, 2, aggregate="sum")
        assert np.isnan(out.values[0])
        assert out.values[1] == 4.0

    def test_factor_one_is_copy(self):
        ts = series([1.0, 2.0])
        out = downsample(ts, 1)
        np.testing.assert_array_equal(out.values, ts.values)
        out.values[0] = 99.0
        assert ts.values[0] == 1.0

    def test_validation(self):
        ts = series([1.0, 2.0])
        with pytest.raises(TimeSeriesError):
            downsample(ts, 0)
        with pytest.raises(TimeSeriesError):
            downsample(ts, 2, aggregate="mode")
        with pytest.raises(TimeSeriesError):
            downsample(ts, 5)


class TestToInterval:
    def test_exact_interval(self):
        ts = series(np.arange(60, dtype=float), interval=60)
        out = to_interval(ts, 600)
        assert out.interval == 600
        assert len(out) == 6

    def test_non_multiple_rejected(self):
        ts = series(np.arange(10, dtype=float), interval=60)
        with pytest.raises(TimeSeriesError, match="multiple"):
            to_interval(ts, 90)

    def test_paper_grid_to_default_grid(self):
        """The documented workflow: 1-minute paper data -> the 10-minute
        evaluation grid, preserving Table 1 statistics."""
        from repro.data import make_kpi
        from repro.data.datasets import PV_PROFILE
        from repro.timeseries import summarize

        fine = make_kpi(PV_PROFILE, weeks=2, paper_interval=True).series
        coarse = to_interval(fine, 600, aggregate="mean")
        assert coarse.interval == 600
        assert len(coarse) == len(fine) // 10
        fine_summary = summarize(fine)
        coarse_summary = summarize(coarse)
        # Aggregation smooths noise slightly but keeps the shape class.
        assert coarse_summary.cv == pytest.approx(fine_summary.cv, rel=0.2)
        # ANY-label semantics can only increase the anomaly fraction.
        assert coarse_summary.anomaly_fraction >= fine_summary.anomaly_fraction
