"""Random forest tests, including the paper's robustness claims."""

import numpy as np
import pytest

from repro.ml import DecisionTree, RandomForest


def make_problem(rng, n=800, informative=2, noise_features=0):
    """Binary problem driven by the first `informative` features."""
    d = informative + noise_features
    X = rng.normal(size=(n, d))
    signal = X[:, :informative].sum(axis=1)
    y = (signal + 0.5 * rng.normal(size=n) > 0.5).astype(int)
    return X, y


class TestRandomForest:
    def test_probability_is_vote_fraction(self, rng):
        X, y = make_problem(rng)
        forest = RandomForest(n_estimators=10, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        # With 10 trees probabilities are multiples of 1/10 (§4.4.2).
        np.testing.assert_allclose(proba * 10, np.round(proba * 10), atol=1e-9)

    def test_learns_informative_signal(self, rng):
        X, y = make_problem(rng, n=1200)
        split = 800
        forest = RandomForest(n_estimators=30, seed=1).fit(X[:split], y[:split])
        accuracy = (forest.predict(X[split:]) == y[split:]).mean()
        assert accuracy > 0.85

    def test_reproducible(self, rng):
        X, y = make_problem(rng)
        a = RandomForest(n_estimators=10, seed=7).fit(X, y).predict_proba(X)
        b = RandomForest(n_estimators=10, seed=7).fit(X, y).predict_proba(X)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_forest(self, rng):
        X, y = make_problem(rng)
        a = RandomForest(n_estimators=10, seed=1).fit(X, y).predict_proba(X)
        b = RandomForest(n_estimators=10, seed=2).fit(X, y).predict_proba(X)
        assert not np.array_equal(a, b)

    def test_robust_to_irrelevant_features(self, rng):
        """The §5.3.2 claim: forests stay accurate as irrelevant and
        redundant features are added, unlike single trees."""
        X, y = make_problem(rng, n=1500, informative=2, noise_features=0)
        # Add 30 irrelevant features and 10 redundant (duplicated) ones.
        irrelevant = rng.normal(size=(len(X), 30))
        redundant = X[:, :2].repeat(5, axis=1) + rng.normal(
            0, 0.01, size=(len(X), 10)
        )
        X_noisy = np.hstack([X, irrelevant, redundant])
        split = 1000
        forest = RandomForest(n_estimators=40, seed=3).fit(
            X_noisy[:split], y[:split]
        )
        accuracy = (forest.predict(X_noisy[split:]) == y[split:]).mean()
        assert accuracy > 0.8

    def test_importances_favor_informative_features(self, rng):
        X, y = make_problem(rng, n=1000, informative=2, noise_features=8)
        forest = RandomForest(n_estimators=20, seed=4).fit(X, y)
        importances = forest.feature_importances()
        assert importances[:2].sum() > importances[2:].sum()

    def test_single_tree_forest_equals_bagged_tree_shape(self, rng):
        X, y = make_problem(rng, n=200)
        forest = RandomForest(n_estimators=1, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert set(np.unique(proba)) <= {0.0, 1.0}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomForest(n_estimators=0)

    def test_unfitted_forest_raises(self, rng):
        X, _ = make_problem(rng, n=50)
        from repro.ml.base import NotFittedError

        with pytest.raises(NotFittedError):
            RandomForest().predict_proba(X)

    def test_default_threshold_is_half(self, rng):
        X, y = make_problem(rng)
        forest = RandomForest(n_estimators=11, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        np.testing.assert_array_equal(
            forest.predict(X), (proba >= 0.5).astype(np.int8)
        )


class TestForestVsTree:
    def test_forest_generalizes_better_on_noisy_labels(self, rng):
        """Fully grown single trees overfit label noise (§4.4.2); the
        ensemble vote smooths it out."""
        X, y = make_problem(rng, n=2000, informative=3, noise_features=5)
        flip = rng.random(len(y)) < 0.15
        y_noisy = np.where(flip, 1 - y, y)
        split = 1200
        tree_acc = (
            DecisionTree(seed=0)
            .fit(X[:split], y_noisy[:split])
            .predict(X[split:])
            == y[split:]
        ).mean()
        forest_acc = (
            RandomForest(n_estimators=40, seed=0)
            .fit(X[:split], y_noisy[:split])
            .predict(X[split:])
            == y[split:]
        ).mean()
        assert forest_acc >= tree_acc


class TestOutOfBag:
    def test_oob_scores_shape_and_range(self, rng):
        X, y = make_problem(rng, n=400)
        forest = RandomForest(n_estimators=20, seed=0).fit(X, y)
        scores = forest.oob_scores()
        assert scores.shape == (400,)
        finite = scores[np.isfinite(scores)]
        assert ((finite >= 0) & (finite <= 1)).all()
        # With 20 trees essentially every row is OOB somewhere.
        assert np.isfinite(scores).mean() > 0.95

    def test_oob_accuracy_estimates_generalization(self, rng):
        X, y = make_problem(rng, n=1500)
        split = 1000
        forest = RandomForest(n_estimators=30, seed=1).fit(X[:split], y[:split])
        oob = forest.oob_accuracy()
        holdout = (forest.predict(X[split:]) == y[split:]).mean()
        # OOB tracks true held-out accuracy within a few points.
        assert abs(oob - holdout) < 0.08

    def test_oob_requires_fit(self):
        with pytest.raises(RuntimeError):
            RandomForest().oob_scores()

    def test_oob_lower_than_training_accuracy(self, rng):
        """Fully grown trees memorise the training set; OOB reveals the
        honest error."""
        X, y = make_problem(rng, n=600)
        forest = RandomForest(n_estimators=25, seed=2).fit(X, y)
        train_accuracy = (forest.predict(X) == y).mean()
        assert forest.oob_accuracy() <= train_accuracy
