"""The CI benchmark-regression gate (tools/bench_compare.py).

A gate that cannot fail is not a gate, so both directions are covered:
an unchanged run passes, a synthetic 2x slowdown fails, and the
baseline-refresh path works.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL = REPO_ROOT / "tools" / "bench_compare.py"


def bench_json(path: Path, medians: dict) -> Path:
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


def run_tool(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(TOOL), *map(str, args)],
        capture_output=True,
        text=True,
    )


@pytest.fixture()
def runs(tmp_path):
    baseline = bench_json(
        tmp_path / "baseline.json", {"bench::a": 1.0, "bench::b": 0.5}
    )
    current = bench_json(
        tmp_path / "current.json", {"bench::a": 1.1, "bench::b": 0.45}
    )
    return baseline, current


def test_within_threshold_passes(runs):
    baseline, current = runs
    result = run_tool(baseline, current, "--max-slowdown", "1.25")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK" in result.stdout


def test_injected_2x_slowdown_fails(runs):
    baseline, current = runs
    result = run_tool(
        baseline, current, "--max-slowdown", "1.25", "--inject-slowdown", "2.0"
    )
    assert result.returncode == 1
    assert "REGRESSION" in result.stdout
    assert "FAIL" in result.stdout


def test_real_regression_fails(tmp_path):
    baseline = bench_json(tmp_path / "b.json", {"bench::a": 1.0})
    current = bench_json(tmp_path / "c.json", {"bench::a": 1.3})
    result = run_tool(baseline, current)
    assert result.returncode == 1


def test_removed_baseline_bench_warns_but_passes(tmp_path):
    """Retiring a benchmark (or a whole backend) must not wedge the gate."""
    baseline = bench_json(tmp_path / "b.json", {"bench::a": 1.0, "bench::gone": 1.0})
    current = bench_json(tmp_path / "c.json", {"bench::a": 1.0})
    result = run_tool(baseline, current)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "WARNING" in result.stdout
    assert "bench::gone" in result.stdout


def test_empty_gated_overlap_fails(tmp_path):
    """A gate that measures nothing must not pass: disjoint runs fail
    even though every baseline benchmark is 'only' removed."""
    baseline = bench_json(tmp_path / "b.json", {"bench::old": 1.0})
    current = bench_json(tmp_path / "c.json", {"bench::new": 1.0})
    result = run_tool(baseline, current)
    assert result.returncode == 1
    assert "FAIL" in result.stdout
    assert "no benchmark" in result.stdout


def test_new_benchmarks_are_not_gated(tmp_path):
    baseline = bench_json(tmp_path / "b.json", {"bench::a": 1.0})
    current = bench_json(tmp_path / "c.json", {"bench::a": 1.0, "bench::new": 9.0})
    result = run_tool(baseline, current)
    assert result.returncode == 0
    assert "not gated" in result.stdout


def test_update_baseline(tmp_path):
    current = bench_json(tmp_path / "c.json", {"bench::a": 2.0})
    target = tmp_path / "nested" / "baseline.json"
    result = run_tool(target, current, "--update-baseline")
    assert result.returncode == 0
    assert json.loads(target.read_text()) == json.loads(current.read_text())


def test_unreadable_input_is_usage_error(tmp_path):
    missing = tmp_path / "nope.json"
    current = bench_json(tmp_path / "c.json", {"bench::a": 1.0})
    result = run_tool(missing, current)
    assert result.returncode == 2 or "cannot read" in result.stderr


def test_committed_baseline_matches_recorded_run():
    """The seeded baseline and BENCH_4.json must stay comparable."""
    baseline = REPO_ROOT / "benchmarks" / "baselines" / "bench_baseline.json"
    recorded = REPO_ROOT / "BENCH_4.json"
    assert baseline.exists() and recorded.exists()
    names = {
        bench["fullname"]
        for bench in json.loads(baseline.read_text())["benchmarks"]
    }
    assert any("test_extraction_backend_comparison" in name for name in names)
    result = run_tool(baseline, recorded, "--max-slowdown", "1000")
    assert result.returncode == 0
