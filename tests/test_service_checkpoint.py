"""Service checkpoints: crash-restart resume equivalence.

The contract under test: ``load_model`` + ``restore_snapshot`` on a
fresh service reproduces the uninterrupted service's *future* exactly —
the remaining alert stream bit for bit, including an alert run that was
still open at checkpoint time, the pending buffers feeding the next
retraining round, and the EWMA cThld predictor's state.
"""

import json

import numpy as np
import pytest

from repro.core import (
    MonitoringService,
    load_model,
    load_service_checkpoint,
    save_model,
    save_service_checkpoint,
)

from test_opprentice import fast_forest, small_bank


@pytest.fixture(scope="module")
def deployment():
    """4 weeks of hourly KPI: 3 bootstrap + 1 live."""
    from repro.data import SeasonalProfile, generate_kpi, inject_anomalies

    generated = generate_kpi(
        weeks=4,
        interval=3600,
        profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                noise_scale=0.02, trend=0.0),
        seed=55,
        name="ckpt-kpi",
    )
    result = inject_anomalies(
        generated.series, target_fraction=0.06, seed=56, mean_window=4.0
    )
    series = result.series
    split = 3 * series.points_per_week
    return series, result.windows, split


def make_service(series, **kwargs):
    kwargs.setdefault("min_duration_points", 2)
    return MonitoringService(
        configs=small_bank(series.points_per_week),
        classifier_factory=fast_forest,
        **kwargs,
    )


def restore_clone(original, series, tmp_path, **snapshot_kwargs):
    """Clone ``original`` through the public model + snapshot path."""
    model_path = tmp_path / "model.json"
    save_model(original.opprentice, model_path)
    clone = make_service(series)
    load_model(model_path, opprentice=clone.opprentice)
    clone.restore_snapshot(original.snapshot(**snapshot_kwargs))
    return clone


class TestResumeEquivalence:
    def test_remaining_alert_stream_is_bit_identical(
        self, deployment, tmp_path
    ):
        series, truth_windows, split = deployment
        checkpoint_at = split + 60
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        for value in series.values[split:checkpoint_at]:
            service.ingest(float(value))

        clone = restore_clone(service, series, tmp_path)
        expected, actual = [], []
        for value in series.values[checkpoint_at:]:
            expected.extend(service.ingest(float(value)))
            actual.extend(clone.ingest(float(value)))
        assert actual == expected
        assert clone.stats.as_dict() == service.stats.as_dict()

    def test_open_alert_run_survives_restore(self, deployment, tmp_path):
        series, _, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        checkpoint_at = None
        for offset, value in enumerate(series.values[split:]):
            service.ingest(float(value))
            if service._run_begin is not None:
                checkpoint_at = split + offset + 1
                break
        assert checkpoint_at is not None, (
            "no anomalous point in a live week with injected anomalies"
        )

        snapshot = service.snapshot()
        assert snapshot["run"]["begin"] == service._run_begin
        clone = restore_clone(service, series, tmp_path)
        assert clone._run_begin == service._run_begin
        assert clone._run_scores == service._run_scores

        # The run's eventual closed event matches: same begin, same
        # peak score accumulated across the checkpoint boundary.
        expected, actual = [], []
        for value in series.values[checkpoint_at:]:
            expected.extend(service.ingest(float(value)))
            actual.extend(clone.ingest(float(value)))
        closed_expected = [e for e in expected if e.kind == "closed"]
        closed_actual = [e for e in actual if e.kind == "closed"]
        assert closed_actual == closed_expected
        assert closed_expected, "the open run never closed"

    def test_post_restore_retrain_matches(self, deployment, tmp_path):
        series, truth_windows, split = deployment
        checkpoint_at = split + 100
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        for value in series.values[split:checkpoint_at]:
            service.ingest(float(value))

        clone = restore_clone(service, series, tmp_path)
        windows = [
            w for w in truth_windows
            if w.begin >= split and w.end <= checkpoint_at
        ]
        service.submit_labels(windows)
        clone.submit_labels(windows)
        assert clone.retrain() == service.retrain()

        # And the post-retrain services still agree point for point.
        expected, actual = [], []
        for value in series.values[checkpoint_at:checkpoint_at + 24]:
            expected.extend(service.ingest(float(value)))
            actual.extend(clone.ingest(float(value)))
        assert actual == expected

    def test_snapshot_without_features_falls_back_to_full_refit(
        self, deployment, tmp_path
    ):
        series, truth_windows, split = deployment
        checkpoint_at = split + 100
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        for value in series.values[split:checkpoint_at]:
            service.ingest(float(value))

        slim = restore_clone(
            service, series, tmp_path, include_features=False
        )
        assert slim.opprentice._feature_values is None
        # The slim snapshot really is smaller.
        full_size = len(json.dumps(service.snapshot()))
        slim_size = len(json.dumps(service.snapshot(include_features=False)))
        assert slim_size < full_size

        windows = [
            w for w in truth_windows
            if w.begin >= split and w.end <= checkpoint_at
        ]
        service.submit_labels(windows)
        slim.submit_labels(windows)
        # Incremental (cached features) and full-refit paths converge —
        # the same equivalence the retrain tests pin — so the slim
        # restore retrains to the same threshold and decisions.
        assert slim.retrain() == service.retrain()
        expected, actual = [], []
        for value in series.values[checkpoint_at:checkpoint_at + 24]:
            expected.extend(service.ingest(float(value)))
            actual.extend(slim.ingest(float(value)))
        assert actual == expected

    def test_ewma_predictor_state_round_trips(self, deployment, tmp_path):
        series, truth_windows, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        for value in series.values[split:split + 100]:
            service.ingest(float(value))
        service.submit_labels(
            [
                w for w in truth_windows
                if w.begin >= split and w.end <= split + 100
            ]
        )
        service.retrain()
        predictor = service.opprentice.cthld_predictor
        assert predictor.snapshot() == {
            "prediction": predictor._prediction
        }

        clone = restore_clone(service, series, tmp_path)
        assert (
            clone.opprentice.cthld_predictor._prediction
            == predictor._prediction
        )


class TestCheckpointFiles:
    def test_file_round_trip(self, deployment, tmp_path):
        series, _, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        for value in series.values[split:split + 30]:
            service.ingest(float(value))

        model_path = tmp_path / "model.json"
        ckpt_path = tmp_path / "service.json"
        save_model(service.opprentice, model_path)
        save_service_checkpoint(service, ckpt_path)

        clone = make_service(series)
        load_model(model_path, opprentice=clone.opprentice)
        load_service_checkpoint(ckpt_path, clone)
        assert clone.kpi == "ckpt-kpi"
        assert clone.pending_points == service.pending_points
        expected = service.ingest(float(series.values[split + 30]))
        actual = clone.ingest(float(series.values[split + 30]))
        assert actual == expected

    def test_default_bank_service_restores_without_bootstrap(
        self, deployment, tmp_path
    ):
        """A default-bank service (configs=None) must be rebuildable
        from model + checkpoint alone: the Table 3 bank is re-derived
        from the restored history, not from a fresh bootstrap."""
        series, _, split = deployment
        service = MonitoringService(
            classifier_factory=fast_forest, min_duration_points=2
        )
        service.bootstrap(series.slice(0, split))
        for value in series.values[split:split + 10]:
            service.ingest(float(value))
        model_path = tmp_path / "model.json"
        ckpt_path = tmp_path / "service.json"
        save_model(service.opprentice, model_path)
        save_service_checkpoint(service, ckpt_path)

        clone = MonitoringService(
            classifier_factory=fast_forest, min_duration_points=2
        )
        assert clone.opprentice.extractor.config_bank is None
        load_model(model_path, opprentice=clone.opprentice)
        load_service_checkpoint(ckpt_path, clone)
        assert clone.opprentice.extractor.config_bank is not None
        probe = float(series.values[split + 10])
        assert clone.ingest(probe) == service.ingest(probe)

    def test_checkpoint_version_rejected(self, deployment, tmp_path):
        series, _, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        ckpt_path = tmp_path / "service.json"
        save_service_checkpoint(service, ckpt_path)
        payload = json.loads(ckpt_path.read_text())
        payload["format_version"] = 999
        ckpt_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported service"):
            load_service_checkpoint(ckpt_path, service)

    def test_snapshot_version_rejected(self, deployment):
        series, _, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        snapshot = service.snapshot()
        snapshot["format_version"] = 999
        with pytest.raises(ValueError, match="unsupported service"):
            service.restore_snapshot(snapshot)

    def test_restore_requires_fitted_model(self, deployment):
        series, _, split = deployment
        service = make_service(series)
        service.bootstrap(series.slice(0, split))
        snapshot = service.snapshot()
        fresh = make_service(series)
        with pytest.raises(RuntimeError, match="fitted model"):
            fresh.restore_snapshot(snapshot)

    def test_snapshot_requires_bootstrap(self, deployment):
        series, _, _ = deployment
        with pytest.raises(RuntimeError, match="bootstrap"):
            make_service(series).snapshot()
