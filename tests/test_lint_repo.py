"""Tier-1 contract: the library itself is lint-clean.

This is the teeth of the static-analysis subsystem — the causality,
determinism, registry and hygiene contracts of §4.3 are enforced on
``src/repro`` by the same CI run as the unit tests. A new detector with
a lookahead, an unseeded RNG call, or a bank/Table-3 mismatch fails
here before any fixture-dependent dynamic test has a chance to miss it.
"""

from pathlib import Path

from repro.analysis import LintEngine, load_config

REPO_ROOT = Path(__file__).resolve().parents[1]
LIBRARY = REPO_ROOT / "src" / "repro"


def _run():
    config = load_config(REPO_ROOT / "pyproject.toml")
    return LintEngine(config).run([str(LIBRARY)])


def test_library_has_no_lint_errors():
    result = _run()
    errors = [f for f in result.findings if f.severity.value == "error"]
    assert not errors, "lint errors in src/repro:\n" + "\n".join(
        f.format() for f in errors
    )


def test_library_has_no_lint_warnings():
    # Warnings do not fail `repro-lint` by default, but the library
    # itself ships warning-free so new ones stand out immediately.
    result = _run()
    assert not result.findings, "lint findings in src/repro:\n" + "\n".join(
        f.format() for f in result.findings
    )


def test_library_lint_covers_every_module():
    result = _run()
    n_modules = len(list(LIBRARY.rglob("*.py")))
    assert result.summary.files == n_modules
    # Every contract rule ran (none disabled by config), including the
    # cross-module families introduced with the project call graph.
    assert {"no-lookahead", "determinism", "registry-contract",
            "api-hygiene", "worker-reachability", "checkpoint-symmetry",
            "obs-taxonomy", "lock-discipline",
            "suppression-justification"} <= set(result.rules)
