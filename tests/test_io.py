"""CSV import/export tests for TimeSeries."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries import (
    TimeSeries,
    TimeSeriesError,
    from_csv_string,
    read_csv,
    read_csv_gz,
    read_ndjson,
    to_csv_string,
    write_csv,
    write_csv_gz,
    write_ndjson,
)


def series(values, labels=None, interval=60, start=1000):
    return TimeSeries(
        values=np.asarray(values, dtype=float),
        interval=interval,
        start=start,
        labels=None if labels is None else np.asarray(labels, dtype=np.int8),
    )


class TestRoundtrip:
    def test_values_roundtrip(self):
        original = series([1.5, 2.0, 3.25])
        restored = from_csv_string(to_csv_string(original))
        np.testing.assert_array_equal(restored.values, original.values)
        assert restored.interval == 60
        assert restored.start == 1000

    def test_labels_roundtrip(self):
        original = series([1.0, 2.0, 3.0], labels=[0, 1, 0])
        restored = from_csv_string(to_csv_string(original))
        assert restored.is_labeled
        assert restored.labels.tolist() == [0, 1, 0]

    def test_unlabeled_stays_unlabeled(self):
        restored = from_csv_string(to_csv_string(series([1.0, 2.0])))
        assert not restored.is_labeled

    def test_missing_points_roundtrip(self):
        original = series([1.0, np.nan, 3.0])
        restored = from_csv_string(to_csv_string(original))
        assert np.isnan(restored.values[1])
        assert restored.values[2] == 3.0

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "kpi.csv"
        original = series([5.0, 6.0], labels=[1, 0])
        write_csv(original, path)
        restored = read_csv(path)
        np.testing.assert_array_equal(restored.values, original.values)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_values_roundtrip_exactly(self, values):
        original = series(values)
        restored = from_csv_string(to_csv_string(original))
        np.testing.assert_array_equal(restored.values, original.values)


class TestReadCsv:
    def test_headerless_input(self):
        restored = from_csv_string("0,1.0\n60,2.0\n")
        assert restored.values.tolist() == [1.0, 2.0]

    def test_out_of_order_rows_sorted(self):
        restored = from_csv_string("120,3.0\n0,1.0\n60,2.0\n")
        assert restored.values.tolist() == [1.0, 2.0, 3.0]

    def test_grid_gaps_become_missing(self):
        restored = from_csv_string("0,1.0\n180,4.0\n", interval=60)
        assert len(restored) == 4
        assert np.isnan(restored.values[1:3]).all()

    def test_interval_inferred_from_min_gap(self):
        restored = from_csv_string("0,1.0\n120,2.0\n180,3.0\n")
        assert restored.interval == 60

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(TimeSeriesError, match="duplicate"):
            from_csv_string("0,1.0\n0,2.0\n")

    def test_off_grid_timestamps_rejected(self):
        with pytest.raises(TimeSeriesError, match="grid"):
            from_csv_string("0,1.0\n60,2.0\n90,3.0\n", interval=60)

    def test_empty_input_rejected(self):
        with pytest.raises(TimeSeriesError, match="no data"):
            from_csv_string("timestamp,value\n")

    def test_single_row_needs_explicit_interval(self):
        with pytest.raises(TimeSeriesError, match="interval"):
            from_csv_string("0,1.0\n")
        restored = from_csv_string("0,1.0\n", interval=60)
        assert len(restored) == 1

    def test_short_row_rejected(self):
        with pytest.raises(TimeSeriesError, match="expected"):
            from_csv_string("0\n")

    def test_name_passthrough(self):
        restored = from_csv_string("0,1.0\n60,2.0\n", name="PV")
        assert restored.name == "PV"


class TestGzipCsv:
    def test_file_roundtrip_with_labels_and_gaps(self, tmp_path):
        path = tmp_path / "kpi.csv.gz"
        original = series([5.0, np.nan, 7.0], labels=[1, 0, 0])
        write_csv_gz(original, path)
        restored = read_csv_gz(path)
        np.testing.assert_array_equal(restored.values, original.values)
        assert restored.labels.tolist() == [1, 0, 0]
        assert restored.interval == 60
        assert restored.start == 1000

    def test_payload_is_actually_gzip(self, tmp_path):
        path = tmp_path / "kpi.csv.gz"
        write_csv_gz(series([1.0, 2.0]), path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_same_grid_semantics_as_csv(self, tmp_path):
        path = tmp_path / "kpi.csv.gz"
        write_csv_gz(series([1.0, 2.0, 3.0, 4.0]), path)
        restored = read_csv_gz(path, interval=60)
        assert restored.values.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_awkward_floats_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "kpi.csv.gz"
        original = series([0.1, 1e-12, -1e6, 2.0000000000000004])
        write_csv_gz(original, path)
        np.testing.assert_array_equal(
            read_csv_gz(path).values, original.values
        )


class TestNdjson:
    def roundtrip(self, original):
        buffer = io.StringIO()
        write_ndjson(original, buffer)
        return buffer.getvalue(), read_ndjson(io.StringIO(buffer.getvalue()))

    def test_values_and_labels_roundtrip(self):
        original = series([1.5, 2.0, 3.25], labels=[0, 1, 0])
        text, restored = self.roundtrip(original)
        np.testing.assert_array_equal(restored.values, original.values)
        assert restored.labels.tolist() == [0, 1, 0]
        assert restored.start == 1000
        first = text.splitlines()[0]
        assert first == '{"timestamp":1000,"value":1.5,"label":0}'

    def test_nan_gaps_become_null_and_back(self):
        original = series([1.0, np.nan, 3.0])
        text, restored = self.roundtrip(original)
        assert '"value":null' in text
        assert np.isnan(restored.values[1])
        assert restored.values[2] == 3.0

    def test_unlabeled_stays_unlabeled(self):
        _, restored = self.roundtrip(series([1.0, 2.0]))
        assert not restored.is_labeled

    def test_rows_sorted_and_gaps_filled(self):
        text = (
            '{"timestamp":120,"value":3.0}\n'
            '\n'
            '{"timestamp":0,"value":1.0}\n'
        )
        restored = read_ndjson(io.StringIO(text), interval=60)
        assert restored.values[0] == 1.0
        assert np.isnan(restored.values[1])
        assert restored.values[2] == 3.0

    def test_missing_value_field_is_missing_point(self):
        text = '{"timestamp":0}\n{"timestamp":60,"value":2.0}\n'
        restored = read_ndjson(io.StringIO(text))
        assert np.isnan(restored.values[0])

    def test_invalid_json_line_rejected(self):
        with pytest.raises(TimeSeriesError, match="line 2: invalid JSON"):
            read_ndjson(io.StringIO('{"timestamp":0,"value":1}\n{oops\n'))

    def test_non_object_line_rejected(self):
        with pytest.raises(TimeSeriesError, match="object with a timestamp"):
            read_ndjson(io.StringIO("[1,2]\n"))

    def test_off_grid_timestamps_rejected(self):
        text = '{"timestamp":0,"value":1.0}\n{"timestamp":90,"value":2.0}\n'
        with pytest.raises(TimeSeriesError, match="grid"):
            read_ndjson(io.StringIO(text), interval=60)

    def test_duplicate_timestamps_rejected(self):
        text = '{"timestamp":0,"value":1.0}\n{"timestamp":0,"value":2.0}\n'
        with pytest.raises(TimeSeriesError, match="duplicate"):
            read_ndjson(io.StringIO(text))

    def test_empty_input_rejected(self):
        with pytest.raises(TimeSeriesError, match="no data"):
            read_ndjson(io.StringIO("\n\n"))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "kpi.ndjson"
        original = series([5.0, 6.0, np.nan], labels=[1, 0, 0])
        write_ndjson(original, path)
        restored = read_ndjson(path)
        np.testing.assert_array_equal(restored.values, original.values)
        assert restored.labels.tolist() == [1, 0, 0]
