"""CSV import/export tests for TimeSeries."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries import (
    TimeSeries,
    TimeSeriesError,
    from_csv_string,
    read_csv,
    to_csv_string,
    write_csv,
)


def series(values, labels=None, interval=60, start=1000):
    return TimeSeries(
        values=np.asarray(values, dtype=float),
        interval=interval,
        start=start,
        labels=None if labels is None else np.asarray(labels, dtype=np.int8),
    )


class TestRoundtrip:
    def test_values_roundtrip(self):
        original = series([1.5, 2.0, 3.25])
        restored = from_csv_string(to_csv_string(original))
        np.testing.assert_array_equal(restored.values, original.values)
        assert restored.interval == 60
        assert restored.start == 1000

    def test_labels_roundtrip(self):
        original = series([1.0, 2.0, 3.0], labels=[0, 1, 0])
        restored = from_csv_string(to_csv_string(original))
        assert restored.is_labeled
        assert restored.labels.tolist() == [0, 1, 0]

    def test_unlabeled_stays_unlabeled(self):
        restored = from_csv_string(to_csv_string(series([1.0, 2.0])))
        assert not restored.is_labeled

    def test_missing_points_roundtrip(self):
        original = series([1.0, np.nan, 3.0])
        restored = from_csv_string(to_csv_string(original))
        assert np.isnan(restored.values[1])
        assert restored.values[2] == 3.0

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "kpi.csv"
        original = series([5.0, 6.0], labels=[1, 0])
        write_csv(original, path)
        restored = read_csv(path)
        np.testing.assert_array_equal(restored.values, original.values)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_values_roundtrip_exactly(self, values):
        original = series(values)
        restored = from_csv_string(to_csv_string(original))
        np.testing.assert_array_equal(restored.values, original.values)


class TestReadCsv:
    def test_headerless_input(self):
        restored = from_csv_string("0,1.0\n60,2.0\n")
        assert restored.values.tolist() == [1.0, 2.0]

    def test_out_of_order_rows_sorted(self):
        restored = from_csv_string("120,3.0\n0,1.0\n60,2.0\n")
        assert restored.values.tolist() == [1.0, 2.0, 3.0]

    def test_grid_gaps_become_missing(self):
        restored = from_csv_string("0,1.0\n180,4.0\n", interval=60)
        assert len(restored) == 4
        assert np.isnan(restored.values[1:3]).all()

    def test_interval_inferred_from_min_gap(self):
        restored = from_csv_string("0,1.0\n120,2.0\n180,3.0\n")
        assert restored.interval == 60

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(TimeSeriesError, match="duplicate"):
            from_csv_string("0,1.0\n0,2.0\n")

    def test_off_grid_timestamps_rejected(self):
        with pytest.raises(TimeSeriesError, match="grid"):
            from_csv_string("0,1.0\n60,2.0\n90,3.0\n", interval=60)

    def test_empty_input_rejected(self):
        with pytest.raises(TimeSeriesError, match="no data"):
            from_csv_string("timestamp,value\n")

    def test_single_row_needs_explicit_interval(self):
        with pytest.raises(TimeSeriesError, match="interval"):
            from_csv_string("0,1.0\n")
        restored = from_csv_string("0,1.0\n", interval=60)
        assert len(restored) == 1

    def test_short_row_rejected(self):
        with pytest.raises(TimeSeriesError, match="expected"):
            from_csv_string("0\n")

    def test_name_passthrough(self):
        restored = from_csv_string("0,1.0\n60,2.0\n", name="PV")
        assert restored.name == "PV"
