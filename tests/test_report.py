"""KPIReport / evaluate_kpi tests."""

import numpy as np
import pytest

from repro.evaluation import AccuracyPreference, KPIReport, evaluate_kpi
from repro.evaluation.report import ApproachScore

from test_opprentice import fast_forest, online_kpi, small_bank


@pytest.fixture(scope="module")
def report(online_kpi):
    return evaluate_kpi(
        online_kpi,
        configs=small_bank(online_kpi.points_per_week),
        classifier_factory=fast_forest,
    )


class TestEvaluateKPI:
    def test_requires_labels(self, hourly_kpi):
        with pytest.raises(ValueError, match="labelled"):
            evaluate_kpi(hourly_kpi)

    def test_header_fields(self, report, online_kpi):
        assert report.kpi_name == online_kpi.name
        assert report.n_points == len(online_kpi)
        assert report.n_weeks == pytest.approx(10.0)
        assert report.anomaly_fraction == pytest.approx(0.06, abs=0.01)

    def test_weekly_rows(self, report):
        weeks = [row[0] for row in report.weekly]
        assert weeks == [9, 10]
        for _, cthld, recall, precision in report.weekly:
            assert 0.0 <= cthld <= 1.0
            assert 0.0 <= recall <= 1.0
            assert 0.0 <= precision <= 1.0

    def test_approaches_sorted_by_aucpr(self, report):
        aucs = [a.aucpr for a in report.approaches]
        assert aucs == sorted(aucs, reverse=True)

    def test_contains_forest_and_combiners(self, report):
        names = {a.name for a in report.approaches}
        assert "random forest" in names
        assert "normalization scheme" in names
        assert "majority-vote" in names
        # 7 basic configs + forest + 2 combiners.
        assert len(report.approaches) == 10

    def test_forest_rank_accessor(self, report):
        rank = report.forest_rank
        assert report.approaches[rank - 1].name == "random forest"

    def test_render_contains_key_lines(self, report):
        text = report.render()
        assert "KPI evaluation" in text
        assert "AUCPR ranking" in text
        assert "random forest" in text
        assert "week  9" in text

    def test_render_shows_forest_outside_top_k(self):
        synthetic = KPIReport(
            kpi_name="x", n_points=10, n_weeks=1.0, anomaly_fraction=0.1,
            preference=AccuracyPreference(),
            weekly=[], satisfaction_rate=1.0,
            approaches=[
                ApproachScore(f"detector-{i}", 0.9 - 0.01 * i, 0.5)
                for i in range(6)
            ] + [ApproachScore("random forest", 0.1, 0.1)],
        )
        text = synthetic.render(top_k=3)
        assert "#  7" in text and "random forest" in text

    def test_forest_missing_raises(self):
        synthetic = KPIReport(
            kpi_name="x", n_points=10, n_weeks=1.0, anomaly_fraction=0.1,
            preference=AccuracyPreference(),
            weekly=[], satisfaction_rate=1.0,
            approaches=[ApproachScore("only-one", 0.5, 0.5)],
        )
        with pytest.raises(ValueError):
            _ = synthetic.forest_rank

    def test_opt_out_of_baselines(self, online_kpi):
        slim = evaluate_kpi(
            online_kpi,
            configs=small_bank(online_kpi.points_per_week),
            classifier_factory=fast_forest,
            include_basic_detectors=False,
            include_combiners=False,
        )
        assert [a.name for a in slim.approaches] == ["random forest"]
