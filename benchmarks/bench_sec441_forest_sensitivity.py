"""§4.4.1 — random forests are insensitive to their two parameters.

"Random forests have only two parameters and are not very sensitive to
them [38]" is the paper's justification for shipping an untuned
classifier. This bench sweeps both (number of trees, features per
split) over a wide grid and asserts the AUCPR surface is flat relative
to the spread between detection approaches in Fig 9.
"""

import numpy as np
import pytest

from repro.core.opprentice import _subsample_training
from repro.evaluation import aucpr
from repro.ml import Imputer, RandomForest

from _common import MAX_TRAIN_POINTS, print_header

TREE_GRID = (10, 25, 50, 100)
FEATURE_GRID = ("sqrt", 4, 24, 64)


def run_sensitivity(kpis, feature_matrices, name):
    series = kpis[name].series
    matrix = feature_matrices[name]
    split = 8 * series.points_per_week
    imputer = Imputer().fit(matrix.values[:split])
    features = imputer.transform(matrix.values)
    labels = series.labels
    train_x, train_y = _subsample_training(
        features[:split], labels[:split], MAX_TRAIN_POINTS, 0
    )
    test_x, test_y = features[split:], labels[split:]

    surface = {}
    for n_trees in TREE_GRID:
        for max_features in FEATURE_GRID:
            model = RandomForest(
                n_estimators=n_trees, max_features=max_features, seed=41
            )
            model.fit(train_x, train_y)
            surface[(n_trees, max_features)] = aucpr(
                model.predict_proba(test_x), test_y
            )
    return surface


@pytest.mark.parametrize("name", ["SRT"])
def test_forest_parameter_insensitivity(benchmark, kpis, feature_matrices, name):
    surface = benchmark.pedantic(
        lambda: run_sensitivity(kpis, feature_matrices, name),
        rounds=1, iterations=1,
    )
    print_header(
        f"§4.4.1 [{name}]: AUCPR over (n_trees x max_features)"
    )
    header = "  trees\\feat " + " ".join(f"{f!s:>6}" for f in FEATURE_GRID)
    print(header)
    for n_trees in TREE_GRID:
        row = " ".join(
            f"{surface[(n_trees, f)]:6.3f}" for f in FEATURE_GRID
        )
        print(f"  {n_trees:>10} {row}")

    values = np.array(list(surface.values()))
    spread = values.max() - values.min()
    print(f"  surface spread: {spread:.3f}")
    # The whole 16-point surface varies far less than the gap between
    # the forest and the static combiners in Fig 9 (> 0.15 everywhere).
    assert spread < 0.15
    # And even the worst corner stays strong.
    assert values.min() > 0.7
