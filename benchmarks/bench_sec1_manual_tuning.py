"""§1 motivation — the manually tuned detector vs Opprentice.

The paper's opening problem: "selecting and applying detectors usually
require manually and iteratively tuning the internal parameters of
detectors and the detection thresholds ... which may still turn out not
to work in the end." The `TunedBasicDetector` baseline plays a
*perfect* manual tuner — it picks the best-on-training configuration
and the PC-Score-optimal sThld with zero human cost. This bench checks
the two halves of the paper's argument:

1. even the perfect tuner's configuration choice is KPI-specific (the
   best basic detector differs per KPI, §5.3.1), so tuning effort does
   not transfer;
2. Opprentice matches or approaches the tuned detector without any
   manual selection, and degrades more gracefully on KPIs where the
   tuned pick generalises poorly.
"""

import numpy as np
import pytest

from repro.combiners import TunedBasicDetector
from repro.core.opprentice import _subsample_training
from repro.evaluation import (
    MODERATE_PREFERENCE,
    aucpr,
    evaluate_threshold,
    f_score,
)
from repro.ml import Imputer

from _common import MAX_TRAIN_POINTS, bench_forest, print_header


def run_manual_tuning(kpis, feature_matrices, weekly, name):
    series = kpis[name].series
    matrix = feature_matrices[name]
    split = 8 * series.points_per_week
    labels = series.labels
    ws = weekly[name]
    begin, end = ws.test_begin, ws.test_end

    tuned = TunedBasicDetector(
        MODERATE_PREFERENCE, feature_names=matrix.names
    )
    tuned.fit(matrix.values[:split], labels[:split])
    tuned_scores = tuned.score(matrix.values[begin:end])
    tuned_recall, tuned_precision = evaluate_threshold(
        tuned_scores, labels[begin:end], tuned.sthld_
    )

    rf_auc = aucpr(ws.all_scores, labels[begin:end])
    tuned_auc = aucpr(tuned_scores, labels[begin:end])

    # Was the train-time pick still the best configuration on test?
    test_rows = matrix.rows(begin, end)
    test_aucs = {}
    for j, config_name in enumerate(matrix.names):
        column = test_rows[:, j]
        if np.isfinite(column).any():
            test_aucs[config_name] = aucpr(column, labels[begin:end])
    best_on_test = max(test_aucs, key=test_aucs.get)

    return {
        "picked": tuned.selected_name,
        "best_on_test": best_on_test,
        "tuned_auc": tuned_auc,
        "best_test_auc": test_aucs[best_on_test],
        "rf_auc": rf_auc,
        "tuned_f1": f_score(tuned_recall, tuned_precision),
    }


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_manual_tuning_baseline(
    benchmark, kpis, feature_matrices, weekly_scores, name
):
    result = benchmark.pedantic(
        lambda: run_manual_tuning(kpis, feature_matrices, weekly_scores, name),
        rounds=1, iterations=1,
    )
    print_header(f"§1 [{name}]: perfect manual tuner vs Opprentice")
    print(f"  tuner picked (on training): {result['picked']}")
    print(f"  best configuration on test: {result['best_on_test']} "
          f"(AUCPR {result['best_test_auc']:.3f})")
    print(f"  tuned detector  AUCPR={result['tuned_auc']:.3f} "
          f"F1@tuned-sThld={result['tuned_f1']:.2f}")
    print(f"  random forest   AUCPR={result['rf_auc']:.3f}")

    # Opprentice is competitive with the zero-cost perfect tuner.
    assert result["rf_auc"] >= result["tuned_auc"] - 0.1
    # The tuned pick is itself within the field (sanity).
    assert result["tuned_auc"] > 0.3


def test_best_detector_is_kpi_specific(
    benchmark, kpis, feature_matrices, weekly_scores
):
    """§5.3.1: "the best basic detectors are different for each KPI" —
    so one KPI's tuning effort does not transfer to the next."""
    picks = benchmark.pedantic(
        lambda: {
            name: run_manual_tuning(
                kpis, feature_matrices, weekly_scores, name
            )["picked"]
            for name in kpis
        },
        rounds=1, iterations=1,
    )
    print_header("§1: tuned configuration per KPI")
    for name, picked in picks.items():
        print(f"  {name:>4}: {picked}")
    assert len(set(picks.values())) >= 2
