"""Fig 10 — AUCPR of different learning algorithms as more features are
used.

Features are added in decreasing mutual-information order (§5.3.2).
Paper result: "while the AUCPR of other learning algorithms is unstable
and decreased as more features are used, the AUCPR of random forests is
still high even when all the 133 features are used."

Protocol note: the paper trains on I1; to keep this bench tractable we
use one fixed split (train = first 8 weeks, test = the rest), which
preserves the comparison between learners exactly.
"""

import numpy as np
import pytest

from repro.evaluation import aucpr
from repro.ml import (
    DecisionTree,
    GaussianNB,
    Imputer,
    LinearSVM,
    LogisticRegression,
    RandomForest,
    rank_features_by_mi,
)

from _common import MAX_TRAIN_POINTS, print_header
from repro.core.opprentice import _subsample_training

FEATURE_COUNTS = (1, 5, 10, 20, 40, 80, 133)

LEARNERS = {
    "random forests": lambda: RandomForest(n_estimators=40, seed=0),
    "decision trees": lambda: DecisionTree(seed=0),
    "logistic regression": lambda: LogisticRegression(),
    "linear SVM": lambda: LinearSVM(),
    "naive Bayes": lambda: GaussianNB(),
}


def run_fig10(kpis, feature_matrices, name):
    series = kpis[name].series
    matrix = feature_matrices[name]
    split = 8 * series.points_per_week
    imputer = Imputer().fit(matrix.values[:split])
    features = imputer.transform(matrix.values)
    labels = series.labels
    train_x, train_y = _subsample_training(
        features[:split], labels[:split], MAX_TRAIN_POINTS, 0
    )
    test_x, test_y = features[split:], labels[split:]
    order = rank_features_by_mi(train_x, train_y)

    curves = {}
    for learner_name, factory in LEARNERS.items():
        curve = []
        for count in FEATURE_COUNTS:
            selected = order[:count]
            model = factory()
            model.fit(train_x[:, selected], train_y)
            curve.append(aucpr(model.predict_proba(test_x[:, selected]), test_y))
        curves[learner_name] = curve
    return curves


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_fig10_learner_stability(benchmark, kpis, feature_matrices, name):
    curves = benchmark.pedantic(
        lambda: run_fig10(kpis, feature_matrices, name), rounds=1, iterations=1
    )
    print_header(f"Fig 10 [{name}]: AUCPR vs number of features (MI order)")
    print(f"{'features':>20} " + " ".join(f"{c:>5}" for c in FEATURE_COUNTS))
    for learner_name, curve in curves.items():
        print(
            f"{learner_name:>20} "
            + " ".join(f"{value:5.2f}" for value in curve)
        )

    forest_curve = np.array(curves["random forests"])
    # Shape 1: the forest stays strong with all 133 features — no
    # degradation versus its own best point beyond noise.
    assert forest_curve[-1] >= forest_curve.max() - 0.1
    # Shape 2: with all features, the forest beats every other learner
    # or sits within noise of the best of them.
    others_final = max(curves[k][-1] for k in curves if k != "random forests")
    assert forest_curve[-1] >= others_final - 0.05
    # Shape 3: at least one comparison learner degrades from its own
    # peak once irrelevant/redundant features pile on.
    degraded = any(
        max(curve) - curve[-1] > 0.1
        for learner_name, curve in curves.items()
        if learner_name != "random forests"
    )
    assert degraded
