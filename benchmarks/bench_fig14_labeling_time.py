"""Fig 14 + §5.7 — labeling time vs anomalous windows per month.

Paper findings: (1) labeling time for a month of data grows with the
number of anomalous *windows* in that month (one drag per window), not
with anomalous points; (2) a month costs under 6 minutes; (3) the
totals are ~16 / 17 / 6 minutes for PV / #SR / SRT — versus the 8-12
*days* of detector tuning reported by the interviewed operators.
"""

import numpy as np
import pytest

from repro.data import labeling_costs, total_labeling_minutes

from _common import print_header

#: §5.7 anecdotes: operator-reported days spent tuning basic detectors.
TUNING_DAYS = {"SVD": 8, "Holt-Winters + historical average": 12, "TSD": 10}


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_fig14_labeling_time(benchmark, kpis, name):
    series = kpis[name].series
    costs = benchmark(lambda: labeling_costs(series))

    print_header(f"Fig 14 [{name}]: per-month labeling cost")
    for cost in costs:
        print(
            f"  month {cost.month + 1}: {cost.n_windows:>3} windows, "
            f"{cost.n_points:>6} points -> {cost.minutes:.1f} min"
        )
    total = total_labeling_minutes(series)
    print(f"  total: {total:.1f} minutes")

    # Shape 1: every month stays under the 6-minute bound of §5.7.
    assert max(c.minutes for c in costs) < 6.0
    # Shape 2: labeling time increases with the window count (rank
    # correlation over months, where window counts actually vary).
    windows = np.array([c.n_windows for c in costs], dtype=float)
    minutes = np.array([c.minutes for c in costs])
    if len(set(windows)) > 2:
        correlation = np.corrcoef(windows, minutes)[0, 1]
        assert correlation > 0.5
    # Shape 3: total labeling time is tens of minutes at most —
    # thousands of times less than the reported tuning days.
    assert total < 30.0
    worst_tuning_minutes = min(TUNING_DAYS.values()) * 8 * 60  # 8h days
    assert total < worst_tuning_minutes / 100.0


def test_labeling_vs_tuning_summary(benchmark, kpis):
    totals = benchmark(
        lambda: {
            name: total_labeling_minutes(result.series)
            for name, result in kpis.items()
        }
    )
    print_header("§5.7: labeling time vs tuning time")
    for name, minutes in totals.items():
        print(f"  label {name:<4} once: {minutes:5.1f} minutes")
    for detector, days in TUNING_DAYS.items():
        print(f"  tune  {detector:<34}: ~{days} days (operator interview)")
    assert sum(totals.values()) < 60.0
