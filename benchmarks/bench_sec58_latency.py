"""§5.8 — detection lag and training time.

Paper numbers (Dell R420, 1-minute PV): extracting all 133 features
takes ~0.15 s per data point, classification < 0.0001 s per point, and
each offline (re)training round < 5 minutes. Absolute numbers on this
machine differ; the shape to reproduce is the ordering

    classification << per-point feature extraction << data interval

and training well under the weekly retraining budget.
"""

import numpy as np
import pytest

from repro.core.opprentice import _subsample_training
from repro.ml import Imputer

from _common import MAX_TRAIN_POINTS, bench_extractor, bench_forest, print_header

#: Every studied KPI has an interval of at least one minute.
SHORTEST_INTERVAL_SECONDS = 60.0


@pytest.fixture(scope="module")
def pv_model(kpis, feature_matrices):
    """A trained forest + imputer on PV's first 8 weeks."""
    series = kpis["PV"].series
    matrix = feature_matrices["PV"]
    split = 8 * series.points_per_week
    imputer = Imputer().fit(matrix.values[:split])
    train_x, train_y = _subsample_training(
        imputer.transform(matrix.values[:split]),
        series.labels[:split],
        MAX_TRAIN_POINTS,
        0,
    )
    model = bench_forest().fit(train_x, train_y)
    return model, imputer, matrix, series


def test_feature_extraction_per_point(benchmark, kpis):
    """Feature-extraction share of the detection lag."""
    series = kpis["PV"].series
    window = series.slice(0, 2 * series.points_per_week)
    extractor = bench_extractor()
    benchmark.pedantic(
        lambda: extractor.extract(window), rounds=1, iterations=1
    )
    per_point = benchmark.stats.stats.mean / len(window)
    print_header("§5.8: feature extraction")
    print(f"  133 configurations: {per_point * 1000:.2f} ms/point "
          f"(paper: ~150 ms/point on a 2012 server)")
    assert per_point < SHORTEST_INTERVAL_SECONDS


def test_classification_per_point(benchmark, pv_model):
    """Classification is negligible next to extraction (paper:
    < 0.0001 s per point)."""
    model, imputer, matrix, series = pv_model
    begin = 8 * series.points_per_week
    rows = imputer.transform(matrix.values[begin:])
    benchmark(lambda: model.predict_proba(rows))
    per_point = benchmark.stats.stats.mean / len(rows)
    print_header("§5.8: classification")
    print(f"  forest probability: {per_point * 1e6:.1f} us/point")
    assert per_point < 0.01


def test_training_time_per_round(benchmark, kpis, feature_matrices):
    """One incremental retraining round (paper: < 5 minutes)."""
    series = kpis["PV"].series
    matrix = feature_matrices["PV"]
    split = 8 * series.points_per_week
    imputer = Imputer().fit(matrix.values[:split])
    train_x, train_y = _subsample_training(
        imputer.transform(matrix.values[:split]),
        series.labels[:split],
        MAX_TRAIN_POINTS,
        0,
    )
    benchmark.pedantic(
        lambda: bench_forest().fit(train_x, train_y), rounds=1, iterations=1
    )
    seconds = benchmark.stats.stats.mean
    print_header("§5.8: training")
    print(f"  one retraining round on {len(train_y)} x 133: {seconds:.1f} s "
          f"(paper bound: 300 s)")
    assert seconds < 300.0


def test_detection_lag_ordering(benchmark, pv_model, kpis):
    """classification << extraction << interval."""
    model, imputer, matrix, series = pv_model
    window = series.slice(0, series.points_per_week)
    extractor = bench_extractor()

    import time

    t0 = time.perf_counter()
    extracted = extractor.extract(window)
    extraction_per_point = (time.perf_counter() - t0) / len(window)

    rows = imputer.transform(extracted.values)
    t0 = time.perf_counter()
    benchmark(lambda: model.predict_proba(rows))
    classify_per_point = benchmark.stats.stats.mean / len(rows)

    print_header("§5.8: detection lag ordering")
    print(f"  classification {classify_per_point * 1e6:9.1f} us/point")
    print(f"  extraction     {extraction_per_point * 1e6:9.1f} us/point")
    print(f"  data interval  {series.interval * 1e6:9.0f} us")
    assert classify_per_point < extraction_per_point < series.interval
