"""Table 3 — 14 basic detectors / 133 configurations.

Regenerates the registry table and times full feature extraction of one
week of each KPI (the per-point cost also feeds §5.8's detection-lag
bench).
"""

import collections

import pytest

from repro.core import FeatureExtractor
from repro.detectors import default_configs, registry_table

from _common import print_header

TABLE3 = {
    "simple threshold": 1,
    "diff": 3,
    "simple MA": 5,
    "weighted MA": 5,
    "MA of diff": 5,
    "ewma": 5,
    "tsd": 5,
    "tsd MAD": 5,
    "historical average": 5,
    "historical MAD": 5,
    "holt-winters": 64,
    "svd": 15,
    "wavelet": 9,
    "arima": 1,
}


def test_registry_matches_table3(benchmark):
    configs = benchmark(lambda: default_configs(600))
    print_header("Table 3: detectors and sampled parameters")
    print(registry_table(configs))
    counts = collections.Counter(c.detector.kind for c in configs)
    assert dict(counts) == TABLE3
    assert len(configs) == 133


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_feature_extraction_full_kpi(benchmark, kpis, name):
    """Time extracting all 133 features over the whole KPI."""
    series = kpis[name].series
    extractor = FeatureExtractor()
    matrix = benchmark.pedantic(
        lambda: extractor.extract(series), rounds=1, iterations=1
    )
    per_point_ms = (
        benchmark.stats.stats.mean / len(series) * 1000.0
    )
    print_header(f"Feature extraction [{name}]")
    print(
        f"{matrix.n_features} configurations x {len(series)} points: "
        f"{per_point_ms:.3f} ms/point"
    )
    assert matrix.n_features == 133
