"""Table 3 — 14 basic detectors / 133 configurations.

Regenerates the registry table, times full feature extraction of each
KPI (the per-point cost also feeds §5.8's detection-lag bench), and
compares the execution backends (serial / thread / process) over the
full bank — §5.8: "all the detectors can run in parallel". The CI
``bench-regression`` job records this file's timings in BENCH_4.json
and gates median slowdowns via tools/bench_compare.py.
"""

import collections
import os

import pytest

from repro.core import FeatureExtractor
from repro.detectors import default_configs, registry_table

from _common import bench_extractor, print_header

TABLE3 = {
    "simple threshold": 1,
    "diff": 3,
    "simple MA": 5,
    "weighted MA": 5,
    "MA of diff": 5,
    "ewma": 5,
    "tsd": 5,
    "tsd MAD": 5,
    "historical average": 5,
    "historical MAD": 5,
    "holt-winters": 64,
    "svd": 15,
    "wavelet": 9,
    "arima": 1,
}


def test_registry_matches_table3(benchmark):
    configs = benchmark(lambda: default_configs(600))
    print_header("Table 3: detectors and sampled parameters")
    print(registry_table(configs))
    counts = collections.Counter(c.detector.kind for c in configs)
    assert dict(counts) == TABLE3
    assert len(configs) == 133


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_feature_extraction_full_kpi(benchmark, kpis, name):
    """Time extracting all 133 features over the whole KPI."""
    series = kpis[name].series
    extractor = bench_extractor()
    matrix = benchmark.pedantic(
        lambda: extractor.extract(series), rounds=1, iterations=1
    )
    per_point_ms = (
        benchmark.stats.stats.mean / len(series) * 1000.0
    )
    print_header(f"Feature extraction [{name}]")
    print(
        f"{matrix.n_features} configurations x {len(series)} points: "
        f"{per_point_ms:.3f} ms/point"
    )
    assert matrix.n_features == 133


#: Worker count for the backend comparison — matches the CI runners.
BACKEND_WORKERS = 4

#: Median seconds per backend, filled in parametrization order so the
#: process case can report its speedup over serial.
_backend_seconds = {}


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_extraction_backend_comparison(benchmark, kpis, backend):
    """Full-bank extraction of PV under each execution backend.

    The acceptance target is a >= 2x process-over-serial speedup at 4
    workers on multi-core CI hardware; on fewer cores the speedup
    degrades gracefully (the comparison still runs, it just reports
    what the hardware allows). The severity cache is explicitly off so
    every backend does the full work.
    """
    series = kpis["PV"].series
    extractor = FeatureExtractor(
        workers=BACKEND_WORKERS, backend=backend, cache=False
    )
    matrix = benchmark.pedantic(
        lambda: extractor.extract(series), rounds=1, iterations=1
    )
    assert matrix.n_features == 133
    _backend_seconds[backend] = benchmark.stats.stats.median
    if backend == "process" and "serial" in _backend_seconds:
        print_header(
            f"Backend comparison [PV, {BACKEND_WORKERS} workers, "
            f"{os.cpu_count()} CPUs]"
        )
        serial = _backend_seconds["serial"]
        for which, seconds in _backend_seconds.items():
            print(f"  {which:8s} {seconds:8.2f} s   "
                  f"{serial / seconds:5.2f}x vs serial")
