"""Fleet ingest scaling: per-point cost must stay flat in fleet size.

§5.8 prices a single KPI's detection loop; ``repro.fleet`` multiplexes
N of them over one process. The orchestration layer (consistent-hash
scheduling, bounded queues, batch dispatch, state gauges) must be
amortized noise next to the per-point work itself: the acceptance
target is a per-point ingest cost at 64 KPIs within 2x of the
single-KPI cost. The CI ``bench-regression`` job records these timings
in BENCH_4.json and gates median slowdowns via tools/bench_compare.py.

The cross-process extension scales the same question past one process:
``REPRO_BENCH_SERVE_KPIS`` KPIs (default 10,000) sharded over
``ShardSupervisor`` worker processes, one point per KPI per round
through the serve data plane. Its aggregate throughput lands in
BENCH_4.json with ``n_kpis``/``n_shards`` extra-info, and the
machine-info hook stamps ``os.cpu_count()`` so tools/bench_compare.py
can warn when runs on differently-sized machines are compared.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import MonitoringService, load_model, save_model
from repro.data import SeasonalProfile, generate_kpi, inject_anomalies
from repro.detectors import (
    Diff,
    EWMA,
    HistoricalAverage,
    SimpleMA,
    SimpleThreshold,
    TSDMad,
    build_configs,
)
from repro.fleet import FleetManager
from repro.ml import RandomForest
from repro.serve import ShardSupervisor

from _common import print_header, write_metrics_snapshot

BOOTSTRAP_WEEKS = 2
LIVE_POINTS = 48
FLEET_SIZES = [1, 8, 64]

#: Cross-process scale knobs. The default hits the 10k-KPI acceptance
#: bar; lower REPRO_BENCH_SERVE_KPIS for a laptop smoke run. Shards
#: default to one per spare core (at least 2, at most 8).
SERVE_KPIS = int(os.environ.get("REPRO_BENCH_SERVE_KPIS", "10000"))
SERVE_SHARDS = int(os.environ.get("REPRO_BENCH_SERVE_SHARDS", "0")) or min(
    8, max(2, (os.cpu_count() or 4) - 2)
)
SERVE_ROUNDS = 4

#: Median per-point milliseconds per fleet size, filled in
#: parametrization order so the 64-KPI case can check the 2x budget.
_per_point_ms = {}


def _bench_bank(points_per_week: int):
    """The fleet cost model is orchestration around per-KPI streams, so
    a small bank keeps the bench about the fleet, not the bank."""
    return build_configs(
        [
            SimpleThreshold(),
            Diff("last-slot", 1),
            SimpleMA(10),
            EWMA(0.5),
            TSDMad(1, points_per_week),
            HistoricalAverage(1, points_per_week // 7),
        ]
    )


def _make_service(ppw: int) -> MonitoringService:
    return MonitoringService(
        configs=_bench_bank(ppw),
        classifier_factory=lambda: RandomForest(n_estimators=15, seed=0),
    )


@pytest.fixture(scope="module")
def fleet_template(tmp_path_factory):
    """One bootstrapped service, cloned into every fleet below through
    the public checkpoint path (so N bootstraps cost one extraction)."""
    generated = generate_kpi(
        weeks=BOOTSTRAP_WEEKS + 1,
        interval=3600,
        profile=SeasonalProfile(
            base_level=100.0, daily_amplitude=0.5, noise_scale=0.02, trend=0.0
        ),
        seed=61,
        name="fleet-template",
    )
    result = inject_anomalies(
        generated.series, target_fraction=0.05, seed=62, mean_window=4.0
    )
    series = result.series
    ppw = series.points_per_week
    split = BOOTSTRAP_WEEKS * ppw
    service = _make_service(ppw)
    service.bootstrap(series.slice(0, split))
    model_path = tmp_path_factory.mktemp("fleet-bench") / "model.json"
    save_model(service.opprentice, model_path)
    return {
        "snapshot": service.snapshot(),
        "model_path": model_path,
        "ppw": ppw,
        "live": [float(v) for v in series.values[split:split + LIVE_POINTS]],
    }


def _build_fleet(template, n_kpis: int) -> FleetManager:
    fleet = FleetManager(n_shards=4, queue_depth=256, batch_points=8)
    for index in range(n_kpis):
        kpi_id = f"kpi-{index:03d}"
        service = _make_service(template["ppw"])
        load_model(template["model_path"], opprentice=service.opprentice)
        snapshot = template["snapshot"]
        snapshot["kpi"] = kpi_id
        snapshot["history"]["name"] = kpi_id
        service.restore_snapshot(snapshot)
        fleet.add_kpi(kpi_id, service=service)
    return fleet


@pytest.mark.parametrize("n_kpis", FLEET_SIZES)
def test_fleet_ingest_scaling(benchmark, fleet_template, n_kpis):
    """Offer one point per KPI per cycle and pump, timing each cycle.

    Per-point cost = cycle wall time / fleet size; p99 over cycles is
    the tail a single slow point would hide behind a plain mean.
    """
    fleet = _build_fleet(fleet_template, n_kpis)
    live = fleet_template["live"]
    cycle_seconds = []

    def run():
        for value in live:
            began = time.perf_counter()
            for kpi_id in fleet.kpi_ids:
                fleet.offer(kpi_id, value)
            fleet.pump()
            cycle_seconds.append(time.perf_counter() - began)

    benchmark.pedantic(run, rounds=1, iterations=1)

    per_point_ms = np.asarray(cycle_seconds) / n_kpis * 1000.0
    median_ms = float(np.median(per_point_ms))
    p99_ms = float(np.percentile(per_point_ms, 99))
    total_seconds = float(np.sum(cycle_seconds))
    throughput = len(live) * n_kpis / total_seconds
    _per_point_ms[n_kpis] = median_ms

    print_header(f"Fleet ingest scaling [{n_kpis} KPIs]")
    print(
        f"{len(live)} cycles x {n_kpis} KPIs: {throughput:,.0f} points/s; "
        f"per point median {median_ms:.3f} ms, p99 {p99_ms:.3f} ms"
    )
    status = fleet.status()
    assert status.total_points_ingested == len(live) * n_kpis
    assert status.total_dropped == 0

    if n_kpis == FLEET_SIZES[-1] and FLEET_SIZES[0] in _per_point_ms:
        single = _per_point_ms[FLEET_SIZES[0]]
        ratio = median_ms / single
        print(
            f"per-point cost vs single KPI: {ratio:.2f}x "
            f"({single:.3f} ms -> {median_ms:.3f} ms)"
        )
        # The fleet layer must amortize: the per-point budget at 64
        # KPIs is 2x the single-KPI cost (ISSUE acceptance bar).
        assert ratio < 2.0, (
            f"per-point ingest cost grew {ratio:.2f}x from 1 to "
            f"{n_kpis} KPIs"
        )
        write_metrics_snapshot("fleet_scaling")


# ----------------------------------------------------------------------
# Cross-process extension: 10k KPIs over ShardSupervisor processes
# ----------------------------------------------------------------------
def _light_service(ppw: int) -> MonitoringService:
    """O(1)-state detectors and a small forest: at 10k KPIs the bench
    prices the *serve plane* (routing, framing, per-shard fleets), and
    the per-KPI memory footprint (~35 KB) is what makes one machine
    hold the whole fleet."""
    return MonitoringService(
        configs=build_configs(
            [SimpleThreshold(), Diff("last-slot", 1), EWMA(0.5)]
        ),
        classifier_factory=lambda: RandomForest(n_estimators=5, seed=0),
    )


@pytest.fixture(scope="module")
def serve_template(tmp_path_factory):
    """One bootstrapped light service; shard processes clone it per KPI
    through the checkpoint path (inherited across the fork)."""
    generated = generate_kpi(
        weeks=2,
        interval=3600,
        profile=SeasonalProfile(
            base_level=100.0, daily_amplitude=0.5, noise_scale=0.02, trend=0.0
        ),
        seed=63,
        name="serve-template",
    )
    result = inject_anomalies(
        generated.series, target_fraction=0.05, seed=64, mean_window=4.0
    )
    series = result.series
    ppw = series.points_per_week
    service = _light_service(ppw)
    service.bootstrap(series.slice(0, ppw))
    model_path = tmp_path_factory.mktemp("serve-bench") / "model.json"
    save_model(service.opprentice, model_path)
    return {
        "snapshot": service.snapshot(),
        "model_path": model_path,
        "ppw": ppw,
        "live": [float(v) for v in series.values[ppw:ppw + SERVE_ROUNDS]],
    }


def test_cross_process_fleet_scaling(benchmark, serve_template, tmp_path):
    """One point per KPI per round through the multi-process data plane.

    ``SERVE_KPIS`` KPIs are consistent-hash routed over ``SERVE_SHARDS``
    forked shard processes; every round fans one NDJSON-sized batch per
    shard out concurrently (the same shape the HTTP plane produces) and
    waits for all accepts. Aggregate points/s is the headline number;
    the per-KPI count is recorded as extra-info so BENCH_4.json proves
    the 10k-KPI bar was actually exercised.
    """
    template = serve_template

    def clone(kpi_id: str) -> MonitoringService:
        service = _light_service(template["ppw"])
        load_model(template["model_path"], opprentice=service.opprentice)
        snapshot = template["snapshot"]
        snapshot["kpi"] = kpi_id
        snapshot["history"]["name"] = kpi_id
        service.restore_snapshot(snapshot)
        return service

    def builder(index: int, shard_ids) -> FleetManager:
        fleet = FleetManager(n_shards=1, queue_depth=8, batch_points=64)
        for kpi_id in shard_ids:
            fleet.add_kpi(kpi_id, service=clone(kpi_id))
        return fleet

    kpi_ids = [f"kpi-{index:05d}" for index in range(SERVE_KPIS)]
    supervisor = ShardSupervisor(
        kpi_ids,
        builder,
        workdir=str(tmp_path / "serve-bench"),
        n_shards=SERVE_SHARDS,
        service_factory=clone,
        # The in-process benches price ingest, not durability; per-batch
        # checkpoints of a 10k-KPI fleet would measure the filesystem.
        checkpoint_every_batches=0,
    )
    started = time.perf_counter()
    supervisor.start()
    startup_seconds = time.perf_counter() - started
    populated = [
        shard for shard, ids in supervisor.assignment.items() if ids
    ]
    accepted_total = 0
    round_seconds = []

    try:
        with ThreadPoolExecutor(max_workers=len(populated)) as pool:
            def run():
                nonlocal accepted_total
                for value in template["live"]:
                    began = time.perf_counter()
                    futures = [
                        pool.submit(
                            supervisor.offer_batch,
                            shard,
                            [
                                (kpi_id, value)
                                for kpi_id in supervisor.assignment[shard]
                            ],
                        )
                        for shard in populated
                    ]
                    accepted_total += sum(
                        future.result()["accepted"] for future in futures
                    )
                    round_seconds.append(time.perf_counter() - began)

            benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        supervisor.stop(checkpoint=False)

    assert accepted_total == SERVE_ROUNDS * SERVE_KPIS
    total_seconds = float(np.sum(round_seconds))
    throughput = accepted_total / total_seconds
    benchmark.extra_info["n_kpis"] = SERVE_KPIS
    benchmark.extra_info["n_shards"] = SERVE_SHARDS
    benchmark.extra_info["points_per_second"] = round(throughput)
    benchmark.extra_info["startup_seconds"] = round(startup_seconds, 3)

    print_header(
        f"Cross-process fleet scaling [{SERVE_KPIS} KPIs / "
        f"{SERVE_SHARDS} shards]"
    )
    print(
        f"{SERVE_ROUNDS} rounds x {SERVE_KPIS} KPIs over "
        f"{SERVE_SHARDS} shard processes: {throughput:,.0f} points/s "
        f"(startup {startup_seconds:.1f}s, per round median "
        f"{np.median(round_seconds) * 1000.0:.0f} ms)"
    )
