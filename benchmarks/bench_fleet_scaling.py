"""Fleet ingest scaling: per-point cost must stay flat in fleet size.

§5.8 prices a single KPI's detection loop; ``repro.fleet`` multiplexes
N of them over one process. The orchestration layer (consistent-hash
scheduling, bounded queues, batch dispatch, state gauges) must be
amortized noise next to the per-point work itself: the acceptance
target is a per-point ingest cost at 64 KPIs within 2x of the
single-KPI cost. The CI ``bench-regression`` job records these timings
in BENCH_4.json and gates median slowdowns via tools/bench_compare.py.
"""

import time

import numpy as np
import pytest

from repro.core import MonitoringService, load_model, save_model
from repro.data import SeasonalProfile, generate_kpi, inject_anomalies
from repro.detectors import (
    Diff,
    EWMA,
    HistoricalAverage,
    SimpleMA,
    SimpleThreshold,
    TSDMad,
    build_configs,
)
from repro.fleet import FleetManager
from repro.ml import RandomForest

from _common import print_header, write_metrics_snapshot

BOOTSTRAP_WEEKS = 2
LIVE_POINTS = 48
FLEET_SIZES = [1, 8, 64]

#: Median per-point milliseconds per fleet size, filled in
#: parametrization order so the 64-KPI case can check the 2x budget.
_per_point_ms = {}


def _bench_bank(points_per_week: int):
    """The fleet cost model is orchestration around per-KPI streams, so
    a small bank keeps the bench about the fleet, not the bank."""
    return build_configs(
        [
            SimpleThreshold(),
            Diff("last-slot", 1),
            SimpleMA(10),
            EWMA(0.5),
            TSDMad(1, points_per_week),
            HistoricalAverage(1, points_per_week // 7),
        ]
    )


def _make_service(ppw: int) -> MonitoringService:
    return MonitoringService(
        configs=_bench_bank(ppw),
        classifier_factory=lambda: RandomForest(n_estimators=15, seed=0),
    )


@pytest.fixture(scope="module")
def fleet_template(tmp_path_factory):
    """One bootstrapped service, cloned into every fleet below through
    the public checkpoint path (so N bootstraps cost one extraction)."""
    generated = generate_kpi(
        weeks=BOOTSTRAP_WEEKS + 1,
        interval=3600,
        profile=SeasonalProfile(
            base_level=100.0, daily_amplitude=0.5, noise_scale=0.02, trend=0.0
        ),
        seed=61,
        name="fleet-template",
    )
    result = inject_anomalies(
        generated.series, target_fraction=0.05, seed=62, mean_window=4.0
    )
    series = result.series
    ppw = series.points_per_week
    split = BOOTSTRAP_WEEKS * ppw
    service = _make_service(ppw)
    service.bootstrap(series.slice(0, split))
    model_path = tmp_path_factory.mktemp("fleet-bench") / "model.json"
    save_model(service.opprentice, model_path)
    return {
        "snapshot": service.snapshot(),
        "model_path": model_path,
        "ppw": ppw,
        "live": [float(v) for v in series.values[split:split + LIVE_POINTS]],
    }


def _build_fleet(template, n_kpis: int) -> FleetManager:
    fleet = FleetManager(n_shards=4, queue_depth=256, batch_points=8)
    for index in range(n_kpis):
        kpi_id = f"kpi-{index:03d}"
        service = _make_service(template["ppw"])
        load_model(template["model_path"], opprentice=service.opprentice)
        snapshot = template["snapshot"]
        snapshot["kpi"] = kpi_id
        snapshot["history"]["name"] = kpi_id
        service.restore_snapshot(snapshot)
        fleet.add_kpi(kpi_id, service=service)
    return fleet


@pytest.mark.parametrize("n_kpis", FLEET_SIZES)
def test_fleet_ingest_scaling(benchmark, fleet_template, n_kpis):
    """Offer one point per KPI per cycle and pump, timing each cycle.

    Per-point cost = cycle wall time / fleet size; p99 over cycles is
    the tail a single slow point would hide behind a plain mean.
    """
    fleet = _build_fleet(fleet_template, n_kpis)
    live = fleet_template["live"]
    cycle_seconds = []

    def run():
        for value in live:
            began = time.perf_counter()
            for kpi_id in fleet.kpi_ids:
                fleet.offer(kpi_id, value)
            fleet.pump()
            cycle_seconds.append(time.perf_counter() - began)

    benchmark.pedantic(run, rounds=1, iterations=1)

    per_point_ms = np.asarray(cycle_seconds) / n_kpis * 1000.0
    median_ms = float(np.median(per_point_ms))
    p99_ms = float(np.percentile(per_point_ms, 99))
    total_seconds = float(np.sum(cycle_seconds))
    throughput = len(live) * n_kpis / total_seconds
    _per_point_ms[n_kpis] = median_ms

    print_header(f"Fleet ingest scaling [{n_kpis} KPIs]")
    print(
        f"{len(live)} cycles x {n_kpis} KPIs: {throughput:,.0f} points/s; "
        f"per point median {median_ms:.3f} ms, p99 {p99_ms:.3f} ms"
    )
    status = fleet.status()
    assert status.total_points_ingested == len(live) * n_kpis
    assert status.total_dropped == 0

    if n_kpis == FLEET_SIZES[-1] and FLEET_SIZES[0] in _per_point_ms:
        single = _per_point_ms[FLEET_SIZES[0]]
        ratio = median_ms / single
        print(
            f"per-point cost vs single KPI: {ratio:.2f}x "
            f"({single:.3f} ms -> {median_ms:.3f} ms)"
        )
        # The fleet layer must amortize: the per-point budget at 64
        # KPIs is 2x the single-KPI cost (ISSUE acceptance bar).
        assert ratio < 2.0, (
            f"per-point ingest cost grew {ratio:.2f}x from 1 to "
            f"{n_kpis} KPIs"
        )
        write_metrics_snapshot("fleet_scaling")
