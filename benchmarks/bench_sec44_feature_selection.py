"""§4.4.1 future work — mRMR feature selection ablation.

The paper deliberately skips feature selection ("it could introduce
extra computation overhead, and the random forest works well by
itself") and cites mRMR [51] as the standard technique. This bench
implements that future work and quantifies the §4.4.1 trade-off:

* a forest on the top-k mRMR features should approach the full
  133-feature forest (redundant configurations add little);
* mRMR's redundancy term should beat plain MI ranking at equal k,
  because MI ranking picks near-duplicate configurations first;
* selection itself costs extra computation (the overhead the paper
  wanted to avoid), which the benchmark times.
"""

import numpy as np
import pytest

from repro.core.opprentice import _subsample_training
from repro.evaluation import aucpr
from repro.ml import Imputer, mrmr_select, rank_features_by_mi

from _common import MAX_TRAIN_POINTS, bench_forest, print_header

SELECTED_K = 15


def run_selection(kpis, feature_matrices, name):
    series = kpis[name].series
    matrix = feature_matrices[name]
    split = 8 * series.points_per_week
    imputer = Imputer().fit(matrix.values[:split])
    features = imputer.transform(matrix.values)
    labels = series.labels
    train_x, train_y = _subsample_training(
        features[:split], labels[:split], MAX_TRAIN_POINTS, 0
    )
    test_x, test_y = features[split:], labels[split:]

    def forest_auc(columns):
        model = bench_forest(seed=44)
        model.fit(train_x[:, columns], train_y)
        return aucpr(model.predict_proba(test_x[:, columns]), test_y)

    mrmr_columns = mrmr_select(train_x, train_y, SELECTED_K)
    mi_columns = rank_features_by_mi(train_x, train_y)[:SELECTED_K]
    return {
        "all 133": forest_auc(np.arange(features.shape[1])),
        f"mRMR top {SELECTED_K}": forest_auc(mrmr_columns),
        f"MI top {SELECTED_K}": forest_auc(mi_columns),
    }, [matrix.names[j] for j in mrmr_columns[:5]]


@pytest.mark.parametrize("name", ["PV", "SRT"])
def test_mrmr_ablation(benchmark, kpis, feature_matrices, name):
    results, top_names = benchmark.pedantic(
        lambda: run_selection(kpis, feature_matrices, name),
        rounds=1, iterations=1,
    )
    print_header(f"§4.4.1 ablation [{name}]: feature selection")
    for label, auc in results.items():
        print(f"  {label:<14} AUCPR={auc:.3f}")
    print(f"  first mRMR picks: {', '.join(top_names)}")

    # Shape 1: the paper's position holds — the full forest does not
    # need selection (selection gives no meaningful gain).
    assert results["all 133"] >= results[f"mRMR top {SELECTED_K}"] - 0.05
    # Shape 2: mRMR at k=15 retains most of the full-bank accuracy.
    assert results[f"mRMR top {SELECTED_K}"] >= 0.8 * results["all 133"]
    # Shape 3: the redundancy term does not hurt relative to plain MI.
    assert (
        results[f"mRMR top {SELECTED_K}"]
        >= results[f"MI top {SELECTED_K}"] - 0.1
    )
