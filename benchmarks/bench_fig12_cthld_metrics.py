"""Fig 12 — offline comparison of cThld-selection accuracy metrics.

For every 1-week test set (I1), four metrics pick a cThld from that
week's PR curve: PC-Score (the paper's), F-Score, SD(1,1) and the
default 0.5. Under three operator preferences — moderate (0.66, 0.66),
sensitive-to-precision (0.6, 0.8) and sensitive-to-recall (0.8, 0.6) —
the paper reports two findings:

1. only PC-Score *adapts* its chosen (recall, precision) to the
   preference (the other metrics pick the same point regardless);
2. PC-Score always lands the most weeks inside the preference box, for
   the original box and the scaled-up ones.
"""

import numpy as np
import pytest

from repro.evaluation import (
    AccuracyPreference,
    DefaultCThld,
    FScoreSelector,
    PCScoreSelector,
    SDSelector,
)

from _common import print_header

PREFERENCES = {
    "moderate": AccuracyPreference(0.66, 0.66),
    "sensitive-to-precision": AccuracyPreference(0.6, 0.8),
    "sensitive-to-recall": AccuracyPreference(0.8, 0.6),
}

SCALE_RATIOS = (1.0, 1.2, 1.5, 2.0)


def selectors_for(preference):
    return {
        "PC-Score": PCScoreSelector(preference),
        "F-Score": FScoreSelector(),
        "SD(1,1)": SDSelector(),
        "default cThld": DefaultCThld(),
    }


def run_fig12(weekly, name):
    """(metric, preference) -> list of weekly (recall, precision)."""
    ws = weekly[name]
    points = {}
    for pref_name, preference in PREFERENCES.items():
        for metric_name, selector in selectors_for(preference).items():
            weekly_points = []
            for scores, labels in zip(ws.scores, ws.labels):
                if labels.sum() == 0:
                    continue
                choice = selector.select(scores, labels)
                weekly_points.append((choice.recall, choice.precision))
            points[(metric_name, pref_name)] = weekly_points
    return points


def in_box_rate(points, preference, ratio):
    scaled = preference.scaled(ratio)
    return np.mean([
        scaled.satisfied_by(r, p) for r, p in points
    ])


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_fig12_metric_comparison(benchmark, weekly_scores, name):
    points = benchmark.pedantic(
        lambda: run_fig12(weekly_scores, name), rounds=1, iterations=1
    )
    print_header(f"Fig 12 [{name}]: % of weeks inside the preference box")
    for pref_name, preference in PREFERENCES.items():
        print(f"  preference: {pref_name} "
              f"(recall>={preference.recall}, precision>={preference.precision})")
        for metric in ("PC-Score", "F-Score", "SD(1,1)", "default cThld"):
            rates = [
                100 * in_box_rate(points[(metric, pref_name)], preference, ratio)
                for ratio in SCALE_RATIOS
            ]
            print(
                f"    {metric:<14} "
                + " ".join(f"{rate:5.1f}%" for rate in rates)
                + f"   (box scale {SCALE_RATIOS})"
            )

    # Shape 1: PC-Score adapts to the preference; the other metrics pick
    # identical points for every preference by construction.
    for metric in ("F-Score", "SD(1,1)", "default cThld"):
        assert (
            points[(metric, "moderate")]
            == points[(metric, "sensitive-to-precision")]
        )
    # Shape 2: PC-Score achieves at least as many in-box weeks as every
    # other metric, for every preference, at the original box size.
    for pref_name, preference in PREFERENCES.items():
        pc_rate = in_box_rate(points[("PC-Score", pref_name)], preference, 1.0)
        for metric in ("F-Score", "SD(1,1)", "default cThld"):
            other = in_box_rate(points[(metric, pref_name)], preference, 1.0)
            assert pc_rate >= other - 1e-9, (name, pref_name, metric)
