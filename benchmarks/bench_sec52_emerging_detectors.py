"""§5.2 — plugging emerging detectors into Opprentice.

"Opprentice is not limited to the detectors we used, and can
incorporate emerging detectors, as long as they meet our detector
requirements." This bench extends the 133-configuration bank with
Brutlag's aberrant-behaviour detector [13], two-sided CUSUM, and
Seasonal Hybrid ESD (17 extra configurations) and verifies that

* the extended forest never loses accuracy (the forest absorbs the new
  features without any tuning), and
* the new detectors earn non-trivial feature importance when they help.
"""

import numpy as np
import pytest

from repro.core import FeatureExtractor
from repro.core.opprentice import _subsample_training
from repro.detectors import build_configs, default_detectors, extended_detectors
from repro.evaluation import aucpr
from repro.ml import Imputer

from _common import MAX_TRAIN_POINTS, bench_forest, print_header


def run_extended(kpis, feature_matrices, name):
    series = kpis[name].series
    base_matrix = feature_matrices[name]
    extra_configs = build_configs(
        default_detectors(series.interval) + extended_detectors(series.interval)
    )
    extended_matrix = FeatureExtractor(extra_configs).extract(series)

    split = 8 * series.points_per_week
    labels = series.labels
    results = {}
    importances = None
    for label, matrix in (("table 3 bank", base_matrix),
                          ("+ brutlag/cusum", extended_matrix)):
        imputer = Imputer().fit(matrix.values[:split])
        features = imputer.transform(matrix.values)
        train_x, train_y = _subsample_training(
            features[:split], labels[:split], MAX_TRAIN_POINTS, 0
        )
        model = bench_forest(seed=52)
        model.fit(train_x, train_y)
        results[label] = aucpr(
            model.predict_proba(features[split:]), labels[split:]
        )
        if label == "+ brutlag/cusum":
            importances = model.feature_importances()
    new_share = float(importances[133:].sum())
    return results, new_share, extended_matrix.names[133:]


@pytest.mark.parametrize("name", ["SRT"])
def test_emerging_detectors_plug_in(benchmark, kpis, feature_matrices, name):
    results, new_share, new_names = benchmark.pedantic(
        lambda: run_extended(kpis, feature_matrices, name),
        rounds=1, iterations=1,
    )
    print_header(f"§5.2 [{name}]: extending the bank with emerging detectors")
    for label, auc in results.items():
        print(f"  {label:<16} AUCPR={auc:.3f}")
    print(f"  importance share of the new configurations: {new_share:.1%}")

    # Shape: adding detectors without tuning does not hurt (the Fig 10
    # robustness property), and the forest actually uses them.
    assert results["+ brutlag/cusum"] >= results["table 3 bank"] - 0.03
    assert new_share > 0.0
    assert len(new_names) == 17
