"""Fig 11 — incremental retraining vs fixed training sets.

Compares the three 4-week-test training strategies of Table 2: I4 (all
historical data = incremental retraining), R4 (recent 8 weeks), F4
(first 8 weeks). Paper result: "I4 (also called incremental retraining)
outperforms the other two training sets in most cases", with #SR being
the exception where all three are similar because its anomaly types are
simple and stable.
"""

import numpy as np
import pytest

from repro.core import F4, I4, R4
from repro.core.opprentice import _subsample_training
from repro.evaluation import aucpr
from repro.ml import Imputer

from _common import MAX_TRAIN_POINTS, bench_forest, print_header

STRATEGIES = {"I4": I4, "R4": R4, "F4": F4}


def run_fig11(kpis, feature_matrices, name):
    """Per-strategy AUCPR series over the 4-week moving test sets."""
    series = kpis[name].series
    matrix = feature_matrices[name]
    labels = series.labels
    curves = {}
    for sid, strategy in STRATEGIES.items():
        curve = []
        for split in strategy.splits(series):
            train_rows = matrix.rows(split.train_begin, split.train_end)
            train_labels = labels[split.train_begin: split.train_end]
            imputer = Imputer().fit(train_rows)
            train_x, train_y = _subsample_training(
                imputer.transform(train_rows), train_labels,
                MAX_TRAIN_POINTS, split.test_week,
            )
            model = bench_forest(seed=split.test_week)
            model.fit(train_x, train_y)
            scores = model.predict_proba(
                imputer.transform(matrix.rows(split.test_begin, split.test_end))
            )
            curve.append(
                aucpr(scores, labels[split.test_begin: split.test_end])
            )
        curves[sid] = np.array(curve)
    return curves


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_fig11_training_strategies(benchmark, kpis, feature_matrices, name):
    curves = benchmark.pedantic(
        lambda: run_fig11(kpis, feature_matrices, name), rounds=1, iterations=1
    )
    print_header(f"Fig 11 [{name}]: AUCPR per 4-week moving test set")
    n_sets = len(curves["I4"])
    print(f"{'set':>4} " + " ".join(f"{sid:>6}" for sid in STRATEGIES))
    for i in range(n_sets):
        print(
            f"{i + 1:>4} "
            + " ".join(f"{curves[sid][i]:6.3f}" for sid in STRATEGIES)
        )
    means = {sid: curve.mean() for sid, curve in curves.items()}
    print("mean " + " ".join(f"{means[sid]:6.3f}" for sid in STRATEGIES))

    # Shape: incremental retraining wins or ties on average, and is the
    # best (or within noise of the best) in most moving test sets.
    assert means["I4"] >= max(means["R4"], means["F4"]) - 0.02
    best_per_set = np.maximum(curves["R4"], curves["F4"])
    i4_wins = np.mean(curves["I4"] >= best_per_set - 0.05)
    assert i4_wins >= 0.5
