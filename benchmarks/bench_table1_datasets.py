"""Table 1 — the three KPI datasets.

Paper row (interval, weeks, seasonality, Cv, anomaly fraction) per KPI:

    PV   1 min   25   strong     0.48   7.8%
    #SR  1 min   19   weak       2.1    2.8%
    SRT  60 min  16   moderate   0.07   7.4%

The synthetic substitutes must reproduce the seasonality class, the Cv
magnitude and the anomaly fraction (PV/#SR default to a 10-minute grid;
see DESIGN.md). Each bench regenerates one KPI (the timed unit) and
validates its Table 1 row.
"""

import pytest

from repro.data import PROFILES, make_kpi
from repro.timeseries import summarize

from _common import print_header

#: Paper values: (seasonality label, Cv, anomaly fraction).
PAPER_ROWS = {
    "PV": ("strong", 0.48, 0.078),
    "#SR": ("weak", 2.1, 0.028),
    "SRT": ("moderate", 0.07, 0.074),
}


@pytest.mark.parametrize("name", list(PROFILES))
def test_table1_rows(benchmark, name):
    result = benchmark(lambda: make_kpi(PROFILES[name]))
    summary = summarize(result.series)
    label, cv, frac = PAPER_ROWS[name]
    print_header(f"Table 1 [{name}]")
    print(f"paper: seasonality={label}, Cv={cv}, anomalies={100 * frac:.1f}%")
    print(f"ours : {summary.row()}")
    assert summary.seasonality_label == label
    assert summary.cv == pytest.approx(cv, rel=0.5)
    assert summary.anomaly_fraction == pytest.approx(frac, abs=0.005)
