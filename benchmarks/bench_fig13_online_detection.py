"""Fig 7 + Fig 13 — online cThld prediction: EWMA vs 5-fold CV vs the
offline best case.

Fig 7 shows the best cThld drifting week to week (neighbouring weeks
are more alike than the long-run average), which is why Opprentice
predicts the next week's cThld with an EWMA over past best cThlds
rather than cross-validating over all history. Fig 13 compares, per
4-week moving window (stepping one day), the recall/precision achieved
by EWMA-predicted cThlds, 5-fold-CV cThlds, and the offline best case;
the paper reports EWMA achieving 40% / 23% / 110% more in-preference
windows than 5-fold CV on PV / #SR / SRT.
"""

import numpy as np
import pytest

from repro.core import CrossValidationPredictor, EWMAPredictor, run_online
from repro.evaluation import MODERATE_PREFERENCE

from _common import print_header
from repro.ml import RandomForest

#: The 5-fold predictor refits the classifier five times per week, so
#: this bench uses a lighter forest and training cap than the others.
FIG13_TREES = 30
FIG13_MAX_TRAIN = 4000


def fig13_forest() -> RandomForest:
    return RandomForest(n_estimators=FIG13_TREES, seed=13)


def run_fig13(kpis, feature_matrices, name):
    series = kpis[name].series
    matrix = feature_matrices[name]
    runs = {}
    for label, predictor in (
        ("EWMA", EWMAPredictor(MODERATE_PREFERENCE)),
        ("5-fold", CrossValidationPredictor(MODERATE_PREFERENCE)),
    ):
        runs[label] = run_online(
            series,
            features=matrix,
            classifier_factory=fig13_forest,
            predictor=predictor,
            preference=MODERATE_PREFERENCE,
            max_train_points=FIG13_MAX_TRAIN,
        )
    return runs


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_fig7_best_cthld_drift(benchmark, kpis, feature_matrices, weekly_scores, name):
    """Fig 7: weekly best cThlds vary, and neighbouring weeks are more
    similar than the overall spread."""
    from repro.core import best_cthld

    ws = weekly_scores[name]
    bests = benchmark(
        lambda: [
            best_cthld(scores, labels, MODERATE_PREFERENCE)
            for scores, labels in zip(ws.scores, ws.labels)
        ]
    )
    bests = np.array(bests)
    print_header(f"Fig 7 [{name}]: best cThld per week")
    print("  " + " ".join(f"{b:.2f}" for b in bests))
    spread = bests.max() - bests.min()
    print(f"  spread={spread:.2f}")
    # The drift the paper observed: best cThlds are not constant.
    assert spread > 0.05


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_fig13_ewma_vs_5fold(benchmark, kpis, feature_matrices, name):
    runs = benchmark.pedantic(
        lambda: run_fig13(kpis, feature_matrices, name), rounds=1, iterations=1
    )
    print_header(
        f"Fig 13 [{name}]: 4-week moving windows inside the preference "
        f"(recall>=0.66, precision>=0.66)"
    )
    rates = {}
    for label, run in runs.items():
        rates[label] = run.satisfaction_rate(window_weeks=4, step_days=1)
        print(f"  {label:<9} {100 * rates[label]:5.1f}% of windows satisfied")
    best_rate = runs["EWMA"].satisfaction_rate(
        window_weeks=4, step_days=1, use_best=True
    )
    print(f"  {'best case':<9} {100 * best_rate:5.1f}% of windows satisfied")
    detected = runs["EWMA"].n_detected()
    total = runs["EWMA"].test_end - runs["EWMA"].test_begin
    print(f"  EWMA detected {detected} anomalous points "
          f"({100 * detected / total:.1f}% of the test region)")

    # Shape: EWMA >= 5-fold (paper: 40% / 23% / 110% more in-preference
    # windows), and the offline best case dominates both.
    assert rates["EWMA"] >= rates["5-fold"] - 0.02
    assert best_rate >= rates["EWMA"] - 0.02
    # Opprentice's headline: it satisfies or approximates the preference
    # most of the time.
    assert rates["EWMA"] >= 0.4
