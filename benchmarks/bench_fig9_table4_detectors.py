"""Fig 9 + Table 4 — random forest vs basic detectors vs static
combinations.

Fig 9: AUCPR ranking of the random forest (I1 incremental retraining,
test from week 9) against all 133 detector configurations and the two
static combination baselines. Paper result: the forest ranks 1st on PV
and #SR and 2nd on SRT (0.01 behind), while both static combinations
rank low because they weight inaccurate configurations equally.

Table 4: maximum precision at recall >= 0.66. Paper: the forest exceeds
0.8 on all three KPIs and beats both combination baselines; the best
basic detector differs per KPI.
"""

import numpy as np
import pytest

from repro.combiners import MajorityVote, NormalizationSchema
from repro.evaluation import aucpr, max_precision_at_recall

from _common import print_header

#: Weeks of initial training data (test starts at week 9).
TRAIN_WEEKS = 8


def _test_region(kpis, feature_matrices, weekly, name):
    series = kpis[name].series
    matrix = feature_matrices[name]
    ws = weekly[name]
    begin, end = ws.test_begin, ws.test_end
    return series, matrix, ws, begin, end


def run_fig9(kpis, feature_matrices, weekly, name):
    """All approaches' scores over the test region; returns a dict
    approach -> (aucpr, max precision at recall >= 0.66)."""
    series, matrix, ws, begin, end = _test_region(
        kpis, feature_matrices, weekly, name
    )
    labels = series.labels[begin:end]
    train_rows = matrix.rows(0, TRAIN_WEEKS * series.points_per_week)
    test_rows = matrix.rows(begin, end)

    results = {}
    rf_scores = ws.all_scores
    results["random forest"] = (
        aucpr(rf_scores, labels),
        max_precision_at_recall(rf_scores, labels, 0.66),
    )
    for combiner in (NormalizationSchema(), MajorityVote()):
        combiner.fit(train_rows)
        scores = combiner.score(test_rows)
        results[combiner.name] = (
            aucpr(scores, labels),
            max_precision_at_recall(scores, labels, 0.66),
        )
    for j, config_name in enumerate(matrix.names):
        scores = test_rows[:, j]
        if not np.isfinite(scores).any():
            continue
        results[config_name] = (
            aucpr(scores, labels),
            max_precision_at_recall(scores, labels, 0.66),
        )
    return results


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_fig9_aucpr_ranking(benchmark, kpis, feature_matrices, weekly_scores, name):
    results = benchmark.pedantic(
        lambda: run_fig9(kpis, feature_matrices, weekly_scores, name),
        rounds=1, iterations=1,
    )
    ranked = sorted(results.items(), key=lambda kv: -kv[1][0])
    ranks = {approach: i + 1 for i, (approach, _) in enumerate(ranked)}

    print_header(f"Fig 9 [{name}]: AUCPR ranking ({len(ranked)} approaches)")
    for approach, (auc, _) in ranked[:8]:
        marker = " <-- RF" if approach == "random forest" else ""
        print(f"  #{ranks[approach]:>3}  AUCPR={auc:.3f}  {approach}{marker}")
    for baseline in ("normalization scheme", "majority-vote"):
        print(
            f"  #{ranks[baseline]:>3}  AUCPR={results[baseline][0]:.3f}  {baseline}"
        )

    # Paired bootstrap of RF vs the best basic configuration ([50]'s
    # point: Fig 9 photo-finishes need uncertainty, not just ranks).
    from repro.evaluation import compare_aucpr

    series = kpis[name].series
    matrix = feature_matrices[name]
    ws = weekly_scores[name]
    labels = series.labels[ws.test_begin: ws.test_end]
    best_basic_name = next(
        approach for approach, _ in ranked
        if approach not in (
            "random forest", "normalization scheme", "majority-vote"
        )
    )
    comparison = compare_aucpr(
        ws.all_scores,
        matrix.rows(ws.test_begin, ws.test_end)[
            :, matrix.names.index(best_basic_name)
        ],
        labels,
        n_rounds=200,
    )
    print(
        f"  RF vs best basic ({best_basic_name}): "
        f"dAUCPR={comparison.difference:+.3f} "
        f"[{comparison.interval.lower:+.3f}, {comparison.interval.upper:+.3f}] "
        f"{'significant' if comparison.significant else 'statistical tie'}"
    )

    # Shape assertions. Paper: the forest "performs similarly to or
    # even better than the most accurate basic detector" (ranks 1/1/2
    # there; here it lands in the top handful of 136, within a few
    # percent of the best config — see EXPERIMENTS.md), while the
    # static combinations rank low because they weight inaccurate
    # configurations equally.
    best_auc = ranked[0][1][0]
    rf_auc = results["random forest"][0]
    assert ranks["random forest"] <= 12
    assert rf_auc >= 0.9 * best_auc
    assert ranks["random forest"] < ranks["normalization scheme"]
    assert ranks["random forest"] < ranks["majority-vote"]
    assert ranks["normalization scheme"] > 8
    assert ranks["majority-vote"] > 8


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_table4_max_precision(benchmark, kpis, feature_matrices, weekly_scores, name):
    results = benchmark.pedantic(
        lambda: run_fig9(kpis, feature_matrices, weekly_scores, name),
        rounds=1, iterations=1,
    )
    basic = {
        approach: row for approach, row in results.items()
        if approach not in (
            "random forest", "normalization scheme", "majority-vote"
        )
    }
    top3 = sorted(basic.items(), key=lambda kv: -kv[1][0])[:3]

    print_header(f"Table 4 [{name}]: max precision at recall >= 0.66")
    print(f"  random forest        {results['random forest'][1]:.2f}")
    print(f"  normalization scheme {results['normalization scheme'][1]:.2f}")
    print(f"  majority-vote        {results['majority-vote'][1]:.2f}")
    for i, (approach, (_, precision)) in enumerate(top3, 1):
        print(f"  basic #{i} {approach:<32} {precision:.2f}")

    rf_precision = results["random forest"][1]
    # Paper shape: the forest satisfies the preference with headroom and
    # beats both static combinations decisively.
    assert rf_precision >= 0.66
    assert rf_precision > results["normalization scheme"][1]
    assert rf_precision > results["majority-vote"][1]
