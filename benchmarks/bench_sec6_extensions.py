"""§6 extensions — ablation benches for the discussion-section features.

Three claims from the paper's discussion are exercised quantitatively:

* **Cross-KPI detection** ("Detection across the same types of KPIs"):
  with severity normalisation, a classifier trained on one KPI detects
  on scale-shifted siblings; without normalisation it breaks down.
* **Dirty data**: MAD detector variants and the multi-detector ensemble
  keep the forest usable when a fraction of points goes missing.
* **Anomaly duration**: the duration filter trades recall for precision
  monotonically.
"""

import numpy as np
import pytest

from repro.core import (
    FeatureExtractor,
    Opprentice,
    SeverityNormalizer,
    TransferDetector,
    duration_filter,
)
from repro.data import drop_points, make_kpi, same_type_kpis
from repro.data.datasets import PV_PROFILE
from repro.evaluation import aucpr, precision_recall
from repro.ml import Imputer, RandomForest

from _common import print_header


def small_forest():
    return RandomForest(n_estimators=25, seed=6)


def _scale_dependent_bank():
    """Detectors whose severities inherit the KPI's absolute scale —
    the case §6's normalisation requirement is about. (The full Table 3
    bank also has scale-free z-score detectors, which mask the effect.)
    """
    from repro.detectors import (
        Diff,
        EWMA,
        MAOfDiff,
        SimpleMA,
        SimpleThreshold,
        TSD,
        WeightedMA,
        build_configs,
    )

    ppw = 7 * 24 * 6  # 10-minute grid
    return build_configs(
        [
            SimpleThreshold(),
            Diff("last-slot", 1),
            Diff("last-day", ppw // 7),
            SimpleMA(10),
            SimpleMA(30),
            WeightedMA(20),
            MAOfDiff(10),
            EWMA(0.3),
            EWMA(0.7),
            TSD(1, ppw),
            TSD(2, ppw),
        ]
    )


def test_cross_kpi_transfer_ablation(benchmark):
    """With scale-dependent detectors, normalised features transfer to
    scale-shifted siblings; raw features do not."""

    def experiment():
        replicas = same_type_kpis(
            PV_PROFILE, count=3, weeks=6, scale_spread=40.0
        )
        source = replicas[0].series
        results = {}
        for label, normalizer in (
            ("normalized", SeverityNormalizer()),
            ("raw", _IdentityNormalizer()),
        ):
            detector = TransferDetector(
                configs=_scale_dependent_bank(),
                classifier_factory=small_forest,
                normalizer=normalizer,
            ).fit(source)
            accuracies = [
                detector.detect(replica.series).accuracy()
                for replica in replicas[1:]
            ]
            results[label] = accuracies
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_header(
        "§6 ablation: cross-KPI transfer, scale-dependent bank "
        "(train on PV-0, scales up to 40x)"
    )
    f_scores = {}
    for label, accuracies in results.items():
        from repro.evaluation import f_score

        f_scores[label] = np.mean([f_score(r, p) for r, p in accuracies])
        for i, (recall, precision) in enumerate(accuracies, 1):
            print(f"  {label:<11} -> PV-{i}: recall={recall:.2f} "
                  f"precision={precision:.2f}")
    print(f"  mean F1: normalized={f_scores['normalized']:.2f} "
          f"raw={f_scores['raw']:.2f}")
    assert f_scores["normalized"] > f_scores["raw"]
    assert f_scores["normalized"] > 0.5


class _IdentityNormalizer(SeverityNormalizer):
    def normalize(self, features):
        return np.asarray(features, dtype=np.float64)


def test_dirty_data_robustness(benchmark):
    """AUCPR under increasing missing-data fractions (§6: MAD variants
    and the ensemble keep Opprentice usable on dirty data)."""

    def experiment():
        result = make_kpi(PV_PROFILE, weeks=6)
        series = result.series
        split = 4 * series.points_per_week
        rows = {}
        for fraction in (0.0, 0.05, 0.10):
            dirty = drop_points(series, fraction=fraction, seed=3)
            matrix = FeatureExtractor().extract(dirty)
            imputer = Imputer().fit(matrix.values[:split])
            model = small_forest().fit(
                imputer.transform(matrix.values[:split]),
                series.labels[:split],
            )
            scores = model.predict_proba(
                imputer.transform(matrix.values[split:])
            )
            labels = series.labels[split:]
            observed = ~dirty.missing_mask[split:]
            rows[fraction] = aucpr(scores[observed], labels[observed])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_header("§6 ablation: missing-data robustness (PV, 6 weeks)")
    for fraction, auc in rows.items():
        print(f"  {100 * fraction:4.0f}% points missing: AUCPR={auc:.3f}")
    # Dropping 10% of points must not collapse detection.
    assert rows[0.10] > 0.7 * rows[0.0]


def test_duration_filter_tradeoff(benchmark):
    """Longer minimum durations monotonically drop detected points and
    (on decaying-spike anomalies) raise precision at recall cost."""

    def experiment():
        result = make_kpi(PV_PROFILE, weeks=6)
        series = result.series
        split = 4 * series.points_per_week
        opp = Opprentice(classifier_factory=small_forest)
        opp.fit(series.slice(0, split))
        detection = opp.detect(series.slice(split, len(series)))
        labels = series.labels[split:]
        rows = {}
        for min_duration in (1, 2, 4):
            filtered = duration_filter(detection.predictions, min_duration)
            recall, precision = precision_recall(
                filtered.astype(float), labels
            )
            rows[min_duration] = (
                recall, precision, int((filtered == 1).sum())
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_header("§6 ablation: anomaly-duration filter (PV, 6 weeks)")
    for duration, (recall, precision, detected) in rows.items():
        print(f"  min duration {duration}: recall={recall:.2f} "
              f"precision={precision:.2f} detected={detected}")
    detected_counts = [rows[d][2] for d in (1, 2, 4)]
    assert detected_counts == sorted(detected_counts, reverse=True)
