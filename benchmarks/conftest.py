"""Session fixtures for the benchmarks; heavy lifting in _common.py."""

import os
from typing import Dict

import pytest

from repro.core import FeatureMatrix
from repro.data import InjectionResult, make_all

from _common import (
    BENCH_BACKEND_ENV,
    BENCH_WORKERS_ENV,
    WeeklyScores,
    bench_extractor,
    maybe_enable_observability,
    run_i1_weekly_scores,
    write_metrics_snapshot,
)


def pytest_benchmark_update_machine_info(config, machine_info):
    """Stamp BENCH_4.json with the facts that make scaling numbers
    interpretable across heterogeneous runners: the core count the
    cross-process benchmarks sharded over, and the extraction
    backend/worker knobs in force. tools/bench_compare.py warns when
    baseline and current disagree on cores (it never gates on them)."""
    machine_info["cpu_count"] = os.cpu_count()
    machine_info["repro_bench"] = {
        "backend": os.environ.get(BENCH_BACKEND_ENV) or "serial",
        "workers": os.environ.get(BENCH_WORKERS_ENV, "1"),
    }


@pytest.fixture(scope="session", autouse=True)
def observability():
    """With REPRO_OBS=1, record metrics/spans for the whole bench run
    and write a JSON + Prometheus snapshot at session end (see
    docs/observability.md; CI uploads the artifact)."""
    enabled = maybe_enable_observability()
    yield
    if enabled:
        path = write_metrics_snapshot("benchmarks")
        if path is not None:
            print(f"\nmetrics snapshot written to {path}")


@pytest.fixture(scope="session")
def kpis() -> Dict[str, InjectionResult]:
    """The three Table 1 KPIs with exact ground truth."""
    return make_all()


@pytest.fixture(scope="session")
def feature_matrices(kpis) -> Dict[str, FeatureMatrix]:
    """133-column severity matrices, one per KPI."""
    return {
        name: bench_extractor().extract(result.series)
        for name, result in kpis.items()
    }


@pytest.fixture(scope="session")
def weekly_scores(kpis, feature_matrices) -> Dict[str, WeeklyScores]:
    """I1 weekly random-forest scores, one per KPI."""
    return {
        name: run_i1_weekly_scores(name, kpis[name], feature_matrices[name])
        for name in kpis
    }
