"""Session fixtures for the benchmarks; heavy lifting in _common.py."""

from typing import Dict

import pytest

from repro.core import FeatureMatrix
from repro.data import InjectionResult, make_all

from _common import (
    WeeklyScores,
    bench_extractor,
    maybe_enable_observability,
    run_i1_weekly_scores,
    write_metrics_snapshot,
)


@pytest.fixture(scope="session", autouse=True)
def observability():
    """With REPRO_OBS=1, record metrics/spans for the whole bench run
    and write a JSON + Prometheus snapshot at session end (see
    docs/observability.md; CI uploads the artifact)."""
    enabled = maybe_enable_observability()
    yield
    if enabled:
        path = write_metrics_snapshot("benchmarks")
        if path is not None:
            print(f"\nmetrics snapshot written to {path}")


@pytest.fixture(scope="session")
def kpis() -> Dict[str, InjectionResult]:
    """The three Table 1 KPIs with exact ground truth."""
    return make_all()


@pytest.fixture(scope="session")
def feature_matrices(kpis) -> Dict[str, FeatureMatrix]:
    """133-column severity matrices, one per KPI."""
    return {
        name: bench_extractor().extract(result.series)
        for name, result in kpis.items()
    }


@pytest.fixture(scope="session")
def weekly_scores(kpis, feature_matrices) -> Dict[str, WeeklyScores]:
    """I1 weekly random-forest scores, one per KPI."""
    return {
        name: run_i1_weekly_scores(name, kpis[name], feature_matrices[name])
        for name in kpis
    }
