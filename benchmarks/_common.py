"""Shared helpers for the paper-reproduction benchmarks.

Every bench file regenerates one table or figure of the paper. The
expensive intermediates — the three Table 1 KPIs, their 133-column
feature matrices, and the weekly I1 scores of the random forest — are
computed once per pytest session here and shared by all benches.

Scale notes (see DESIGN.md): PV and #SR use a 10-minute grid instead of
the paper's 1-minute grid so the whole suite runs in minutes; every
other Table 1 characteristic is matched. The evaluation forest uses 30
trees and caps each (re)training set at 6000 points (anomalies are
always all kept); both knobs only trade statistical smoothness for
speed and do not change who wins.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np
import pytest

from repro.core import FeatureExtractor, FeatureMatrix, I1
from repro.core.opprentice import _subsample_training
from repro.data import InjectionResult, make_all
from repro.ml import Imputer, RandomForest
from repro.obs import (
    enable_from_env,
    get_provider,
    render_prometheus,
    write_snapshot,
)

#: Directory (overridable via $REPRO_OBS_DIR) where benchmark metric
#: snapshots land when observability is enabled.
OBS_SNAPSHOT_DIR_ENV = "REPRO_OBS_DIR"
DEFAULT_OBS_SNAPSHOT_DIR = "obs-snapshots"

#: Evaluation-scale forest (see module docstring).
N_TREES = 50
MAX_TRAIN_POINTS = 6000

#: Environment knobs selecting the extraction backend/worker count for
#: every bench that builds a FeatureExtractor (docs/performance.md).
#: The severity cache is controlled by $REPRO_CACHE_DIR, which the
#: extractor picks up on its own.
BENCH_BACKEND_ENV = "REPRO_BENCH_BACKEND"
BENCH_WORKERS_ENV = "REPRO_BENCH_WORKERS"


def bench_extractor(configs=None) -> FeatureExtractor:
    """A FeatureExtractor honouring the benchmark environment knobs:
    ``REPRO_BENCH_BACKEND`` (serial/thread/process, default historical
    behaviour), ``REPRO_BENCH_WORKERS`` (0 = one per CPU), and
    ``REPRO_CACHE_DIR`` (severity cache)."""
    backend = os.environ.get(BENCH_BACKEND_ENV) or None
    workers = int(os.environ.get(BENCH_WORKERS_ENV, "1"))
    return FeatureExtractor(configs, workers=workers, backend=backend)


def bench_forest(seed: int = 0) -> RandomForest:
    return RandomForest(n_estimators=N_TREES, seed=seed)


@dataclass
class WeeklyScores:
    """Per-test-week random-forest scores from the I1 loop (§5.3's
    detection fashion: incremental retraining, test from week 9)."""

    name: str
    weeks: List[int]
    bounds: List[tuple]          # (test_begin, test_end) per week
    scores: List[np.ndarray]     # forest probabilities per week
    labels: List[np.ndarray]     # ground-truth labels per week
    train_bounds: List[tuple]    # (train_begin, train_end) per week

    @property
    def all_scores(self) -> np.ndarray:
        return np.concatenate(self.scores)

    @property
    def all_labels(self) -> np.ndarray:
        return np.concatenate(self.labels)

    @property
    def test_begin(self) -> int:
        return self.bounds[0][0]

    @property
    def test_end(self) -> int:
        return self.bounds[-1][1]


def run_i1_weekly_scores(
    name: str, result: InjectionResult, matrix: FeatureMatrix
) -> WeeklyScores:
    """One pass of the I1 loop, recording scores only (cThld policies
    are applied afterwards by the individual benches)."""
    series = result.series
    labels = series.labels
    weeks, bounds, train_bounds, week_scores, week_labels = [], [], [], [], []
    for split in I1.splits(series):
        train_rows = matrix.rows(split.train_begin, split.train_end)
        train_labels = labels[split.train_begin: split.train_end]
        imputer = Imputer().fit(train_rows)
        train_x, train_y = _subsample_training(
            imputer.transform(train_rows), train_labels,
            MAX_TRAIN_POINTS, split.test_week,
        )
        classifier = bench_forest(seed=split.test_week)
        classifier.fit(train_x, train_y)
        test_rows = imputer.transform(
            matrix.rows(split.test_begin, split.test_end)
        )
        weeks.append(split.test_week)
        bounds.append((split.test_begin, split.test_end))
        train_bounds.append((split.train_begin, split.train_end))
        week_scores.append(classifier.predict_proba(test_rows))
        week_labels.append(labels[split.test_begin: split.test_end])
    return WeeklyScores(
        name=name, weeks=weeks, bounds=bounds, scores=week_scores,
        labels=week_labels, train_bounds=train_bounds,
    )


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


# ----------------------------------------------------------------------
# Observability wiring: run any bench with REPRO_OBS=1 to record the
# §5.8 quantities (per-stage latency histograms, span wall times) and
# drop a machine-checkable JSON + Prometheus snapshot at session end.
# ----------------------------------------------------------------------
def maybe_enable_observability() -> bool:
    """Install a live provider when ``$REPRO_OBS`` is set."""
    return enable_from_env()


def write_metrics_snapshot(
    label: str, directory: Optional[str] = None
) -> Optional[Path]:
    """Dump the active provider's metrics as ``<label>.json`` (plus a
    ``.prom`` rendering) under the snapshot directory.

    Returns the JSON path, or None when observability is disabled —
    benches can call this unconditionally.
    """
    provider = get_provider()
    if not provider.enabled:
        return None
    target_dir = Path(
        directory
        or os.environ.get(OBS_SNAPSHOT_DIR_ENV, DEFAULT_OBS_SNAPSHOT_DIR)
    )
    snapshot = provider.snapshot()
    path = write_snapshot(snapshot, target_dir / f"{label}.json")
    (target_dir / f"{label}.prom").write_text(render_prometheus(snapshot))
    return path
