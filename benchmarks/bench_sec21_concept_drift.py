"""§2.1 — checking the no-concept-drift assumption.

"Throughout this paper, we assume that operators have no concept drift
regarding anomalies. This is consistent with what we observed when the
operators labeled months of data." A deployed system should *verify*
that assumption rather than hope; this bench exercises the drift
monitor on both sides:

* a stable KPI (the assumption holds) → PSI near zero for essentially
  every configuration;
* a regime-changed KPI (a 2x level shift mid-stream, e.g. a traffic
  migration) → major PSI on the scale-sensitive configurations, with
  the report naming them.
"""

import numpy as np
import pytest

from repro.core import FeatureExtractor, feature_drift
from repro.core.drift import PSI_MAJOR, PSI_MODERATE
from repro.data import make_kpi
from repro.data.datasets import PV_PROFILE
from repro.timeseries import TimeSeries

from _common import print_header


def run_drift():
    stable = make_kpi(PV_PROFILE, weeks=8).series
    half = len(stable) // 2

    shifted_values = stable.values.copy()
    shifted_values[half:] *= 2.0
    shifted = TimeSeries(
        values=shifted_values, interval=stable.interval, name="PV-shifted"
    )

    extractor = FeatureExtractor()
    results = {}
    for label, series in (("stable", stable), ("regime change", shifted)):
        matrix = extractor.extract(series)
        report = feature_drift(
            matrix.values[:half], matrix.values[half:], names=matrix.names
        )
        results[label] = report
    return results


def test_concept_drift_monitor(benchmark):
    results = benchmark.pedantic(run_drift, rounds=1, iterations=1)
    print_header("§2.1: drift monitor on stable vs regime-changed PV")
    medians = {}
    for label, report in results.items():
        psis = np.array([f.psi for f in report.features])
        medians[label] = float(np.median(psis))
        print(f"  {label}: median PSI {medians[label]:.3f}, "
              f"{report.drifted_fraction:.0%} configs >= moderate")
        for feature in report.top(3):
            print(f"    PSI {feature.psi:6.3f} ({feature.level}) {feature.name}")

    stable = results["stable"]
    changed = results["regime change"]
    # Note: a handful of intrinsically nonstationary configurations
    # (undamped Holt-Winters with aggressive beta diverges over time —
    # the junk features Fig 10 shows the forest shrugging off) drift
    # even on stable data, so the discriminating statistics are the
    # *population-level* ones, not the max.
    assert medians["stable"] < PSI_MODERATE
    assert medians["regime change"] > PSI_MAJOR
    assert changed.drifted_fraction > stable.drifted_fraction + 0.2
