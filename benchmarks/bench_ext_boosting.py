"""Extension ablation — bagging (the paper's choice) vs boosting.

§4.4.1 picks random forests for robustness and parameter-insensitivity.
Follow-up AIOps systems often use gradient boosting on the same
detector features; this bench quantifies the trade-off on the Table 1
KPIs: AUCPR of the two ensembles trained on identical features and
training sets. The expectation (and assertion) is parity within noise —
which *supports* the paper's choice, since the forest needs less
tuning.
"""

import pytest

from repro.core.opprentice import _subsample_training
from repro.evaluation import aucpr, brier_score
from repro.ml import GradientBoosting, Imputer

from _common import MAX_TRAIN_POINTS, bench_forest, print_header


def run_boosting(kpis, feature_matrices, name):
    series = kpis[name].series
    matrix = feature_matrices[name]
    split = 8 * series.points_per_week
    imputer = Imputer().fit(matrix.values[:split])
    features = imputer.transform(matrix.values)
    labels = series.labels
    train_x, train_y = _subsample_training(
        features[:split], labels[:split], MAX_TRAIN_POINTS, 0
    )
    test_x, test_y = features[split:], labels[split:]

    results = {}
    for label, model in (
        ("random forest", bench_forest(seed=9)),
        ("gradient boosting", GradientBoosting(n_estimators=100, seed=9)),
    ):
        model.fit(train_x, train_y)
        scores = model.predict_proba(test_x)
        results[label] = (
            aucpr(scores, test_y), brier_score(scores, test_y)
        )
    return results


@pytest.mark.parametrize("name", ["PV", "#SR", "SRT"])
def test_bagging_vs_boosting(benchmark, kpis, feature_matrices, name):
    results = benchmark.pedantic(
        lambda: run_boosting(kpis, feature_matrices, name),
        rounds=1, iterations=1,
    )
    print_header(f"Extension [{name}]: bagging vs boosting on 133 features")
    for label, (auc, brier) in results.items():
        print(f"  {label:<18} AUCPR={auc:.3f}  Brier={brier:.4f}")
    rf_auc = results["random forest"][0]
    gbm_auc = results["gradient boosting"][0]
    # Parity within noise — boosting does not invalidate the paper's
    # random-forest choice on these features.
    assert abs(rf_auc - gbm_auc) < 0.15
    assert min(rf_auc, gbm_auc) > 0.5
