"""Retrain-cost scaling: the online loop must be O(new points).

The pre-checkpoint MonitoringService re-extracted the full feature
matrix and replayed the entire history into fresh detector streams on
every retraining round, making the weekly loop O(n^2) over a
deployment's lifetime. With cached feature rows and stream checkpoints
both costs are O(points since the last round), so retrain wall time and
stream buffer memory stay flat while the labelled history grows ~11x.
"""

import time

import numpy as np

from repro.core import MonitoringService
from repro.data import SeasonalProfile, generate_kpi, inject_anomalies
from repro.detectors import (
    Diff,
    EWMA,
    HistoricalAverage,
    SimpleMA,
    SimpleThreshold,
    TSDMad,
    build_configs,
)
from repro.ml import RandomForest

from _common import print_header, write_metrics_snapshot

BOOTSTRAP_WEEKS = 2
ROUNDS = 20
PROBE_POINTS = 48


def _bench_bank(points_per_week: int):
    """A small, fast bank — retrain scaling is about the loop, not the
    width of the Table 3 matrix."""
    return build_configs(
        [
            SimpleThreshold(),
            Diff("last-slot", 1),
            SimpleMA(10),
            EWMA(0.5),
            TSDMad(1, points_per_week),
            HistoricalAverage(1, points_per_week // 7),
        ]
    )


def test_retrain_cost_flat_in_history_length():
    weeks = BOOTSTRAP_WEEKS + ROUNDS + 1
    generated = generate_kpi(
        weeks=weeks,
        interval=3600,
        profile=SeasonalProfile(
            base_level=100.0, daily_amplitude=0.5, noise_scale=0.02, trend=0.0
        ),
        seed=41,
        name="retrain-scaling-kpi",
    )
    result = inject_anomalies(
        generated.series, target_fraction=0.05, seed=42, mean_window=4.0
    )
    series = result.series
    ppw = series.points_per_week
    service = MonitoringService(
        configs=_bench_bank(ppw),
        classifier_factory=lambda: RandomForest(n_estimators=15, seed=0),
        max_train_points=2000,
    )

    split = BOOTSTRAP_WEEKS * ppw
    service.bootstrap(series.slice(0, split))

    retrain_seconds = []
    buffered = []
    cursor = split
    for _ in range(ROUNDS):
        for value in series.values[cursor: cursor + ppw]:
            service.ingest(value)
        cursor += ppw
        service.submit_labels(
            [w for w in result.windows if w.end <= cursor]
        )
        began = time.perf_counter()
        service.retrain()
        retrain_seconds.append(time.perf_counter() - began)
        buffered.append(service._streaming.buffered_points())

    print_header("Retrain scaling: wall time vs labelled history")
    print(f"{'round':>5} {'history':>8} {'retrain_s':>10} {'buffered':>9}")
    for i, (seconds, points) in enumerate(zip(retrain_seconds, buffered)):
        history = split + (i + 1) * ppw
        print(f"{i + 1:>5} {history:>8} {seconds:>10.4f} {points:>9}")

    early = float(np.mean(retrain_seconds[:3]))
    late = float(np.mean(retrain_seconds[-3:]))
    growth = len(service._history) / split
    print(
        f"history grew {growth:.1f}x; retrain {early:.4f}s -> {late:.4f}s "
        f"({late / early:.2f}x)"
    )
    # Flat within noise: an O(history) loop would show ~10x here.
    assert late < 3.0 * early, (
        f"retrain wall time grew {late / early:.1f}x over a "
        f"{growth:.1f}x history"
    )
    # Stream buffers are period-aligned (each round is one full week),
    # so their occupancy after every retrain is essentially constant.
    assert max(buffered) - min(buffered) <= 2, buffered

    # Streaming decisions after the final retrain still equal the batch
    # scores over the same points — the speedup did not bend the
    # stream == batch invariant.
    probe = series.slice(cursor, cursor + PROBE_POINTS)
    batch_scores = service.opprentice.anomaly_scores(probe)
    online_scores = []
    for value in probe.values:
        service.ingest(value)
        online_scores.append(service._pending_scores[-1])
    np.testing.assert_allclose(
        np.asarray(online_scores), batch_scores, atol=1e-12
    )

    write_metrics_snapshot("retrain_scaling")
