"""A RECORD-maintaining zip writer, API-compatible subset of
``wheel.wheelfile.WheelFile``."""

import base64
import hashlib
import os
import re
import zipfile

WHEEL_INFO_RE = re.compile(
    r"^(?P<namever>(?P<name>[^-]+?)-(?P<ver>[^-]+?))"
    r"(-(?P<build>\d[^-]*))?-(?P<pyver>[^-]+?)-(?P<abi>[^-]+?)-(?P<plat>[^.]+?)\.whl$"
)


def _urlsafe_b64(data: bytes) -> str:
    return base64.urlsafe_b64encode(data).decode("ascii").rstrip("=")


class WheelFile(zipfile.ZipFile):
    """Write a .whl archive, appending a RECORD entry per file."""

    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        basename = os.path.basename(file)
        match = WHEEL_INFO_RE.match(basename)
        if not match:
            raise ValueError(f"bad wheel filename {basename!r}")
        self.parsed_filename = match
        self.dist_info_path = (
            f"{match.group('namever')}.dist-info"
        )
        self.record_path = self.dist_info_path + "/RECORD"
        self._record_entries = []
        zipfile.ZipFile.__init__(self, file, mode, compression=compression)

    def write(self, filename, arcname=None, compress_type=None):
        with open(filename, "rb") as f:
            data = f.read()
        self.writestr(arcname or filename, data, compress_type)

    def writestr(self, zinfo_or_arcname, data, compress_type=None):
        if isinstance(data, str):
            data = data.encode("utf-8")
        arcname = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
            else zinfo_or_arcname
        )
        zipfile.ZipFile.writestr(self, zinfo_or_arcname, data, compress_type)
        if arcname != self.record_path:
            digest = _urlsafe_b64(hashlib.sha256(data).digest())
            self._record_entries.append(
                f"{arcname},sha256={digest},{len(data)}"
            )

    def write_files(self, base_dir):
        """Add every file under ``base_dir`` (deterministic order)."""
        for root, dirs, files in os.walk(base_dir):
            dirs.sort()
            for name in sorted(files):
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                if arcname != self.record_path:
                    self.write(path, arcname)

    def close(self):
        if self.fp is not None and self.mode == "w":
            record = "\n".join(self._record_entries)
            record += f"\n{self.record_path},,\n"
            zipfile.ZipFile.writestr(self, self.record_path, record)
        zipfile.ZipFile.close(self)
