"""Minimal offline stand-in for the PyPA `wheel` distribution.

This environment has no network access and no `wheel` package, which
setuptools' PEP 660 editable-install path imports. This shim implements
just the surface setuptools 65.x uses:

* ``wheel.bdist_wheel.bdist_wheel`` with ``get_tag``, ``write_wheelfile``
  and ``egg2dist``;
* ``wheel.wheelfile.WheelFile`` (zip writer that maintains RECORD).

Only pure-Python (py3-none-any) editable wheels are supported, which is
all `pip install -e .` needs for this repository.
"""

__version__ = "0.0.shim"
