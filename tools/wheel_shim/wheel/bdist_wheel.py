"""Minimal ``bdist_wheel`` command: just enough for setuptools' PEP 660
editable-install path (get_tag / write_wheelfile / egg2dist) for pure-
Python wheels."""

import os
import shutil

from setuptools import Command

from . import __version__


class bdist_wheel(Command):
    description = "create a wheel distribution (offline shim, pure Python only)"
    user_options = [
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("plat-name=", "p", "platform name (ignored: always 'any')"),
    ]

    def initialize_options(self):
        self.dist_dir = None
        self.plat_name = None
        self.data_dir = None

    def finalize_options(self):
        if self.dist_dir is None:
            self.dist_dir = "dist"
        name = self.distribution.get_name().replace("-", "_")
        self.data_dir = f"{name}-{self.distribution.get_version()}.data"

    # ------------------------------------------------------------------
    # Surface used by setuptools.command.{dist_info,editable_wheel}
    # ------------------------------------------------------------------
    def get_tag(self):
        """Pure-Python tag; this shim does not build binary wheels."""
        return ("py3", "none", "any")

    @property
    def wheel_dist_name(self):
        name = self.distribution.get_name().replace("-", "_")
        return f"{name}-{self.distribution.get_version()}"

    def write_wheelfile(self, wheelfile_base, generator=None):
        generator = generator or f"wheel-shim ({__version__})"
        impl, abi, plat = self.get_tag()
        content = (
            "Wheel-Version: 1.0\n"
            f"Generator: {generator}\n"
            "Root-Is-Purelib: true\n"
            f"Tag: {impl}-{abi}-{plat}\n"
        )
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def egg2dist(self, egginfo_path, distinfo_path):
        """Convert an .egg-info directory into a .dist-info directory."""
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        os.makedirs(distinfo_path)
        pkginfo = os.path.join(egginfo_path, "PKG-INFO")
        if os.path.exists(pkginfo):
            shutil.copy2(pkginfo, os.path.join(distinfo_path, "METADATA"))
        for extra in ("entry_points.txt",):
            src = os.path.join(egginfo_path, extra)
            if os.path.exists(src):
                shutil.copy2(src, os.path.join(distinfo_path, extra))
        requires = os.path.join(egginfo_path, "requires.txt")
        if os.path.exists(requires):
            self._append_requirements(
                os.path.join(distinfo_path, "METADATA"), requires
            )
        self.write_wheelfile(distinfo_path)

    @staticmethod
    def _append_requirements(metadata_path, requires_path):
        """Translate egg-info requires.txt sections into Requires-Dist
        headers (plain + extras)."""
        with open(requires_path, encoding="utf-8") as f:
            lines = [line.strip() for line in f]
        headers = []
        extra = None
        for line in lines:
            if not line:
                continue
            if line.startswith("[") and line.endswith("]"):
                section = line[1:-1]
                extra = section.split(":", 1)[0] or None
                if extra:
                    headers.append(f"Provides-Extra: {extra}")
                continue
            if extra:
                headers.append(f'Requires-Dist: {line} ; extra == "{extra}"')
            else:
                headers.append(f"Requires-Dist: {line}")
        if not headers:
            return
        with open(metadata_path, encoding="utf-8") as f:
            metadata = f.read()
        head, sep, body = metadata.partition("\n\n")
        with open(metadata_path, "w", encoding="utf-8") as f:
            f.write(head + "\n" + "\n".join(headers) + (sep + body if sep else "\n"))

    def run(self):
        raise NotImplementedError(
            "this offline shim only supports editable installs; "
            "install the real 'wheel' package to build distributions"
        )
