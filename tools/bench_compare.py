#!/usr/bin/env python3
"""Compare a pytest-benchmark JSON run against a committed baseline.

The CI ``bench-regression`` job runs the extraction benchmarks with
``--benchmark-json BENCH_4.json`` and then calls::

    python tools/bench_compare.py benchmarks/baselines/bench_baseline.json \
        BENCH_4.json --max-slowdown 1.25

Exit codes: 0 — no benchmark slowed down beyond the threshold;
1 — at least one regressed, or the runs share no benchmark at all;
2 — usage error / unreadable input.

Comparison is per benchmark by full name on the *median* (the most
robust pytest-benchmark statistic for noisy CI hardware). Benchmarks
present only in the current run are reported as new and do not fail the
gate; they start being enforced once the baseline is refreshed with
``--update-baseline``. Benchmarks present only in the *baseline* are a
warning, not a failure — retiring a benchmark (or a whole backend) must
not wedge the gate; the real failure mode is an empty gated overlap,
where nothing is being measured at all.

When both files carry a recorded core count (the machine-info hook in
``benchmarks/conftest.py`` stamps ``os.cpu_count()``), a mismatch is
printed as a WARNING — never a failure — because cross-process scaling
medians from differently-sized runners are not comparable.

``--inject-slowdown X`` multiplies every current median by X before
comparing. It exists so CI can prove the gate actually fails on a
synthetic 2x regression (a gate that cannot fail is not a gate).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Dict

#: Default failure threshold: >25% median slowdown.
DEFAULT_MAX_SLOWDOWN = 1.25


def load_payload(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read benchmark JSON {path}: {error}")


def cpu_count_of(payload: dict):
    """The recorded core count, from the machine-info hook in
    benchmarks/conftest.py (older files fall back to pytest-benchmark's
    own ``cpu.count``); None when neither is present."""
    info = payload.get("machine_info", {})
    count = info.get("cpu_count")
    if count is None:
        count = info.get("cpu", {}).get("count")
    try:
        return int(count)
    except (TypeError, ValueError):
        return None


def load_medians(path: Path) -> Dict[str, float]:
    """``fullname -> median seconds`` from a pytest-benchmark JSON file."""
    payload = load_payload(path)
    medians: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats", {})
        median = stats.get("median")
        if name and isinstance(median, (int, float)) and median > 0:
            medians[name] = float(median)
    if not medians:
        raise SystemExit(f"no usable benchmarks in {path}")
    return medians


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regress past a median-slowdown "
        "threshold."
    )
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("current", type=Path, help="freshly recorded JSON")
    parser.add_argument(
        "--max-slowdown", type=float, default=DEFAULT_MAX_SLOWDOWN,
        metavar="RATIO",
        help=f"failing current/baseline median ratio "
             f"(default {DEFAULT_MAX_SLOWDOWN:.2f} = 25%% slower)",
    )
    parser.add_argument(
        "--inject-slowdown", type=float, default=1.0, metavar="FACTOR",
        help="multiply current medians by FACTOR (gate self-test only)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="copy the current run over the baseline file and exit 0",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.max_slowdown <= 1.0:
        raise SystemExit("--max-slowdown must be > 1.0")
    if args.inject_slowdown <= 0.0:
        raise SystemExit("--inject-slowdown must be positive")

    current = load_medians(args.current)
    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated from {args.current} -> {args.baseline}")
        return 0

    baseline = load_medians(args.baseline)
    baseline_cores = cpu_count_of(load_payload(args.baseline))
    current_cores = cpu_count_of(load_payload(args.current))
    if (
        baseline_cores is not None
        and current_cores is not None
        and baseline_cores != current_cores
    ):
        # A warning, never a gate: cross-process scaling medians from a
        # 4-core runner are not comparable to a 16-core baseline, but
        # heterogeneous CI hardware must not flap the build.
        print(
            f"WARNING: core-count mismatch — baseline recorded on "
            f"{baseline_cores} cores, current on {current_cores}; "
            f"cross-process scaling ratios are not comparable"
        )
    if args.inject_slowdown != 1.0:
        current = {
            name: median * args.inject_slowdown
            for name, median in current.items()
        }
        print(f"[self-test] injected a synthetic "
              f"{args.inject_slowdown:g}x slowdown into the current run")

    regressions = []
    removed = sorted(set(baseline) - set(current))
    new = sorted(set(current) - set(baseline))
    gated = sorted(set(baseline) & set(current))
    width = max((len(n) for n in baseline), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  ratio")
    for name in gated:
        ratio = current[name] / baseline[name]
        flag = "  << REGRESSION" if ratio > args.max_slowdown else ""
        print(f"{name:<{width}}  {baseline[name]:>10.6f}  "
              f"{current[name]:>10.6f}  {ratio:5.2f}x{flag}")
        if ratio > args.max_slowdown:
            regressions.append((name, ratio))

    for name in new:
        print(f"new benchmark (not gated yet): {name}")
    for name in removed:
        # Retired from the suite: a warning only. The baseline forgets
        # it on the next --update-baseline.
        print(f"WARNING: baseline benchmark removed from current run: {name}")

    if not gated:
        print("\nFAIL: the runs share no benchmark — the gate measured "
              "nothing (a gate that measures nothing must not pass)")
        return 1
    if regressions:
        worst = max(ratio for _, ratio in regressions)
        print(f"\nFAIL: {len(regressions)} benchmark(s) slower than "
              f"{args.max_slowdown:.2f}x baseline (worst {worst:.2f}x)")
        return 1
    print(f"\nOK: no benchmark exceeded {args.max_slowdown:.2f}x baseline "
          f"median ({len(gated)} gated, {len(new)} new, "
          f"{len(removed)} removed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
