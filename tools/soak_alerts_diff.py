#!/usr/bin/env python3
"""Assert alert-stream equality between two networked replay documents.

The CI ``networked-slo-gate`` job runs the same deterministic scenario
twice against two fresh ``repro-serve`` planes — once undisturbed, once
with a shard SIGKILLed (or gracefully restarted) mid-stream — and then
calls::

    python tools/soak_alerts_diff.py baseline.json disturbed.json

The promise under test: a shard restart must not disturb anything it
does not own. Every KPI served by a *surviving* shard must produce a
bit-identical alert stream (kind, begin/end indices, peak score) in
both runs. KPIs on the drilled shard are compared too, but only
reported — a ``kill -9`` may legitimately lose the un-checkpointed
tail of that shard's stream, while a graceful restart (``--strict``)
must not diverge anywhere.

Exit codes: 0 — no forbidden divergence; 1 — a surviving-shard KPI
diverged (or any KPI under ``--strict``); 2 — usage error / unreadable
input / documents that do not describe the same scenario.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple


def load_document(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"soak_alerts_diff: {path}: {error}")
    for key in ("alerts", "fleet", "config"):
        if key not in document:
            raise SystemExit(
                f"soak_alerts_diff: {path}: not a replay document "
                f"(missing {key!r}; produced by repro-loadgen --target?)"
            )
    return document


def alert_key(event: dict) -> Tuple:
    return (
        event.get("kind"),
        event.get("begin_index"),
        event.get("end_index"),
        event.get("peak_score"),
    )


def shard_of_kpis(document: dict) -> Dict[str, int]:
    return {
        kpi["kpi_id"]: kpi.get("shard", -1)
        for kpi in document.get("fleet", {}).get("kpis", [])
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff per-KPI alert streams of two replay documents"
    )
    parser.add_argument("baseline", help="undisturbed replay document")
    parser.add_argument("disturbed", help="replay document with the drill")
    parser.add_argument(
        "--strict", action="store_true",
        help="require equality on the drilled shard's KPIs too "
             "(graceful restarts promise zero divergence)",
    )
    args = parser.parse_args(argv)

    baseline = load_document(args.baseline)
    disturbed = load_document(args.disturbed)
    if baseline["config"] != disturbed["config"]:
        print(
            "soak_alerts_diff: the two documents describe different "
            "scenarios; their alert streams are not comparable:\n"
            f"  baseline:  {json.dumps(baseline['config'], sort_keys=True)}\n"
            f"  disturbed: {json.dumps(disturbed['config'], sort_keys=True)}",
            file=sys.stderr,
        )
        return 2

    fault = disturbed.get("fault") or {}
    drilled_shard = fault.get("shard", -1)
    shards = shard_of_kpis(disturbed)
    kpis = sorted(set(baseline["alerts"]) | set(disturbed["alerts"]))

    diverged_surviving: List[str] = []
    diverged_drilled: List[str] = []
    for kpi_id in kpis:
        base_stream = [alert_key(e) for e in baseline["alerts"].get(kpi_id, [])]
        dist_stream = [alert_key(e) for e in disturbed["alerts"].get(kpi_id, [])]
        if base_stream == dist_stream:
            continue
        if shards.get(kpi_id, -1) == drilled_shard and drilled_shard >= 0:
            diverged_drilled.append(kpi_id)
        else:
            diverged_surviving.append(kpi_id)

    n_surviving = sum(
        1 for kpi_id in kpis
        if shards.get(kpi_id, -1) != drilled_shard or drilled_shard < 0
    )
    print(
        f"compared {len(kpis)} KPI alert streams "
        f"({n_surviving} on surviving shards"
        + (f", drilled shard {drilled_shard}" if drilled_shard >= 0 else "")
        + ")"
    )
    if diverged_drilled:
        print(
            f"drilled-shard divergence ({len(diverged_drilled)} KPIs, "
            f"{'forbidden under --strict' if args.strict else 'allowed'}): "
            f"{', '.join(diverged_drilled)}"
        )
    if diverged_surviving:
        print(
            f"SURVIVING-shard divergence ({len(diverged_surviving)} "
            f"KPIs): {', '.join(diverged_surviving)}",
            file=sys.stderr,
        )
        return 1
    if args.strict and diverged_drilled:
        return 1
    print("no forbidden divergence: surviving shards are bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
