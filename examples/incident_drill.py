"""Incident drill: how does a trained detector ride out real incidents?

Chaos-engineering style exercise: train Opprentice on a clean history,
then script four realistic incidents (outage + recovery, gradual
degradation, flash crowd, cascading failure) into the following weeks
and check, per incident phase, whether alerts fire — including the
per-detection explanations that tell the operator *why*.

Usage: python examples/incident_drill.py
"""

import numpy as np

from repro import Opprentice
from repro.core import alerts_from_predictions, explain_features
from repro.data import SCENARIOS, SeasonalProfile, generate_kpi
from repro.ml import RandomForest


def main() -> None:
    generated = generate_kpi(
        weeks=6,
        interval=3600,
        profile=SeasonalProfile(base_level=100.0, daily_amplitude=0.5,
                                noise_scale=0.02, trend=0.0),
        seed=7,
        name="drill-kpi",
    )
    clean = generated.series
    ppw = clean.points_per_week
    split = 4 * ppw

    print("Training on 4 clean weeks + light synthetic anomalies...")
    from repro.data import inject_anomalies

    train = inject_anomalies(
        clean.slice(0, split), target_fraction=0.05, seed=8, mean_window=4.0
    ).series
    opprentice = Opprentice(
        classifier_factory=lambda: RandomForest(n_estimators=25, seed=0)
    )
    opprentice.fit(train)

    live = clean.slice(split, len(clean))
    for name, scenario in SCENARIOS.items():
        incident = scenario(live, at=2 * 24)  # two days into the window
        detection = opprentice.detect(incident.series)
        alerts = alerts_from_predictions(
            incident.series, detection.predictions, detection.scores,
            min_duration_points=2,
        )
        hit_phases = []
        for window, phase in zip(incident.windows, incident.phases):
            hit = any(
                a.begin_index < window.end and window.begin < a.end_index
                for a in alerts
            )
            hit_phases.append((phase, hit))
        print(f"\n=== {name} ===")
        for phase, hit in hit_phases:
            print(f"  {'ALERTED' if hit else 'missed '}  {phase}")
        if alerts:
            # Explain the strongest detection of the first alert.
            first = alerts[0]
            matrix = opprentice.extractor.extract(incident.series)
            peak = first.begin_index + int(
                np.nanargmax(detection.scores[first.begin_index: first.end_index])
            )
            explanation = explain_features(
                opprentice, matrix.values[peak]
            )[0]
            print("  why (top detectors at the alert peak):")
            for line in explanation.render(k=3).splitlines()[1:]:
                print("  " + line)


if __name__ == "__main__":
    main()
