"""A miniature end-to-end reproduction of the paper's headline results.

Runs the §5 evaluation flow on a shortened SRT KPI (12 weeks instead of
16, so this finishes in ~2 minutes) and prints paper-style tables:

* the Fig 9 AUCPR ranking — the random forest against all 133
  configurations and the two static combiners;
* the Table 4 statistic — max precision at recall >= 0.66;
* the Fig 13 outcome — online EWMA-cThld detection satisfying the
  operators' preference;
* the §5.7 comparison — labeling minutes vs detector-tuning days.

The full-scale versions of every table and figure live under
``benchmarks/`` (``pytest benchmarks/ --benchmark-only -s``).

Usage: python examples/paper_reproduction.py
"""

from repro.data import PROFILES, make_kpi, total_labeling_minutes
from repro.evaluation import evaluate_kpi
from repro.ml import RandomForest


def main() -> None:
    print("Generating a 12-week SRT KPI (Table 1 profile)...")
    series = make_kpi(PROFILES["SRT"], weeks=12).series
    print(f"  {len(series)} points, {series.anomaly_fraction():.1%} anomalous")

    print("\nRunning the §5 evaluation flow "
          "(I1 incremental retraining + EWMA cThld)...")
    report = evaluate_kpi(
        series,
        classifier_factory=lambda: RandomForest(n_estimators=30, seed=0),
        max_train_points=6000,
    )
    print()
    print(report.render(top_k=6))

    forest = report.forest
    print("\nTable 4-style summary:")
    print(f"  random forest max precision at recall >= 0.66: "
          f"{forest.max_precision:.2f} "
          f"({'meets' if forest.max_precision >= 0.66 else 'misses'} "
          f"the operators' preference)")

    minutes = total_labeling_minutes(series)
    print("\n§5.7: operator effort")
    print(f"  labeling all {series.n_weeks:.0f} weeks: ~{minutes:.0f} minutes")
    print("  manual detector tuning (operator interviews): 8-12 DAYS")


if __name__ == "__main__":
    main()
