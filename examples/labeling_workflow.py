"""The full operator workflow of Fig 3: label -> train -> detect ->
alert, using the labeling-tool substrate.

The paper's operators label anomalies by dragging windows in a GUI.
Here a scripted labeling session plays the operator (the same
`LabelingTool` also runs interactively: `tool.run(sys.stdin)`), then
Opprentice trains on the labelled data, detects the next week, and
raises duration-filtered alerts. Finally the Fig 14 time model reports
how long the labeling would have taken a human.

Usage: python examples/labeling_workflow.py
"""

from repro import Opprentice
from repro.core import alerts_from_predictions
from repro.data import LabelingTimeModel, make_kpi
from repro.data.datasets import SRT_PROFILE
from repro.labeling import LabelingTool
from repro.ml import RandomForest
from repro.timeseries import TimeSeries, points_to_windows


def main() -> None:
    # Ground truth exists only to script the "operator"; the pipeline
    # never sees it.
    result = make_kpi(SRT_PROFILE, weeks=6)
    truth_windows = result.windows
    unlabeled = TimeSeries(
        values=result.series.values,
        interval=result.series.interval,
        name="SRT",
    )
    split = 5 * unlabeled.points_per_week
    history = unlabeled.slice(0, split)

    print("Operator labels 5 weeks of history with the console tool...")
    tool = LabelingTool(history)
    print(tool.render())
    for window in truth_windows:
        if window.end <= split:
            tool.execute(f"l {window.begin} {window.end}")
    session = tool.session
    print(f"  {session.n_label_actions()} label drags, "
          f"{int(session.to_labels().sum())} anomalous points")

    model = LabelingTimeModel()
    minutes = model.month_minutes(len(history), session.n_label_actions())
    print(f"  estimated human labeling time: {minutes:.1f} minutes (Fig 14 model)")

    print("\nTraining Opprentice on the operator's labels...")
    opprentice = Opprentice(
        classifier_factory=lambda: RandomForest(n_estimators=25, seed=0)
    )
    opprentice.fit(session.labeled_series())

    print("Detecting the 6th week and raising alerts...")
    incoming = unlabeled.slice(split, len(unlabeled))
    detection = opprentice.detect(incoming)
    alerts = alerts_from_predictions(
        incoming, detection.predictions, detection.scores,
        min_duration_points=2,
    )
    print(f"  {len(alerts)} alerts (continuous anomalies >= 2 points):")
    for alert in alerts:
        print(
            f"    points [{alert.begin_index}, {alert.end_index}) "
            f"peak score {alert.peak_score:.2f}"
        )

    # How did we do against the (hidden) truth?
    truth = result.series.labels[split:]
    hits = sum(
        1 for window in points_to_windows(truth)
        if any(a.begin_index < window.end and window.begin < a.end_index
               for a in alerts)
    )
    print(f"  true anomalous windows in the week: "
          f"{len(points_to_windows(truth))}, hit by alerts: {hits}")


if __name__ == "__main__":
    main()
