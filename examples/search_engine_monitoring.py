"""Online monitoring of the three search-engine KPIs (the paper's §5.6
deployment scenario).

For each of PV, #SR and SRT (Table 1 profiles at a reduced length so
the example runs in a couple of minutes):

* weeks 1-8 are the historical labelled data;
* every following week, Opprentice retrains incrementally on all
  history, predicts the week's cThld with the EWMA rule, and detects;
* a weekly report shows cThld, accuracy and raised alerts.

Usage: python examples/search_engine_monitoring.py
"""

from repro import run_online
from repro.core import alerts_from_predictions
from repro.data import PROFILES, make_kpi
from repro.evaluation import MODERATE_PREFERENCE
from repro.ml import RandomForest

#: Shorter KPIs than Table 1 so the example stays interactive.
WEEKS = {"PV": 12, "#SR": 12, "SRT": 14}


def monitor(name: str) -> None:
    profile = PROFILES[name]
    series = make_kpi(profile, weeks=WEEKS[name]).series
    print(f"\n=== {name}: {len(series)} points, "
          f"{series.anomaly_fraction():.1%} anomalous ===")

    run = run_online(
        series,
        preference=MODERATE_PREFERENCE,
        classifier_factory=lambda: RandomForest(n_estimators=25, seed=0),
        max_train_points=5000,
    )
    for outcome in run.outcomes:
        flag = (
            "OK " if MODERATE_PREFERENCE.satisfied_by(
                outcome.recall, outcome.precision)
            else "~~ "
        )
        print(
            f"  week {outcome.week:>2}: cThld={outcome.cthld_used:.2f} "
            f"recall={outcome.recall:.2f} precision={outcome.precision:.2f} {flag}"
        )

    alerts = alerts_from_predictions(
        series, run.predictions, run.scores, min_duration_points=2
    )
    print(f"  -> {len(alerts)} alerts over the test region "
          f"(duration filter: >= 2 points)")
    for alert in alerts[:5]:
        print(
            f"     alert at t={alert.begin_timestamp}s "
            f"({alert.duration_points} points, peak score "
            f"{alert.peak_score:.2f})"
        )
    rate = run.satisfaction_rate(window_weeks=2, step_days=7)
    print(f"  2-week windows meeting the preference: {rate:.0%}")


def main() -> None:
    for name in PROFILES:
        monitor(name)


if __name__ == "__main__":
    main()
