"""Plugging an emerging detector into Opprentice (§5.2: "Opprentice is
not limited to the detectors we used, and can incorporate emerging
detectors, as long as they meet our detector requirements").

This example implements a new basic detector from scratch — a causal
*rate-of-change* detector that measures the relative derivative of a
short moving average — registers it alongside a handful of stock
configurations, and shows the feature mattering in the trained forest.

Usage: python examples/custom_detector.py
"""

from typing import Dict

import numpy as np

from repro import Opprentice
from repro.data import make_kpi
from repro.data.datasets import PV_PROFILE
from repro.detectors import Detector, EWMA, SimpleMA, SimpleThreshold, TSDMad, build_configs
from repro.detectors.base import ParamValue, rolling_mean
from repro.ml import RandomForest
from repro.timeseries import TimeSeries


class RateOfChange(Detector):
    """Severity = |relative change of the smoothed signal|.

    A new detector only needs three methods: ``params`` (for the
    feature name), ``warmup``, and a causal ``severities``.
    """

    kind = "rate-of-change"

    def __init__(self, window: int):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window

    def params(self) -> Dict[str, ParamValue]:
        return {"win": self.window}

    def warmup(self) -> int:
        return 2 * self.window

    def severities(self, series: TimeSeries) -> np.ndarray:
        values = self._validate(series)
        smoothed = rolling_mean(values, self.window)
        out = np.full(len(values), np.nan)
        if len(values) <= 2 * self.window:
            return out
        previous = smoothed[: -self.window]
        current = smoothed[self.window:]
        with np.errstate(invalid="ignore", divide="ignore"):
            change = np.abs(current - previous) / np.maximum(
                np.abs(previous), 1e-9
            )
        out[self.window:] = change
        return out


def main() -> None:
    kpi = make_kpi(PV_PROFILE, weeks=6).series
    split = 4 * kpi.points_per_week
    train, test = kpi.slice(0, split), kpi.slice(split, len(kpi))

    ppw = kpi.points_per_week
    stock = [
        SimpleThreshold(),
        SimpleMA(10),
        EWMA(0.5),
        TSDMad(1, ppw),
    ]
    custom = [RateOfChange(6), RateOfChange(18)]
    configs = build_configs(stock + custom)
    print("Detector bank:")
    for config in configs:
        print(f"  [{config.index}] {config.name}")

    opprentice = Opprentice(
        configs=configs,
        classifier_factory=lambda: RandomForest(n_estimators=30, seed=0),
    )
    opprentice.fit(train)
    recall, precision = opprentice.detect(test).accuracy()
    print(f"\nAccuracy with the custom detector: recall={recall:.2f} "
          f"precision={precision:.2f}")

    importances = opprentice.classifier_.feature_importances()
    print("\nForest feature importances (gini):")
    for config, importance in sorted(
        zip(configs, importances), key=lambda pair: -pair[1]
    ):
        print(f"  {importance:5.1%}  {config.name}")


if __name__ == "__main__":
    main()
