"""Quickstart: train Opprentice on a labelled KPI and detect anomalies.

Runs in ~30 seconds:

1. generate a synthetic PV-like KPI (6 weeks, 10-minute interval) with
   injected anomalies and exact ground-truth labels;
2. train Opprentice on the first 4 weeks — 133 detector configurations
   extract severity features, a random forest learns the operators'
   anomaly concept, and a 5-fold CV picks the classification threshold
   to satisfy "recall >= 0.66 and precision >= 0.66";
3. detect on the last 2 weeks and report accuracy.

Usage: python examples/quickstart.py
"""

from repro import AccuracyPreference, Opprentice
from repro.data import make_kpi
from repro.data.datasets import PV_PROFILE


def main() -> None:
    print("Generating a PV-like KPI (6 weeks, 10-minute interval)...")
    kpi = make_kpi(PV_PROFILE, weeks=6).series
    print(f"  {len(kpi)} points, {kpi.anomaly_fraction():.1%} anomalous")

    split = 4 * kpi.points_per_week
    train, test = kpi.slice(0, split), kpi.slice(split, len(kpi))

    print("Training Opprentice (133 detector configurations + random forest)...")
    opprentice = Opprentice(preference=AccuracyPreference(0.66, 0.66))
    opprentice.fit(train)
    print(f"  selected cThld = {opprentice.cthld_:.3f}")

    print("Detecting on the last 2 weeks...")
    result = opprentice.detect(test)
    recall, precision = result.accuracy()
    n_detected = len(result.anomalous_indices())
    print(f"  detected {n_detected} anomalous points")
    print(f"  recall = {recall:.2f}, precision = {precision:.2f}")
    satisfied = recall >= 0.66 and precision >= 0.66
    print(f"  operators' preference satisfied: {satisfied}")


if __name__ == "__main__":
    main()
