"""Running Opprentice as a live monitoring service.

Simulates a production deployment on an SRT-like KPI:

1. bootstrap on 4 weeks of operator-labelled history;
2. ingest the 5th week point by point through the true detector
   streams (§4.3.2's online mode) — alerts open and close in real time;
3. at week's end the operator labels the new data (simulated from the
   ground truth) and the service retrains incrementally, updating the
   cThld by the EWMA rule;
4. ingest the 6th week with the refreshed model.

Observability is switched on for the run (`repro.obs.enable()`), so the
script ends with a Prometheus-format dump of the per-stage latency
histograms (feature extraction, classification, retraining) and the
alert lifecycle counters — the §5.8 numbers as scrapeable metrics.

Usage: python examples/streaming_service.py
"""

from repro import obs
from repro.core import MonitoringService
from repro.data import make_kpi
from repro.data.datasets import SRT_PROFILE
from repro.ml import RandomForest


def main() -> None:
    provider = obs.enable()
    result = make_kpi(SRT_PROFILE, weeks=6)
    series = result.series
    ppw = series.points_per_week
    split = 4 * ppw

    def on_alert(event):
        timestamp = series.start + event.begin_index * series.interval
        print(f"  [{event.kind:>6}] t={timestamp}s "
              f"points=[{event.begin_index}, {event.end_index}) "
              f"peak={event.peak_score:.2f}")

    service = MonitoringService(
        classifier_factory=lambda: RandomForest(n_estimators=25, seed=0),
        min_duration_points=2,
        alert_callback=on_alert,
    )

    print("Bootstrapping on 4 labelled weeks...")
    service.bootstrap(series.slice(0, split))
    print(f"  initial cThld = {service.cthld:.3f}")

    print("\nWeek 5 — live ingestion:")
    for value in series.values[split: split + ppw]:
        service.ingest(value)

    print("\nOperator labels week 5; incremental retraining...")
    week5_windows = [
        w for w in result.windows if split <= w.begin < split + ppw
    ]
    service.submit_labels(week5_windows)
    new_cthld = service.retrain()
    print(f"  new cThld = {new_cthld:.3f} "
          f"(EWMA over the week's best cThld)")

    print("\nWeek 6 — live ingestion with the refreshed model:")
    for value in series.values[split + ppw:]:
        service.ingest(value)

    stats = service.stats
    print(
        f"\nTotals: {stats.points_ingested} points ingested, "
        f"{stats.anomalous_points} anomalous, "
        f"{stats.alerts_opened} alerts, "
        f"{stats.retrain_rounds} retraining round(s)"
    )

    print("\nStructured events (last 5):")
    for event in provider.events.events[-5:]:
        print(f"  {event}")

    print("\nPrometheus metrics dump:")
    print(obs.render_prometheus(provider.snapshot()))


if __name__ == "__main__":
    main()
